"""Command-line interface.

Installed as ``repro`` (see pyproject) and runnable as ``python -m repro.cli``.

Subcommands
-----------
``generate``
    Synthesize one of the evaluation datasets; write item supports (one per
    line) or a FIMI ``.dat`` transaction file.
``select``
    Privately select the top-c of a score file with EM / SVT / SVT-ReTr and
    report SER/FNR against the true top-c.
``mine``
    Private frequent-itemset mining over a ``.dat`` transaction file.
``audit``
    Audit a Figure-1 variant's eps-DP claim on an adversarial neighboring
    pair (exact, via the Eq.-(5) verifier).
``experiment``
    Run the Section-6 reproduction (delegates to ``repro.experiments``).
``serve``
    Run the multi-tenant SVT query service over a score file.  Default:
    requests stream in on stdin — JSONL ops or legacy ``tenant item`` lines
    — and typed JSON responses stream out; ``--tcp`` starts the concurrent
    asyncio listener (bounded-queue admission control, typed ``overloaded``
    shedding, adaptive drain windows).  Pending queries are answered in
    cross-session batched drains either way.
``metrics``
    Fetch the live counters/histograms snapshot from a running ``serve
    --tcp`` server; ``--format prom`` renders it as Prometheus text
    exposition, ``--format json`` as raw JSON.
``trace-report``
    Fetch the per-stage latency breakdown (and slow-request exemplars)
    from a traced server's admin plane and render it as a table.
``load-test``
    Closed-loop throughput benchmark of the service: a Zipf multi-tenant
    workload served both batched and query-at-a-time, with requests/sec,
    batch occupancy, and latency percentiles (optionally written to JSON).
    ``--workload canary`` mixes the auditor's planted threshold-straddling
    pair into the trace.
``audit-live``
    Empirical privacy audit of a live server: run the canary guessing game
    end to end (boot a stdio subprocess, or ``--connect`` to a TCP server),
    invert the guess record into an epsilon lower bound, and compare it to
    the charged budget.  ``--expect healthy|broken`` turns the verdict into
    an exit code (the CI gate); ``--out`` writes ``AUDIT_report.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.applications.itemset_mining import private_top_c_itemsets
from repro.core.selection import SELECTION_METHODS, select_top_c
from repro.data.generators import DATASET_GENERATORS, generate_dataset
from repro.data.loaders import load_transactions, save_transactions
from repro.data.transaction_db import TransactionDatabase
from repro.exceptions import ReproError
from repro.metrics.privacy import privacy_report
from repro.metrics.utility import selection_report
from repro.rng import derive_rng

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparse Vector Technique reproduction toolkit (Lyu, Su, Li; VLDB 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize an evaluation dataset")
    gen.add_argument("dataset", choices=sorted(DATASET_GENERATORS))
    gen.add_argument("--scale", type=float, default=1.0, help="size factor in (0, 1]")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", type=Path, required=True, help="output file")
    gen.add_argument(
        "--format",
        choices=("supports", "dat"),
        default="supports",
        help="supports: one integer per line; dat: FIMI transactions",
    )
    gen.add_argument(
        "--records",
        type=int,
        default=None,
        help="transaction count for --format dat (default: scaled Table-1 count, capped at 50k)",
    )

    sel = sub.add_parser("select", help="private top-c selection over a score file")
    sel.add_argument("scores", type=Path, help="file with one numeric score per line")
    sel.add_argument("--epsilon", type=float, required=True)
    sel.add_argument("-c", "--top", type=int, required=True, dest="c")
    sel.add_argument("--method", choices=SELECTION_METHODS, default="em")
    sel.add_argument("--threshold", type=float, default=None)
    sel.add_argument("--bump-d", type=float, default=0.0)
    sel.add_argument("--monotonic", action="store_true")
    sel.add_argument("--seed", type=int, default=None)

    mine = sub.add_parser("mine", help="private frequent itemsets from a .dat file")
    mine.add_argument("database", type=Path)
    mine.add_argument("--epsilon", type=float, required=True)
    mine.add_argument("-c", "--top", type=int, required=True, dest="c")
    mine.add_argument("--method", choices=("em", "svt", "svt-retraversal"), default="em")
    mine.add_argument("--threshold", type=float, default=None)
    mine.add_argument("--max-size", type=int, default=2)
    mine.add_argument("--counts", action="store_true", help="also release noisy supports")
    mine.add_argument("--seed", type=int, default=None)

    audit = sub.add_parser("audit", help="audit a variant's eps-DP claim")
    audit.add_argument(
        "variant", choices=("alg1", "alg2", "alg4", "alg5", "alg6"),
        help="alg3 has continuous outputs; see examples/privacy_violation_demo.py",
    )
    audit.add_argument("--epsilon", type=float, default=1.0)
    audit.add_argument("-c", "--cutoff", type=int, default=2, dest="c")
    audit.add_argument("--mc-trials", type=int, default=0)

    exp = sub.add_parser("experiment", help="run the Section-6 reproduction")
    exp.add_argument("--tiny", action="store_true")
    exp.add_argument("--no-charts", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="serve tenant queries over stdin JSONL or a concurrent TCP listener",
    )
    serve.add_argument("scores", type=Path, help="file with one numeric score per line")
    serve.add_argument("--epsilon", type=float, default=1.0, help="per-session budget")
    serve.add_argument("--threshold", type=float, required=True, help="error threshold T")
    serve.add_argument("-c", "--top", type=int, default=3, dest="c",
                       help="database accesses per session")
    serve.add_argument("--svt-fraction", type=float, default=0.5)
    serve.add_argument("--mode", choices=("shared", "per-session"), default="shared")
    serve.add_argument("--batch", type=int, default=256, dest="batch",
                       help="drain window: drain after this many pending requests "
                            "(blank line or EOF also drains; the adaptive policy "
                            "resizes it in --tcp mode)")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--audit-log", type=Path, default=None, dest="audit_log",
                       help="persist the audit trail to this JSONL file on exit "
                            "(replayable via AuditLog.replay / verify_audit)")
    serve.add_argument("--state-dir", type=Path, default=None, dest="state_dir",
                       help="durable state directory: spends/audit fsync before "
                            "responses, and boot recovers the previous state")
    serve.add_argument("--checkpoint-every", type=int, default=256,
                       dest="checkpoint_every",
                       help="WAL batches between snapshot checkpoints")
    serve.add_argument("--session-ttl", type=float, default=None, dest="session_ttl",
                       help="expire sessions after this many seconds, releasing "
                            "unspent budget (checked at every drain)")
    serve.add_argument("--tcp", action="store_true",
                       help="listen on --host/--port for concurrent JSONL clients "
                            "instead of reading stdin")
    serve.add_argument("--shards", type=int, default=1,
                       help="worker processes: 1 (default) runs the in-process "
                            "runtime; N>1 consistent-hashes tenants onto N "
                            "single-shard workers behind an ingress router "
                            "(per-shard state under <state-dir>/shard-K)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7707,
                       help="TCP port (0 picks an ephemeral one)")
    serve.add_argument("--max-queue", type=int, default=65536, dest="max_queue",
                       help="admission bound: requests beyond this many pending "
                            "are shed with a typed 'overloaded' response")
    serve.add_argument("--no-adaptive", action="store_true", dest="no_adaptive",
                       help="disable the drain-window feedback controller "
                            "(fixed --batch window)")
    serve.add_argument("--target-drain-ms", type=float, default=5.0,
                       dest="target_drain_ms",
                       help="drain-latency target steering the adaptive window")
    serve.add_argument("--trace", action="store_true",
                       help="per-request span tracing: stage latency histograms "
                            "+ slow-request exemplars (see 'repro trace-report')")
    serve.add_argument("--trace-slow-ms", type=float, default=50.0,
                       dest="trace_slow_ms",
                       help="requests slower than this land in the exemplar ring")
    serve.add_argument("--admin-port", type=int, default=None, dest="admin_port",
                       help="start the HTTP admin plane (/healthz /readyz /metrics "
                            "/sessions /audit /debug/*) on this port (0 = ephemeral)")
    serve.add_argument("--admin-host", default="127.0.0.1", dest="admin_host")
    serve.add_argument("--gate-fault", default=os.environ.get("REPRO_GATE_FAULT"),
                       dest="gate_fault", metavar="FAULT",
                       help="TEST ONLY: run the gate with a known privacy bug "
                            "('rho-reuse' reuses the threshold noise as the "
                            "per-query noise, i.e. a noiseless gate) so "
                            "'repro audit-live' can prove it catches one; "
                            "env REPRO_GATE_FAULT sets the default")

    met = sub.add_parser(
        "metrics", help="fetch a live metrics snapshot from a running TCP server"
    )
    met.add_argument("--host", default="127.0.0.1")
    met.add_argument("--port", type=int, default=7707)
    met.add_argument("--format", choices=("text", "prom", "json"), default="text",
                     dest="format",
                     help="text: human-readable summary (default); prom: Prometheus "
                          "text exposition, scrape-identical to the admin plane's "
                          "/metrics; json: the raw snapshot")
    met.add_argument("--raw", action="store_true",
                     help="deprecated alias for --format json")

    trace = sub.add_parser(
        "trace-report",
        help="latency breakdown from a traced server's admin plane",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, required=True,
                       help="the admin-plane port (serve --admin-port)")
    trace.add_argument("--slow", type=int, default=5, dest="slow",
                       help="slow-request exemplars to show (0 = none)")
    trace.add_argument("--json", action="store_true", dest="as_json",
                       help="print the raw /debug/trace JSON")

    load = sub.add_parser("load-test", help="closed-loop service throughput benchmark")
    load.add_argument("--tenants", type=int, default=256)
    load.add_argument("--requests", type=int, default=20_000)
    load.add_argument("--dataset", choices=sorted(DATASET_GENERATORS), default="Zipf")
    load.add_argument("--scale", type=float, default=0.05)
    load.add_argument("--workload", choices=("zipf", "canary"), default="zipf",
                      help="zipf: the plain multi-tenant trace; canary: the same "
                           "trace with the auditor's planted threshold-straddling "
                           "pair mixed in (--canary-fraction of requests)")
    load.add_argument("--canary-fraction", type=float, default=0.1,
                      dest="canary_fraction",
                      help="fraction of requests rewritten onto the planted "
                           "canary pair under --workload canary")
    load.add_argument("--batch", type=int, default=8_192, help="submit window size")
    load.add_argument("--epsilon", type=float, default=1.0)
    load.add_argument("-c", "--top", type=int, default=3, dest="c")
    load.add_argument("--threshold-factor", type=float, default=0.8,
                      help="error threshold as a fraction of the head support")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--skip-streaming", action="store_true",
                      help="measure only the batched path")
    load.add_argument("--record", type=Path, default=None,
                      help="write the measurements to this JSON file")

    live = sub.add_parser(
        "audit-live",
        help="empirical eps-attack against a live server (canary guessing game)",
        description="Runs the canary distinguisher against the real service — "
                    "a booted stdio subprocess by default, or an already-"
                    "running TCP server via --connect — and reports the "
                    "empirical epsilon lower bound against the charged budget.",
    )
    live.add_argument("--trials", type=int, default=200)
    live.add_argument("--confidence", type=float, default=0.95)
    live.add_argument("--epsilon", type=float, default=1.0,
                      help="canary session budget (the charged eps under test)")
    live.add_argument("--rule", choices=("fire-high", "release-value"),
                      default="fire-high", help="distinguisher guessing rule")
    live.add_argument("--seed", type=int, default=0)
    live.add_argument("--background", type=int, default=4,
                      help="background Zipf queries interleaved per trial "
                           "(0 = idle-box audit)")
    live.add_argument("--scores", type=Path, default=None,
                      help="planted score file (write_planted_scores format); "
                           "synthesized when omitted, required with --connect")
    live.add_argument("--emit-scores", type=Path, default=None, dest="emit_scores",
                      help="just synthesize and write a planted score file "
                           "(for booting 'repro serve' externally), then exit")
    live.add_argument("--connect", default=None, metavar="HOST:PORT",
                      help="attach to a running TCP server instead of booting "
                           "a stdio subprocess")
    live.add_argument("--shards", type=int, default=1,
                      help="boot mode: worker shards for the subprocess server")
    live.add_argument("--gate-fault", default=None, dest="gate_fault",
                      help="boot mode: run the subprocess server with this "
                           "known-broken gate (e.g. 'rho-reuse') — the audit "
                           "should then flag it")
    live.add_argument("--dataset", choices=sorted(DATASET_GENERATORS),
                      default="Zipf", help="dataset behind a synthesized plant")
    live.add_argument("--scale", type=float, default=0.02)
    live.add_argument("--threshold-factor", type=float, default=0.6,
                      dest="threshold_factor",
                      help="plant threshold as a fraction of the head support")
    live.add_argument("--expect", choices=("healthy", "broken"), default=None,
                      help="assert the verdict: healthy = bound stays under "
                           "the charged eps, broken = violation caught "
                           "(exit 1 on mismatch — the CI gate)")
    live.add_argument("--out", type=Path, default=None,
                      help="write the AUDIT_report.json artifact here")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_dataset(args.dataset, rng=args.seed, scale=args.scale)
    if args.format == "supports":
        args.out.write_text("\n".join(str(int(s)) for s in dataset.supports) + "\n")
        print(
            f"wrote {dataset.num_items} item supports for {dataset.name} "
            f"(scale {args.scale}) to {args.out}"
        )
        return 0
    records = args.records if args.records is not None else min(dataset.num_records, 50_000)
    probabilities = np.clip(dataset.supports / dataset.num_records, 0.0, 1.0)
    db = TransactionDatabase.synthesize(
        records, probabilities, rng=derive_rng(args.seed, "cli-dat")
    )
    save_transactions(db, args.out)
    print(f"wrote {db.num_records} transactions over {db.num_items} items to {args.out}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    scores = np.array(
        [float(line) for line in args.scores.read_text().split() if line.strip()]
    )
    picked = select_top_c(
        scores,
        args.epsilon,
        args.c,
        method=args.method,
        monotonic=args.monotonic,
        threshold=args.threshold,
        threshold_bump_d=args.bump_d,
        rng=args.seed,
    )
    report = selection_report(scores, picked, args.c)
    print(f"selected indices: {' '.join(str(int(i)) for i in picked)}")
    print(
        f"selected {report.num_selected}/{args.c}  "
        f"SER={report.ser:.4f}  FNR={report.fnr:.4f}  "
        f"precision={report.precision:.4f}  recall={report.recall:.4f}"
    )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    db = load_transactions(args.database)
    mined = private_top_c_itemsets(
        db,
        epsilon=args.epsilon,
        c=args.c,
        method=args.method,
        max_size=args.max_size,
        threshold=args.threshold,
        release_counts=args.counts,
        rng=args.seed,
    )
    print(f"database: {db.num_records} transactions, {db.num_items} items")
    print(f"{len(mined)} itemsets selected (eps={args.epsilon}, method={args.method}):")
    for entry in mined:
        rendered = "{" + ", ".join(str(i) for i in entry.itemset) + "}"
        if entry.noisy_support is None:
            print(f"  {rendered}")
        else:
            print(f"  {rendered}  noisy support {entry.noisy_support:.1f}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    # A canonical adversarial pair: below-queries rise by Delta while
    # deep-tail above-candidates fall by Delta (the both-directions geometry
    # the broken variants cannot afford).
    if args.variant == "alg5":
        answers_d, answers_dp = [0.0, 1.0], [1.0, 0.0]
    else:
        answers_d = [2.0, 2.0, 2.0, -10.0, -10.0]
        answers_dp = [3.0, 3.0, 3.0, -11.0, -11.0]
    report = privacy_report(
        args.variant,
        answers_d,
        answers_dp,
        epsilon=args.epsilon,
        c=args.c,
        mc_trials=args.mc_trials,
    )
    print(report)
    return 1 if report.violated else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.runtime import RuntimeServer, ServerConfig

    supports = np.array(
        [float(line) for line in args.scores.read_text().split() if line.strip()]
    )
    config = ServerConfig(
        epsilon=args.epsilon,
        error_threshold=args.threshold,
        c=args.c,
        svt_fraction=args.svt_fraction,
        mode=args.mode,
        seed=args.seed,
        session_ttl=args.session_ttl,
        max_queue=args.max_queue,
        window=args.batch,
        min_window=min(256, args.batch),
        max_window=max(65536, args.batch),
        adaptive=not args.no_adaptive,
        target_drain_ms=args.target_drain_ms,
        state_dir=None if args.state_dir is None else str(args.state_dir),
        checkpoint_every=args.checkpoint_every,
        trace=args.trace,
        trace_slow_ms=args.trace_slow_ms,
        admin_port=args.admin_port,
        admin_host=args.admin_host,
        gate_fault=args.gate_fault,
    )
    if args.gate_fault:
        print(f"WARNING: gate fault {args.gate_fault!r} active — this server "
              f"is deliberately broken (audit target only)", file=sys.stderr)
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1:
        return _serve_sharded(args, supports, config)
    server = RuntimeServer(supports, config)
    if server.recovery is not None:
        print(server.recovery.summary(), file=sys.stderr)
    server.on_expire = lambda tenant, released: print(
        f"expired session for tenant {tenant} (released {released:g} epsilon)",
        file=sys.stderr,
    )

    async def tcp_main() -> None:
        import signal

        await server.serve_tcp(args.host, args.port)
        host, port = server.tcp_address
        print(f"listening on {host}:{port} (JSONL; ctrl-C stops)", file=sys.stderr)
        if server.admin is not None:
            ahost, aport = server.admin.address
            print(f"admin plane on http://{ahost}:{aport} "
                  f"(/healthz /readyz /metrics ...)", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await stop.wait()
        print("shutting down", file=sys.stderr)
        await server.shutdown()

    if args.tcp:
        asyncio.run(tcp_main())
    else:
        asyncio.run(server.serve_stdin())
    # TCP shutdown closes the store itself; the stdio path (and any bailout
    # before shutdown ran) must not leave pending audit appends in memory.
    server.close_store()
    if server.store is not None:
        print(f"durable state checkpointed to {server.store.state_dir}", file=sys.stderr)

    service = server.service
    served = (
        server.metrics.counter("answered_total").value
        + server.metrics.counter("rejected_total").value
    )
    sessions = len(service.manager) + len(service.manager.closed_sessions())
    spent = service.manager.total_spent()  # live and evicted sessions alike
    print(
        f"served {served} requests across {sessions} sessions "
        f"({len(service.audit)} audit records, total epsilon spent {spent:g})",
        file=sys.stderr,
    )
    if args.audit_log is not None:
        written = service.audit.to_jsonl(args.audit_log)
        print(f"audit log: {written} records written to {args.audit_log}", file=sys.stderr)
    return 0


def _serve_sharded(args: argparse.Namespace, supports, config) -> int:
    """`serve --shards N`: the consistent-hash router over N workers."""
    import asyncio

    from repro.service.runtime import ShardedServer

    if args.audit_log is not None:
        # Each shard owns an independent audit seq space persisted under
        # state_dir/shard-K; one flat export file would scramble them.  The
        # seq-merged /audit view (or per-shard state dirs) is the sharded
        # equivalent.
        print("error: --audit-log is single-process only; with --shards use "
              "--state-dir (per-shard audit under shard-K/) or the /audit "
              "admin route", file=sys.stderr)
        return 2
    server = ShardedServer(supports, config, shards=args.shards)

    def report_boot() -> None:
        for shard, worker in sorted(server.workers.items()):
            info = worker.ready_info or {}
            line = f"shard {shard}: pid {info.get('pid')}"
            if "recovery_summary" in info:
                line += f"; {info['recovery_summary']}"
            print(line, file=sys.stderr)

    async def tcp_main() -> None:
        import signal

        await server.serve_tcp(args.host, args.port)
        report_boot()
        host, port = server.tcp_address
        print(f"listening on {host}:{port} "
              f"(JSONL; {args.shards} shards; ctrl-C stops)", file=sys.stderr)
        if server.admin is not None:
            ahost, aport = server.admin.address
            print(f"admin plane on http://{ahost}:{aport} "
                  f"(merged across shards)", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await stop.wait()
        print("shutting down", file=sys.stderr)
        await server.shutdown()

    async def stdio_main() -> None:
        await server.start()
        report_boot()
        await server.serve_stdin()
        await server.shutdown()

    asyncio.run(tcp_main() if args.tcp else stdio_main())
    snap = server.final_snapshot or {}
    statuses = server.final_statuses or {}
    counters = snap.get("counters", {})
    served = int(counters.get("answered_total", 0) + counters.get("rejected_total", 0))
    sessions = sum(
        int(s.get("sessions_open", 0)) + int(s.get("sessions_closed", 0))
        for s in statuses.values()
    )
    audit_records = sum(int(s.get("audit_records", 0)) for s in statuses.values())
    spent = sum(float(s.get("epsilon_spent", 0.0)) for s in statuses.values())
    print(
        f"served {served} requests across {sessions} sessions on "
        f"{args.shards} shards ({audit_records} audit records, "
        f"total epsilon spent {spent:g})",
        file=sys.stderr,
    )
    if config.state_dir is not None:
        print(f"durable state checkpointed under {config.state_dir}/shard-K",
              file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import socket

    with socket.create_connection((args.host, args.port), timeout=5.0) as sock:
        stream = sock.makefile("rwb")
        stream.write(json.dumps({"op": "metrics"}).encode() + b"\n")
        stream.flush()
        line = stream.readline()
    if not line:
        print("error: no response from server", file=sys.stderr)
        return 2
    snapshot = json.loads(line)
    fmt = "json" if args.raw else args.format
    if fmt == "json":
        print(json.dumps(snapshot, indent=2))
        return 0
    if fmt == "prom":
        from repro.service.observability import render_prometheus

        # Same encoder as the admin plane's /metrics: a snapshot fetched
        # over the JSONL protocol renders scrape-identical exposition.
        sys.stdout.write(render_prometheus(snapshot))
        return 0
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    print(f"shed rate: {snapshot.get('shed_rate', 0.0):.2%}")
    for name in sorted(counters):
        print(f"  {name}: {counters[name]}")
    for name in sorted(gauges):
        print(f"  {name}: {gauges[name]:g}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        print(
            f"  {name}: n={hist['count']} mean={hist['mean']:g} "
            f"p50={hist['p50']:g} p99={hist['p99']:g}"
        )
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    url = f"http://{args.host}:{args.port}/debug/trace"
    try:
        with urlopen(url, timeout=10.0) as response:
            report = json.loads(response.read())
    except URLError as exc:
        print(f"error: cannot fetch {url}: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # connection refused and friends
        print(f"error: cannot fetch {url}: {exc}", file=sys.stderr)
        return 2
    if "error" in report:
        print(f"error: {report['error']}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report, indent=2))
        return 0
    glossary = report.get("glossary", {})
    total = report.get("total", {})
    print(f"request spans: {report.get('spans_total', 0)} "
          f"({report.get('slow_total', 0)} slower than "
          f"{report.get('slow_threshold_ms', 0):g} ms)")
    print(f"{'stage':<15} {'count':>10} {'p50 ms':>9} {'p90 ms':>9} "
          f"{'p99 ms':>9}  description")
    for stage, hist in report.get("stages", {}).items():
        print(f"{stage:<15} {hist.get('count', 0):>10} "
              f"{hist.get('p50', 0):>9.3f} {hist.get('p90', 0):>9.3f} "
              f"{hist.get('p99', 0):>9.3f}  {glossary.get(stage, '')}")
    kernel = report.get("gate_kernel", {})
    if kernel.get("count"):
        print(f"{'  gate_kernel':<15} {kernel['count']:>10} "
              f"{kernel.get('p50', 0):>9.3f} {kernel.get('p90', 0):>9.3f} "
              f"{kernel.get('p99', 0):>9.3f}  pure kernel time within gate_exec")
    print(f"stage p50 sum {report.get('stage_p50_sum_ms', 0):g} ms vs "
          f"request-span p50 {total.get('p50', 0):g} ms "
          f"(p99 {total.get('p99', 0):g} ms)")
    slow = report.get("slow", [])
    if args.slow and slow:
        print(f"slowest exemplars (most recent {min(args.slow, len(slow))}):")
        for ex in slow[-args.slow:]:
            stages = " ".join(f"{k}={v:g}" for k, v in ex.get("stages", {}).items())
            print(f"  {ex.get('kind')}/{ex.get('tenant')} "
                  f"x{ex.get('requests')}: {ex.get('total_ms'):g} ms ({stages})")
    return 0


def _cmd_load_test(args: argparse.Namespace) -> int:
    import json

    from repro.service import SVTQueryService, WorkloadSpec, generate_workload
    from repro.service.workload import generate_canary_workload, run_batched, run_streaming

    spec = WorkloadSpec(
        tenants=args.tenants,
        requests=args.requests,
        dataset=args.dataset,
        dataset_scale=args.scale,
        epsilon=args.epsilon,
        c=args.c,
        threshold_factor=args.threshold_factor,
    )
    if args.workload == "canary":
        workload, plan = generate_canary_workload(
            spec, rng=args.seed, canary_fraction=args.canary_fraction
        )
        print(
            f"canary mixture: {args.canary_fraction:.0%} of requests hit the "
            f"planted pair (items {plan.item_lo}/{plan.item_hi}, scores "
            f"{plan.score_lo:g}/{plan.score_hi:g} around T={plan.threshold:g})"
        )
    else:
        workload = generate_workload(spec, rng=args.seed)
    batched = run_batched(
        SVTQueryService(workload.supports, seed=args.seed),
        workload,
        batch_size=args.batch,
        session_seed=args.seed,
    )
    print(
        f"batched:   {batched.requests_per_sec:>12,.0f} req/s   "
        f"occupancy {batched.mean_block_rows:.0f} rows/block   "
        f"p50/p99 {batched.latency_p50_ms:.2f}/{batched.latency_p99_ms:.2f} ms   "
        f"history rate {batched.history_rate:.1%}"
    )
    payload = {"workload": vars(args) | {"record": None}, "batched": batched.as_record()}
    if not args.skip_streaming:
        streaming = run_streaming(
            SVTQueryService(workload.supports, seed=args.seed),
            workload,
            session_seed=args.seed,
        )
        speedup = streaming.duration_s / batched.duration_s
        print(
            f"streaming: {streaming.requests_per_sec:>12,.0f} req/s   "
            f"(per-session loop)   speedup {speedup:.1f}x"
        )
        payload["streaming"] = streaming.as_record()
        payload["speedup"] = round(speedup, 2)
    if args.record is not None:
        args.record.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        print(f"record written: {args.record}")
    return 0


def _cmd_audit_live(args: argparse.Namespace) -> int:
    import json
    import subprocess
    import tempfile

    from repro.service.auditor import (
        AuditConfig,
        JsonLineClient,
        load_planted_plan,
        plant_canaries,
        run_audit,
        write_planted_scores,
        write_report,
    )

    if args.scores is not None:
        supports = np.array(
            [float(line) for line in args.scores.read_text().split() if line.strip()]
        )
        plan = load_planted_plan(supports, epsilon=args.epsilon, rule=args.rule)
    else:
        dataset = generate_dataset(args.dataset, rng=args.seed, scale=args.scale)
        base = dataset.supports.astype(float)
        supports, plan = plant_canaries(
            base,
            threshold=args.threshold_factor * float(base[0]),
            epsilon=args.epsilon,
            rule=args.rule,
        )

    if args.emit_scores is not None:
        count = write_planted_scores(args.emit_scores, supports)
        print(
            f"wrote {count} planted scores to {args.emit_scores} "
            f"(pair at items {plan.item_lo}/{plan.item_hi}, "
            f"T={plan.threshold:g}; serve with --threshold {plan.threshold:g})"
        )
        return 0

    config = AuditConfig(
        trials=args.trials,
        confidence=args.confidence,
        seed=args.seed,
        background_every=args.background,
    )
    process = None
    temp_scores: Optional[str] = None
    if args.connect is not None:
        if args.scores is None:
            print("error: --connect needs --scores (the planted score file "
                  "the server was booted on)", file=sys.stderr)
            return 2
        host, _, port = args.connect.rpartition(":")
        try:
            client = JsonLineClient.connect_tcp(host or "127.0.0.1", int(port))
        except (OSError, ValueError) as exc:
            print(f"error: cannot connect to {args.connect}: {exc}", file=sys.stderr)
            return 2
        target = f"tcp {args.connect}"
    else:
        scores_path = args.scores
        if scores_path is None:
            fd, temp_scores = tempfile.mkstemp(suffix=".scores", prefix="audit-")
            os.close(fd)
            write_planted_scores(temp_scores, supports)
            scores_path = temp_scores
        command = [
            sys.executable, "-m", "repro.cli", "serve", str(scores_path),
            "--threshold", str(plan.threshold),
            "--epsilon", str(args.epsilon),
            "--seed", str(args.seed),
        ]
        if args.shards > 1:
            command += ["--shards", str(args.shards)]
        if args.gate_fault:
            command += ["--gate-fault", args.gate_fault]
        # stderr inherits: the subprocess's boot/summary lines stay visible.
        process = subprocess.Popen(
            command, stdin=subprocess.PIPE, stdout=subprocess.PIPE
        )
        client = JsonLineClient.from_process(process)
        target = (f"stdio subprocess (pid {process.pid}, shards {args.shards}, "
                  f"gate fault {args.gate_fault or 'none'})")

    print(f"auditing {target}: {args.trials} trials, rule {args.rule!r}, "
          f"charged eps {plan.charged_eps:g}", file=sys.stderr)
    try:
        report = run_audit(client, plan, config, num_items=supports.size)
    finally:
        client.close()  # boot mode: stdin EOF drains and stops the server
        if process is not None:
            process.wait(timeout=60)
        if temp_scores is not None:
            os.unlink(temp_scores)
    report["server"] = {
        "target": "connect" if args.connect else "boot",
        "shards": args.shards,
        "gate_fault": args.gate_fault,
    }

    accuracy = report["accuracy"]
    print(f"guesses: {report['correct']}/{report['guesses']} correct "
          f"({report['trials']} trials"
          + (f", accuracy {accuracy:.3f}" if accuracy is not None else "")
          + ")")
    if report["caught"]:
        print(f"VIOLATION CAUGHT: empirical eps lower bound "
              f"{report['eps_lb']:.3f} exceeds the charged eps "
              f"{report['charged_eps']:g} at {args.confidence:.0%} confidence")
    else:
        print(f"clean: empirical eps lower bound {report['eps_lb']:.3f} stays "
              f"under the charged eps {report['charged_eps']:g} at "
              f"{args.confidence:.0%} confidence")
    if args.out is not None:
        write_report(args.out, report)
        print(f"report written: {args.out}")
    if args.expect is not None:
        expected_caught = args.expect == "broken"
        if report["caught"] != expected_caught:
            print(f"error: expected {args.expect} but the audit said "
                  f"{'caught' if report['caught'] else 'clean'} "
                  f"({json.dumps({k: report[k] for k in ('trials', 'guesses', 'correct', 'eps_lb', 'charged_eps')})})",
                  file=sys.stderr)
            return 1
        print(f"verdict matches --expect {args.expect}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded: List[str] = []
    if args.tiny:
        forwarded.append("--tiny")
    if args.no_charts:
        forwarded.append("--no-charts")
    return experiments_main(forwarded)


_HANDLERS = {
    "generate": _cmd_generate,
    "select": _cmd_select,
    "mine": _cmd_mine,
    "audit": _cmd_audit,
    "experiment": _cmd_experiment,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
    "trace-report": _cmd_trace_report,
    "load-test": _cmd_load_test,
    "audit-live": _cmd_audit_live,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
