"""Figure 4 — the interactive-setting comparison.

Methods (Table 2, "Interactive"):

* **SVT-DPBook** — Alg. 2, the Dwork–Roth book version.
* **SVT-S-r** — our standard SVT (Alg. 7 with eps3 = 0) under budget
  allocations r in {1:1, 1:3, 1:c, 1:c^(2/3)}.  Item-support queries are
  monotonic counting queries, so the monotonic noise scales apply
  (Section 4.3), and 1:c^(2/3) is the Section-4.2 optimum.

Expected shape (paper Figure 4): SVT-DPBook ≫ SVT-S-1:1 > SVT-S-1:3 >
{SVT-S-1:c, SVT-S-1:c^(2/3)} in SER/FNR, with the last two close and
1:c showing larger variance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.svt import run_svt_batch
from repro.engine.trials import svt_selection_grid, svt_selection_matrix
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    BatchSelectionMethod,
    MethodResult,
    SelectionMethod,
    run_selection_experiment,
)
from repro.variants.dpbook import run_dpbook_batch

__all__ = ["figure4_methods", "run_figure4"]


class _SvtSMethod(BatchSelectionMethod):
    """SVT-S under one budget ratio, batched across all trials via the engine.

    ``run_matrix`` draws each trial's noise from that trial's own generator
    (rho, then the length-n block) — the exact draws the single-trial
    ``__call__`` makes — so batching changes nothing but the wall clock.
    """

    def __init__(self, ratio: str) -> None:
        self.ratio = ratio

    def _allocation(self, epsilon: float, c: int) -> BudgetAllocation:
        return BudgetAllocation.from_ratio(epsilon, c, ratio=self.ratio, monotonic=True)

    def __call__(self, scores, threshold, c, epsilon, rng) -> np.ndarray:
        result = run_svt_batch(
            scores, self._allocation(epsilon, c), c,
            thresholds=threshold, monotonic=True, rng=rng,
        )
        return np.asarray(result.positives, dtype=np.int64)

    def run_matrix(
        self,
        shuffled: np.ndarray,
        threshold: float,
        c: int,
        epsilon: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        return svt_selection_matrix(
            shuffled, threshold, self._allocation(epsilon, c), c,
            monotonic=True, rng=list(rngs),
        )

    def run_grid(
        self,
        shuffled: np.ndarray,
        threshold: float,
        c: int,
        epsilons: Sequence[float],
        make_rngs: Callable[[], List[np.random.Generator]],
    ) -> Dict[float, np.ndarray]:
        # One unit rho/nu draw from the derived streams, rescaled per epsilon
        # — bit-identical to run_matrix at every grid point (Laplace draws
        # are linear in scale for a fixed bit stream), at one draw's cost.
        allocations = {float(e): self._allocation(float(e), c) for e in epsilons}
        return svt_selection_grid(
            shuffled, threshold, allocations, c, monotonic=True, rng=make_rngs()
        )


def _svt_s_method(ratio: str) -> SelectionMethod:
    return _SvtSMethod(ratio)


def _dpbook_method(scores, threshold, c, epsilon, rng) -> np.ndarray:
    result = run_dpbook_batch(scores, epsilon, c, thresholds=threshold, rng=rng)
    return np.asarray(result.positives, dtype=np.int64)


def figure4_methods(config: ExperimentConfig) -> Dict[str, SelectionMethod]:
    """The method roster of Figure 4, keyed by the paper's legend labels."""
    methods: Dict[str, SelectionMethod] = {"SVT-DPBook": _dpbook_method}
    for ratio in config.svt_ratios:
        methods[f"SVT-S-{ratio}"] = _svt_s_method(ratio)
    return methods


def run_figure4(config: ExperimentConfig) -> Dict[str, Dict[str, MethodResult]]:
    """Reproduce Figure 4: {dataset: {method: MethodResult}}."""
    methods = figure4_methods(config)
    output: Dict[str, Dict[str, MethodResult]] = {}
    for name, dataset in config.load_datasets().items():
        c_values = config.usable_c_values(dataset)
        output[name] = run_selection_experiment(
            dataset,
            methods,
            c_values=c_values,
            epsilon=config.epsilon,
            trials=config.trials,
            seed=config.seed,
        )
    return output
