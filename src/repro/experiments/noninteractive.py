"""Figure 5 — the non-interactive comparison (EM vs SVT variants).

Methods (Table 2, "Non-interactive"):

* **SVT-S-1:c^(2/3)** — the best interactive algorithm, as the reference.
* **SVT-ReTr-1:c^(2/3)-kD** — SVT with retraversal, threshold raised by
  k ∈ {1..5} standard deviations of the query noise.
* **EM** — the Exponential Mechanism run c times at eps/c (monotonic
  exponent, since item supports are counting queries).

Expected shape (paper Figure 5): EM at or below every SVT curve; larger
threshold bumps helping more at large c; SVT-ReTr-0D ≈ SVT-S.

Execution: every method on the roster runs all trials at once through the
batch engine — SVT-S via the shared :class:`_SvtSMethod`, retraversal via
:func:`repro.engine.retraversal.retraversal_trials` (segmented multi-pass
rescans), and EM via the row-wise Gumbel-max of
:func:`repro.engine.retraversal.em_selection_matrix`.  Each ``run_matrix``
feeds the engine the *same* per-trial derived streams the single-trial
callable protocol receives, so the batched figure is bit-identical to the
historical per-trial loop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.retraversal import svt_retraversal
from repro.engine.retraversal import em_selection_matrix, retraversal_trials
from repro.experiments.config import ExperimentConfig
from repro.experiments.interactive import _svt_s_method
from repro.experiments.runner import (
    BatchSelectionMethod,
    MethodResult,
    SelectionMethod,
    run_selection_experiment,
)
from repro.mechanisms.exponential import select_top_c_em

__all__ = ["figure5_methods", "run_figure5"]

_RATIO = "1:c^(2/3)"


class _EmMethod(BatchSelectionMethod):
    """c-round EM, batched across all trials via the engine's Gumbel-max."""

    def __call__(self, scores, threshold, c, epsilon, rng) -> np.ndarray:
        return select_top_c_em(scores, epsilon, c, monotonic=True, rng=rng)

    def run_matrix(
        self,
        shuffled: np.ndarray,
        threshold: float,
        c: int,
        epsilon: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        return em_selection_matrix(
            shuffled, epsilon, c, monotonic=True, rng=list(rngs)
        )

    def run_grid(
        self,
        shuffled: np.ndarray,
        threshold: float,
        c: int,
        epsilons: Sequence[float],
        make_rngs: Callable[[], List[np.random.Generator]],
    ) -> Dict[float, np.ndarray]:
        # The Gumbel block is budget-free: draw it once and reuse it across
        # the grid (bit-identical to run_matrix per epsilon, since each
        # rewound stream would redraw the very same block).
        from repro.engine.noise import gumbel_matrix

        rngs = make_rngs()
        gumbel = gumbel_matrix(rngs, shuffled.shape[0], shuffled.shape[1])
        return {
            float(eps): em_selection_matrix(
                shuffled, float(eps), c, monotonic=True, gumbel=gumbel
            )
            for eps in epsilons
        }


class _RetraversalMethod(BatchSelectionMethod):
    """SVT-ReTr under one threshold bump, batched via segmented rescans."""

    def __init__(self, bump_d: float) -> None:
        self.bump_d = float(bump_d)

    def _allocation(self, epsilon: float, c: int) -> BudgetAllocation:
        return BudgetAllocation.from_ratio(epsilon, c, ratio=_RATIO, monotonic=True)

    def __call__(self, scores, threshold, c, epsilon, rng) -> np.ndarray:
        result = svt_retraversal(
            scores,
            self._allocation(epsilon, c),
            c,
            thresholds=threshold,
            monotonic=True,
            threshold_bump_d=self.bump_d,
            rng=rng,
        )
        return np.asarray(result.selected, dtype=np.int64)

    def run_matrix(
        self,
        shuffled: np.ndarray,
        threshold: float,
        c: int,
        epsilon: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        batch = retraversal_trials(
            shuffled,
            self._allocation(epsilon, c),
            c,
            thresholds=threshold,
            monotonic=True,
            threshold_bump_d=self.bump_d,
            rng=list(rngs),
        )
        return batch.selection


def _em_method() -> SelectionMethod:
    return _EmMethod()


def _retraversal_method(bump_d: float) -> SelectionMethod:
    return _RetraversalMethod(bump_d)


def figure5_methods(config: ExperimentConfig) -> Dict[str, SelectionMethod]:
    """The method roster of Figure 5, keyed by the paper's legend labels."""
    methods: Dict[str, SelectionMethod] = {f"SVT-S-{_RATIO}": _svt_s_method(_RATIO)}
    for bump in config.retraversal_bumps:
        methods[f"SVT-ReTr-{_RATIO}-{bump:g}D"] = _retraversal_method(bump)
    methods["EM"] = _em_method()
    return methods


def run_figure5(config: ExperimentConfig) -> Dict[str, Dict[str, MethodResult]]:
    """Reproduce Figure 5: {dataset: {method: MethodResult}}."""
    methods = figure5_methods(config)
    output: Dict[str, Dict[str, MethodResult]] = {}
    for name, dataset in config.load_datasets().items():
        c_values = config.usable_c_values(dataset)
        output[name] = run_selection_experiment(
            dataset,
            methods,
            c_values=c_values,
            epsilon=config.epsilon,
            trials=config.trials,
            seed=config.seed,
        )
    return output
