"""Figure 5 — the non-interactive comparison (EM vs SVT variants).

Methods (Table 2, "Non-interactive"):

* **SVT-S-1:c^(2/3)** — the best interactive algorithm, as the reference.
* **SVT-ReTr-1:c^(2/3)-kD** — SVT with retraversal, threshold raised by
  k ∈ {1..5} standard deviations of the query noise.
* **EM** — the Exponential Mechanism run c times at eps/c (monotonic
  exponent, since item supports are counting queries).

Expected shape (paper Figure 5): EM at or below every SVT curve; larger
threshold bumps helping more at large c; SVT-ReTr-0D ≈ SVT-S.

Execution: the SVT-S reference runs all trials at once through the batch
engine (shared :class:`~repro.experiments.interactive._SvtSMethod`); the
retraversal and EM methods use the harness's per-trial fallback (their
multi-pass / sampling structure is not yet vectorized across trials — see
ROADMAP), with metrics still scored in one vectorized pass.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.retraversal import svt_retraversal
from repro.experiments.config import ExperimentConfig
from repro.experiments.interactive import _svt_s_method
from repro.experiments.runner import MethodResult, SelectionMethod, run_selection_experiment
from repro.mechanisms.exponential import select_top_c_em

__all__ = ["figure5_methods", "run_figure5"]

_RATIO = "1:c^(2/3)"


def _em_method(scores, threshold, c, epsilon, rng) -> np.ndarray:
    return select_top_c_em(scores, epsilon, c, monotonic=True, rng=rng)


def _retraversal_method(bump_d: float) -> SelectionMethod:
    def method(scores, threshold, c, epsilon, rng) -> np.ndarray:
        allocation = BudgetAllocation.from_ratio(epsilon, c, ratio=_RATIO, monotonic=True)
        result = svt_retraversal(
            scores,
            allocation,
            c,
            thresholds=threshold,
            monotonic=True,
            threshold_bump_d=bump_d,
            rng=rng,
        )
        return np.asarray(result.selected, dtype=np.int64)

    return method


def figure5_methods(config: ExperimentConfig) -> Dict[str, SelectionMethod]:
    """The method roster of Figure 5, keyed by the paper's legend labels."""
    methods: Dict[str, SelectionMethod] = {f"SVT-S-{_RATIO}": _svt_s_method(_RATIO)}
    for bump in config.retraversal_bumps:
        methods[f"SVT-ReTr-{_RATIO}-{bump:g}D"] = _retraversal_method(bump)
    methods["EM"] = _em_method
    return methods


def run_figure5(config: ExperimentConfig) -> Dict[str, Dict[str, MethodResult]]:
    """Reproduce Figure 5: {dataset: {method: MethodResult}}."""
    methods = figure5_methods(config)
    output: Dict[str, Dict[str, MethodResult]] = {}
    for name, dataset in config.load_datasets().items():
        c_values = config.usable_c_values(dataset)
        output[name] = run_selection_experiment(
            dataset,
            methods,
            c_values=c_values,
            epsilon=config.epsilon,
            trials=config.trials,
            seed=config.seed,
        )
    return output
