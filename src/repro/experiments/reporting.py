"""ASCII rendering of experiment results (the harness's "figures")."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.bounds import BoundRow
from repro.experiments.runner import MethodResult

__all__ = ["format_result_table", "format_table1", "format_bounds_table"]


def _render(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    table = [list(header)] + [list(r) for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_result_table(
    results: Dict[str, MethodResult],
    metric: str = "ser",
    with_std: bool = True,
) -> str:
    """One dataset's results: rows = c, columns = methods, cells = mean(±std)."""
    methods = list(results)
    c_values = sorted({c for r in results.values() for c in r.by_c})
    header = ["c"] + methods
    rows: List[List[str]] = []
    for c in c_values:
        row = [str(c)]
        for name in methods:
            summary = results[name].by_c.get(c)
            if summary is None:
                row.append("-")
                continue
            mean = getattr(summary, f"{metric}_mean")
            std = getattr(summary, f"{metric}_std")
            row.append(f"{mean:.3f}±{std:.3f}" if with_std else f"{mean:.3f}")
        rows.append(row)
    return _render(header, rows)


def format_table1(rows: Sequence[Tuple[str, int, int]]) -> str:
    """Render Table 1 (dataset characteristics)."""
    header = ("Dataset", "Number of Records", "Number of Items")
    body = [(name, f"{records:,}", f"{items:,}") for name, records, items in rows]
    return _render(header, body)


def format_bounds_table(rows: Sequence[BoundRow]) -> str:
    """Render the Section-5 alpha_SVT vs alpha_EM comparison."""
    header = ("k", "beta", "alpha_SVT", "alpha_EM", "EM/SVT ratio")
    body = [
        (
            f"{r.k:,}",
            f"{r.beta:g}",
            f"{r.alpha_svt:.1f}",
            f"{r.alpha_em:.1f}",
            f"{r.ratio:.4f}",
        )
        for r in rows
    ]
    return _render(header, body)
