"""ASCII line charts for figure-like rendering of experiment series.

The paper's Figures 3-5 are line plots; with no plotting stack guaranteed in
an offline environment, this module renders series as terminal charts so the
harness output visually mirrors the figures.  It is pure formatting — no
numerics live here.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["ascii_chart", "figure_chart"]

_MARKERS = "ox+*#@%&"


def _scale_positions(
    values: np.ndarray, lo: float, hi: float, size: int, log: bool
) -> np.ndarray:
    """Map values to integer cell positions in [0, size-1]."""
    if log:
        values, lo, hi = np.log10(values), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return np.zeros(values.size, dtype=int)
    frac = (values - lo) / (hi - lo)
    return np.clip(np.rint(frac * (size - 1)).astype(int), 0, size - 1)


def ascii_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets a marker from ``oxx+*…``; a legend line maps markers to
    names.  Log axes are supported for Figure-3-style plots.
    """
    if not series:
        raise InvalidParameterError("series must be non-empty")
    if width < 8 or height < 4:
        raise InvalidParameterError("chart must be at least 8x4")

    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if all_x.size == 0:
        raise InvalidParameterError("series contain no points")
    if (logx and all_x.min() <= 0) or (logy and all_y.min() <= 0):
        raise InvalidParameterError("log axes need strictly positive data")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        xs_arr = np.asarray(xs, dtype=float)
        ys_arr = np.asarray(ys, dtype=float)
        if xs_arr.shape != ys_arr.shape:
            raise InvalidParameterError(f"series {name!r} has mismatched x/y lengths")
        cols = _scale_positions(xs_arr, x_lo, x_hi, width, logx)
        rows = _scale_positions(ys_arr, y_lo, y_hi, height, logy)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    y_labels = [f"{y_hi:.3g}", f"{(y_lo + y_hi) / 2:.3g}", f"{y_lo:.3g}"]
    label_width = max(len(label) for label in y_labels)
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = y_labels[0]
        elif i == height // 2:
            label = y_labels[1]
        elif i == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(" " * label_width + "  " + x_axis)
    lines.append("  ".join(legend))
    return "\n".join(lines)


def figure_chart(
    results: Dict[str, "object"],
    metric: str = "ser",
    title: str = "",
    width: int = 64,
    height: int = 16,
) -> str:
    """Chart a ``{method: MethodResult}`` mapping (Figure 4/5 panels)."""
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {}
    for name, method_result in results.items():
        cs, means = method_result.series(metric)
        series[name] = (cs, means)
    return ascii_chart(series, width=width, height=height, title=title)
