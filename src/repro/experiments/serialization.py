"""Saving and loading experiment results.

Reproduction runs are expensive (hours at paper scale), so results are
first-class artifacts: :func:`save_results` writes a run — config plus every
method/c cell — to a JSON document with a format version, and
:func:`load_results` restores the exact ``{dataset: {method: MethodResult}}``
structure.  :func:`export_artifacts` writes the full set of human-readable
artifacts (tables, series CSVs, JSON) to a directory, which is what the
EXPERIMENTS.md record is generated from.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

from repro.exceptions import InvalidParameterError
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_result_table
from repro.experiments.runner import MethodResult, MetricSummary

__all__ = ["save_results", "load_results", "export_artifacts", "FORMAT_VERSION"]

FORMAT_VERSION = 1

Results = Dict[str, Dict[str, MethodResult]]


def _config_to_dict(config: ExperimentConfig) -> dict:
    return dataclasses.asdict(config)


def save_results(
    results: Results,
    config: ExperimentConfig,
    path: Union[str, Path],
    label: str = "",
) -> None:
    """Serialize a figure run to JSON (format-versioned)."""
    document = {
        "format_version": FORMAT_VERSION,
        "label": label,
        "config": _config_to_dict(config),
        "datasets": {},
    }
    for dataset, methods in results.items():
        document["datasets"][dataset] = {}
        for method, method_result in methods.items():
            document["datasets"][dataset][method] = {
                str(c): dataclasses.asdict(summary)
                for c, summary in method_result.by_c.items()
            }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> Results:
    """Restore ``{dataset: {method: MethodResult}}`` from :func:`save_results` output."""
    document = json.loads(Path(path).read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise InvalidParameterError(
            f"unsupported results format version {version!r}; expected {FORMAT_VERSION}"
        )
    results: Results = {}
    for dataset, methods in document["datasets"].items():
        results[dataset] = {}
        for method, cells in methods.items():
            by_c = {
                int(c): MetricSummary(**summary) for c, summary in cells.items()
            }
            results[dataset][method] = MethodResult(
                method=method, dataset=dataset, by_c=by_c
            )
    return results


def export_artifacts(
    results: Results,
    config: ExperimentConfig,
    directory: Union[str, Path],
    label: str,
) -> Path:
    """Write JSON + per-dataset tables + CSV series under *directory*/*label*.

    Layout::

        <directory>/<label>/
          results.json
          <dataset>.ser.txt        ASCII table (mean±std)
          <dataset>.fnr.txt
          <dataset>.csv            long-format rows: method,c,ser_mean,...

    Returns the created run directory.
    """
    run_dir = Path(directory) / label
    run_dir.mkdir(parents=True, exist_ok=True)
    save_results(results, config, run_dir / "results.json", label=label)
    for dataset, methods in results.items():
        for metric in ("ser", "fnr"):
            table = format_result_table(methods, metric, with_std=True)
            (run_dir / f"{dataset}.{metric}.txt").write_text(table + "\n")
        rows = ["method,c,ser_mean,ser_std,fnr_mean,fnr_std,trials"]
        for method, method_result in methods.items():
            for c in sorted(method_result.by_c):
                s = method_result.by_c[c]
                rows.append(
                    f"{method},{c},{s.ser_mean:.6f},{s.ser_std:.6f},"
                    f"{s.fnr_mean:.6f},{s.fnr_std:.6f},{s.trials}"
                )
        (run_dir / f"{dataset}.csv").write_text("\n".join(rows) + "\n")
    return run_dir
