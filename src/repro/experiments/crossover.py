"""The paper's eps-c equivalence remark, as an experiment.

Section 6: *"We note that varying c have a similar impact of varying eps,
since the accuracy of each method is mostly affect by eps/c; therefore the
impact of different eps can be seen from different c values."*

This driver makes the remark checkable: it runs the same method twice —
once sweeping c at fixed eps, once sweeping eps at fixed c — along a path of
equal ``eps/c`` values, and reports the SER pairs.  If the remark holds, the
paired SERs track each other closely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.data.generators import ScoreDataset
from repro.engine.trials import svt_selection_matrix
from repro.exceptions import InvalidParameterError
from repro.metrics.utility import batch_selection_metrics
from repro.rng import derive_rng

__all__ = ["CrossoverPoint", "eps_c_equivalence"]


@dataclass(frozen=True)
class CrossoverPoint:
    """One matched pair of runs with equal eps/c."""

    eps_over_c: float
    c_sweep_c: int
    c_sweep_eps: float
    c_sweep_ser: float
    eps_sweep_c: int
    eps_sweep_eps: float
    eps_sweep_ser: float

    @property
    def gap(self) -> float:
        """Absolute SER difference between the matched runs."""
        return abs(self.c_sweep_ser - self.eps_sweep_ser)


def _mean_ser(
    dataset: ScoreDataset,
    epsilon: float,
    c: int,
    trials: int,
    seed,
) -> float:
    scores = dataset.supports.astype(float)
    threshold = dataset.threshold_for_c(c)
    # Batched through the engine with the same per-trial derived streams the
    # historical per-trial loop used, so results are unchanged bit for bit.
    perms = np.stack(
        [
            derive_rng(seed, "xover-shuffle", c, trial).permutation(scores.size)
            for trial in range(trials)
        ]
    )
    rngs = [
        derive_rng(seed, "xover-mech", c, trial, int(epsilon * 1e9))
        for trial in range(trials)
    ]
    allocation = BudgetAllocation.from_ratio(epsilon, c, "1:c^(2/3)", monotonic=True)
    selection = svt_selection_matrix(
        scores[perms], threshold, allocation, c, monotonic=True, rng=rngs
    )
    sers, _fnr = batch_selection_metrics(scores[perms], selection, c, base_scores=scores)
    return float(np.mean(sers))


def eps_c_equivalence(
    dataset: ScoreDataset,
    c_values: Sequence[int] = (10, 20, 40, 80),
    base_epsilon: float = 0.1,
    base_c: int = 20,
    trials: int = 20,
    seed: int = 0,
) -> List[CrossoverPoint]:
    """Match a c-sweep at fixed eps against an eps-sweep at fixed c.

    For each c in *c_values*, the partner epsilon is
    ``base_epsilon * base_c / c`` so both runs share ``eps/c``.  SER is
    evaluated at the run's own c (the task changes with c, so the c-sweep's
    threshold/truth move accordingly; the remark is about the *noise* regime,
    which eps/c pins).
    """
    if base_c not in c_values:
        raise InvalidParameterError("base_c should be one of c_values for a shared anchor")
    points: List[CrossoverPoint] = []
    for c in c_values:
        if c >= dataset.num_items:
            raise InvalidParameterError(
                f"c={c} too large for dataset with {dataset.num_items} items"
            )
        ratio = base_epsilon / c  # the shared eps/c value of this pair
        # c-sweep member: (eps = base_epsilon, c = c).
        ser_c_sweep = _mean_ser(dataset, base_epsilon, c, trials, seed)
        # eps-sweep member: (eps = ratio * base_c, c = base_c).
        partner_eps = ratio * base_c
        ser_eps_sweep = _mean_ser(dataset, partner_eps, base_c, trials, seed)
        points.append(
            CrossoverPoint(
                eps_over_c=ratio,
                c_sweep_c=c,
                c_sweep_eps=base_epsilon,
                c_sweep_ser=ser_c_sweep,
                eps_sweep_c=base_c,
                eps_sweep_eps=partner_eps,
                eps_sweep_ser=ser_eps_sweep,
            )
        )
    return points
