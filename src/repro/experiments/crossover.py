"""The paper's eps-c equivalence remark, as an experiment.

Section 6: *"We note that varying c have a similar impact of varying eps,
since the accuracy of each method is mostly affect by eps/c; therefore the
impact of different eps can be seen from different c values."*

This driver makes the remark checkable: it runs the same method twice —
once sweeping c at fixed eps, once sweeping eps at fixed c — along a path of
equal ``eps/c`` values, and reports the SER pairs.  If the remark holds, the
paired SERs track each other closely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.data.generators import ScoreDataset
from repro.engine.trials import run_trials
from repro.exceptions import InvalidParameterError
from repro.rng import derive_rngs

__all__ = ["CrossoverPoint", "eps_c_equivalence"]

_RATIO = "1:c^(2/3)"


@dataclass(frozen=True)
class CrossoverPoint:
    """One matched pair of runs with equal eps/c."""

    eps_over_c: float
    c_sweep_c: int
    c_sweep_eps: float
    c_sweep_ser: float
    eps_sweep_c: int
    eps_sweep_eps: float
    eps_sweep_ser: float

    @property
    def gap(self) -> float:
        """Absolute SER difference between the matched runs."""
        return abs(self.c_sweep_ser - self.eps_sweep_ser)


def _mean_ser(
    dataset: ScoreDataset,
    epsilons: Sequence[float],
    c: int,
    trials: int,
    seed,
) -> Dict[float, float]:
    """Mean SER of SVT-S-1:c^(2/3) at fixed c over a whole epsilon grid.

    One multi-epsilon :func:`~repro.engine.trials.run_trials` call: per-trial
    derived streams (keyed by c, *not* by epsilon) supply the shuffles and
    one unit noise block that the grid rescales per epsilon.  Trials are
    therefore paired along the epsilon axis, and a grid cell is bit-identical
    to a standalone single-epsilon call with the same keys — which keeps the
    c-sweep and eps-sweep members of the anchor pair (c == base_c, equal
    epsilon) exactly equal.
    """
    scores = dataset.supports.astype(float)
    grid = run_trials(
        "alg1",
        scores,
        [float(e) for e in epsilons],
        c,
        trials,
        thresholds=dataset.threshold_for_c(c),
        rng=derive_rngs(seed, trials, "xover", c),
        shuffle=True,
        monotonic=True,
        ratio=_RATIO,
    )
    return {eps: batch.ser_mean for eps, batch in grid.items()}


def eps_c_equivalence(
    dataset: ScoreDataset,
    c_values: Sequence[int] = (10, 20, 40, 80),
    base_epsilon: float = 0.1,
    base_c: int = 20,
    trials: int = 20,
    seed: int = 0,
) -> List[CrossoverPoint]:
    """Match a c-sweep at fixed eps against an eps-sweep at fixed c.

    For each c in *c_values*, the partner epsilon is
    ``base_epsilon * base_c / c`` so both runs share ``eps/c``.  SER is
    evaluated at the run's own c (the task changes with c, so the c-sweep's
    threshold/truth move accordingly; the remark is about the *noise* regime,
    which eps/c pins).
    """
    if base_c not in c_values:
        raise InvalidParameterError("base_c should be one of c_values for a shared anchor")
    for c in c_values:
        if c >= dataset.num_items:
            raise InvalidParameterError(
                f"c={c} too large for dataset with {dataset.num_items} items"
            )
    # The eps-sweep members all run at c = base_c, so the whole sweep is one
    # multi-epsilon engine pass sharing one noise block across the grid.
    partner_eps = {c: base_epsilon * base_c / c for c in c_values}
    eps_sweep_ser = _mean_ser(
        dataset, [partner_eps[c] for c in c_values], base_c, trials, seed
    )
    points: List[CrossoverPoint] = []
    for c in c_values:
        # c-sweep member: (eps = base_epsilon, c = c).  At c == base_c this
        # recomputes the grid's anchor cell on purpose: the two independent
        # computations agreeing bit-for-bit is the property the anchor pair
        # (and its test) certifies — do not reuse eps_sweep_ser here.
        ser_c_sweep = _mean_ser(dataset, [base_epsilon], c, trials, seed)[base_epsilon]
        points.append(
            CrossoverPoint(
                eps_over_c=base_epsilon / c,
                c_sweep_c=c,
                c_sweep_eps=base_epsilon,
                c_sweep_ser=ser_c_sweep,
                eps_sweep_c=base_c,
                eps_sweep_eps=partner_eps[c],
                eps_sweep_ser=eps_sweep_ser[partner_eps[c]],
            )
        )
    return points
