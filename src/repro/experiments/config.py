"""Experiment configuration.

The paper's settings (Section 6): privacy budget eps = 0.1; c from 25 to 300
in steps of 25; threshold = average of the c-th and (c+1)-th highest scores;
100 trials with the item order randomized each trial; datasets BMS-POS,
Kosarak, AOL, Zipf.

Full-fidelity runs are expensive (AOL has 2.3M items), so the config carries
a ``dataset_scale`` knob that shrinks the synthetic datasets proportionally
(shape-preserving; see generators) and the usual trials/c-grid knobs.
Environment variables ``REPRO_SCALE``, ``REPRO_TRIALS`` override for bench
runs without code edits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.data.generators import generate_dataset, ScoreDataset
from repro.exceptions import InvalidParameterError
from repro.rng import derive_rng

__all__ = ["ExperimentConfig"]

_PAPER_C_GRID = tuple(range(25, 301, 25))


@dataclass(frozen=True)
class ExperimentConfig:
    """Settings shared by the Figure 4/5 drivers."""

    datasets: Tuple[str, ...] = ("BMS-POS", "Kosarak", "AOL", "Zipf")
    c_values: Tuple[int, ...] = _PAPER_C_GRID
    epsilon: float = 0.1
    trials: int = 100
    dataset_scale: float = 1.0
    seed: int = 20170401  # arbitrary fixed seed: VLDB 2017 submission spring
    retraversal_bumps: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
    svt_ratios: Tuple[str, ...] = ("1:1", "1:3", "1:c", "1:c^(2/3)")

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise InvalidParameterError("epsilon must be > 0")
        if self.trials <= 0:
            raise InvalidParameterError("trials must be > 0")
        if not 0.0 < self.dataset_scale <= 1.0:
            raise InvalidParameterError("dataset_scale must be in (0, 1]")
        if not self.c_values or any(c <= 0 for c in self.c_values):
            raise InvalidParameterError("c_values must be positive")

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The full Section-6 configuration (slow: hours on a laptop)."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A minutes-scale configuration preserving the qualitative shapes.

        Datasets shrink to 10%, the c grid thins to four points, and 20
        trials replace 100.  ``REPRO_SCALE`` / ``REPRO_TRIALS`` env vars
        override further.
        """
        scale = float(os.environ.get("REPRO_SCALE", "0.1"))
        trials = int(os.environ.get("REPRO_TRIALS", "20"))
        return cls(
            c_values=(25, 100, 200, 300),
            trials=trials,
            dataset_scale=scale,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """A seconds-scale configuration for unit tests."""
        return cls(
            datasets=("Kosarak", "Zipf"),
            c_values=(10, 25),
            trials=5,
            dataset_scale=0.02,
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def load_datasets(self) -> Dict[str, ScoreDataset]:
        """Generate every configured dataset deterministically from the seed."""
        out: Dict[str, ScoreDataset] = {}
        for name in self.datasets:
            rng = derive_rng(self.seed, "dataset", name)
            out[name] = generate_dataset(name, rng=rng, scale=self.dataset_scale)
        return out

    def usable_c_values(self, dataset: ScoreDataset) -> Tuple[int, ...]:
        """The configured c grid, dropping values too large for the dataset.

        A c is usable when the dataset has strictly more than c items (the
        threshold needs a (c+1)-th score).
        """
        return tuple(c for c in self.c_values if c < dataset.num_items)
