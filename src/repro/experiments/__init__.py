"""The Section-6 evaluation harness.

One driver per paper artifact:

* :func:`table1` / :func:`figure3_series` — dataset characteristics and the
  top-300 score distributions.
* :func:`run_figure4` — interactive setting: SVT-DPBook vs SVT-S under four
  budget allocations (SER and FNR over c).
* :func:`run_figure5` — non-interactive setting: EM vs SVT-ReTr-1D..5D vs
  SVT-S.
* :func:`section5_bound_table` — the alpha_SVT vs alpha_EM closed forms.

All drivers accept an :class:`ExperimentConfig`; the default mirrors the
paper (eps = 0.1, c = 25..300, 100 trials, full-size datasets) and
:meth:`ExperimentConfig.quick` shrinks everything for CI-scale runs.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MetricSummary,
    MethodResult,
    run_selection_experiment,
)
from repro.experiments.distributions import figure3_series, table1
from repro.experiments.interactive import figure4_methods, run_figure4
from repro.experiments.noninteractive import figure5_methods, run_figure5
from repro.experiments.bounds import section5_bound_table
from repro.experiments.crossover import CrossoverPoint, eps_c_equivalence
from repro.experiments.sweep import epsilon_sweep, format_epsilon_sweep
from repro.experiments.invalid_results import InvalidResultsRow, invalid_results_demo
from repro.experiments.reporting import format_result_table, format_table1
from repro.experiments.ascii_plot import ascii_chart, figure_chart

__all__ = [
    "ExperimentConfig",
    "MetricSummary",
    "MethodResult",
    "run_selection_experiment",
    "table1",
    "figure3_series",
    "run_figure4",
    "figure4_methods",
    "run_figure5",
    "figure5_methods",
    "section5_bound_table",
    "eps_c_equivalence",
    "epsilon_sweep",
    "format_epsilon_sweep",
    "CrossoverPoint",
    "invalid_results_demo",
    "InvalidResultsRow",
    "format_result_table",
    "format_table1",
    "ascii_chart",
    "figure_chart",
]
