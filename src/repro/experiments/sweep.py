"""Epsilon sweeps — the results the paper omitted for space.

Section 6: "We show results for privacy budget eps = 0.1 in the paper.  We
omit results for other eps values because of space limitation."  This driver
fills the gap: SER of each Figure-4/5 method as a function of eps at fixed c,
on any dataset.  Combined with :mod:`repro.experiments.crossover` it also
illustrates *why* the omission was harmless (eps/c governs everything).

The whole grid runs as one multi-epsilon pass
(:func:`~repro.experiments.runner.run_selection_sweep`): shuffles and
derived mechanism streams are shared across the grid — byte-identical to the
historical one-:func:`run_selection_experiment`-per-epsilon loop, but
engine-backed methods sample their noise once and rescale it per epsilon
instead of redrawing at every grid point.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.data.generators import ScoreDataset
from repro.exceptions import InvalidParameterError
from repro.experiments.runner import (
    MetricSummary,
    SelectionMethod,
    run_selection_sweep,
)

__all__ = ["epsilon_sweep"]


def epsilon_sweep(
    dataset: ScoreDataset,
    methods: Dict[str, SelectionMethod],
    epsilons: Sequence[float] = (0.025, 0.05, 0.1, 0.2, 0.4),
    c: int = 25,
    trials: int = 20,
    seed: int = 0,
) -> Dict[str, Dict[float, MetricSummary]]:
    """SER/FNR of every method at each epsilon, fixed c.

    Returns ``{method: {epsilon: MetricSummary}}``.  Trials are paired both
    across methods (same shuffles within an epsilon) and across epsilons
    (same shuffles and derived streams along the grid).
    """
    if not epsilons or any(e <= 0 for e in epsilons):
        raise InvalidParameterError("epsilons must be positive")
    return run_selection_sweep(
        dataset, methods, c=c, epsilons=epsilons, trials=trials, seed=seed
    )


def format_epsilon_sweep(
    sweep: Dict[str, Dict[float, MetricSummary]], metric: str = "ser"
) -> str:
    """Rows = epsilon, columns = methods (mirrors format_result_table)."""
    if metric not in ("ser", "fnr"):
        raise InvalidParameterError("metric must be 'ser' or 'fnr'")
    methods = list(sweep)
    epsilons = sorted({e for per_method in sweep.values() for e in per_method})
    header = ["eps"] + methods
    rows: List[List[str]] = []
    for epsilon in epsilons:
        row = [f"{epsilon:g}"]
        for name in methods:
            summary = sweep[name].get(epsilon)
            row.append("-" if summary is None else f"{getattr(summary, metric + '_mean'):.3f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(cell.rjust(w) for cell, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
