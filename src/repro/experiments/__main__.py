"""Run the whole Section-6 reproduction from the command line.

Usage::

    python -m repro.experiments                 # quick mode (minutes)
    python -m repro.experiments --tiny          # smoke mode (seconds)
    REPRO_SCALE=0.2 REPRO_TRIALS=50 python -m repro.experiments

Prints Table 1, the Figure-3 series, the Figure-2 table, the Figure-4 and
Figure-5 SER/FNR tables with ASCII charts, and the Section-5 bound table.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ascii_plot import figure_chart
from repro.experiments.bounds import section5_bound_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.distributions import figure3_series, table1
from repro.experiments.interactive import run_figure4
from repro.experiments.noninteractive import run_figure5
from repro.experiments.reporting import (
    format_bounds_table,
    format_result_table,
    format_table1,
)
from repro.variants.registry import figure2_table


def _banner(text: str) -> None:
    print("\n" + "#" * 72)
    print(f"# {text}")
    print("#" * 72)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke configuration"
    )
    parser.add_argument(
        "--no-charts", action="store_true", help="skip the ASCII charts"
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="also write tables/CSV/JSON artifacts under DIR/figure4 and DIR/figure5",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig.tiny() if args.tiny else ExperimentConfig.quick()
    start = time.time()
    print(
        f"configuration: datasets={config.datasets}, c={config.c_values}, "
        f"eps={config.epsilon}, trials={config.trials}, scale={config.dataset_scale}"
    )

    _banner("Table 1 — dataset characteristics")
    print(format_table1(table1(config)))

    _banner("Figure 3 — top-score distributions (decade samples)")
    series = figure3_series(config)
    ranks = [1, 3, 10, 30, 100, 300]
    header = "rank    " + "".join(f"{name:>12}" for name in series)
    print(header)
    for r in ranks:
        cells = []
        for name in series:
            values = series[name]
            cells.append(f"{values[r - 1]:>12,}" if r <= values.size else f"{'-':>12}")
        print(f"{r:<8}" + "".join(cells))

    _banner("Figure 2 — variant comparison")
    print(figure2_table())

    _banner("Figure 4 — interactive setting")
    figure4 = run_figure4(config)
    for dataset, results in figure4.items():
        print(f"\n--- {dataset}: SER ---")
        print(format_result_table(results, "ser", with_std=False))
        print(f"\n--- {dataset}: FNR ---")
        print(format_result_table(results, "fnr", with_std=False))
        if not args.no_charts:
            print()
            print(figure_chart(results, "ser", title=f"{dataset} SER vs c"))

    _banner("Figure 5 — non-interactive setting")
    figure5 = run_figure5(config)
    for dataset, results in figure5.items():
        print(f"\n--- {dataset}: SER ---")
        print(format_result_table(results, "ser", with_std=False))
        print(f"\n--- {dataset}: FNR ---")
        print(format_result_table(results, "fnr", with_std=False))
        if not args.no_charts:
            print()
            print(figure_chart(results, "ser", title=f"{dataset} SER vs c"))

    _banner("Section 5 — analytical bounds")
    print(format_bounds_table(section5_bound_table()))

    if args.export:
        from repro.experiments.serialization import export_artifacts

        fig4_dir = export_artifacts(figure4, config, args.export, "figure4")
        fig5_dir = export_artifacts(figure5, config, args.export, "figure5")
        print(f"\nartifacts written to {fig4_dir} and {fig5_dir}")

    print(f"\ntotal time: {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
