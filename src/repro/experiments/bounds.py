"""Section 5's analytical SVT-vs-EM comparison as a table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.theory import alpha_em, alpha_svt

__all__ = ["BoundRow", "section5_bound_table"]


@dataclass(frozen=True)
class BoundRow:
    """One (k, beta) point of the alpha_SVT vs alpha_EM comparison."""

    k: int
    beta: float
    epsilon: float
    alpha_svt: float
    alpha_em: float

    @property
    def ratio(self) -> float:
        """alpha_EM / alpha_SVT — the paper asserts this is below 1/8."""
        return self.alpha_em / self.alpha_svt


def section5_bound_table(
    k_values: Sequence[int] = (10, 100, 1_000, 10_000, 100_000),
    betas: Sequence[float] = (0.1, 0.05, 0.01),
    epsilon: float = 0.1,
) -> List[BoundRow]:
    """Tabulate both accuracy bounds over a (k, beta) grid."""
    rows: List[BoundRow] = []
    for k in k_values:
        for beta in betas:
            rows.append(
                BoundRow(
                    k=int(k),
                    beta=float(beta),
                    epsilon=float(epsilon),
                    alpha_svt=alpha_svt(int(k), float(beta), float(epsilon)),
                    alpha_em=alpha_em(int(k), float(beta), float(epsilon)),
                )
            )
    return rows
