"""The generic selection-experiment loop.

One *trial* is exactly the paper's protocol: shuffle the items, hand the
shuffled score vector (and the threshold computed from the *true* c-th and
(c+1)-th scores) to a selection method, map the selected shuffled indices
back to original identities, and score the selection with SER and FNR.
Trials are averaged; each trial gets an independent child RNG so results are
invariant to trial order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.data.generators import ScoreDataset
from repro.exceptions import InvalidParameterError
from repro.metrics.utility import false_negative_rate, score_error_rate
from repro.rng import RngLike, derive_rng

__all__ = ["SelectionMethod", "MetricSummary", "MethodResult", "run_selection_experiment"]

#: A selection method: (shuffled_scores, threshold, c, epsilon, rng) -> indices
#: into the shuffled array.
SelectionMethod = Callable[[np.ndarray, float, int, float, np.random.Generator], np.ndarray]


@dataclass(frozen=True)
class MetricSummary:
    """Mean and standard deviation of SER and FNR over the trials."""

    ser_mean: float
    ser_std: float
    fnr_mean: float
    fnr_std: float
    trials: int


@dataclass
class MethodResult:
    """Per-c summaries for one method on one dataset."""

    method: str
    dataset: str
    by_c: Dict[int, MetricSummary]

    def series(self, metric: str = "ser") -> Tuple[List[int], List[float]]:
        """(c values, metric means) ready for plotting/tabulation."""
        if metric not in ("ser", "fnr"):
            raise InvalidParameterError("metric must be 'ser' or 'fnr'")
        cs = sorted(self.by_c)
        attr = f"{metric}_mean"
        return cs, [getattr(self.by_c[c], attr) for c in cs]


def run_selection_experiment(
    dataset: ScoreDataset,
    methods: Dict[str, SelectionMethod],
    c_values: Sequence[int],
    epsilon: float,
    trials: int,
    seed: RngLike = 0,
) -> Dict[str, MethodResult]:
    """Run every method over every c, *trials* times each, on one dataset.

    All methods within a (c, trial) cell see the **same** shuffled order, so
    method comparisons are paired (lower variance in the differences), while
    their mechanism randomness stays independent.
    """
    if epsilon <= 0:
        raise InvalidParameterError("epsilon must be > 0")
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    scores = dataset.supports.astype(float)
    n = scores.size
    results: Dict[str, MethodResult] = {
        name: MethodResult(method=name, dataset=dataset.name, by_c={}) for name in methods
    }
    for c in c_values:
        c = int(c)
        if c >= n:
            raise InvalidParameterError(
                f"c={c} needs a (c+1)-th score but {dataset.name} has {n} items"
            )
        threshold = dataset.threshold_for_c(c)
        per_method_ser: Dict[str, List[float]] = {name: [] for name in methods}
        per_method_fnr: Dict[str, List[float]] = {name: [] for name in methods}
        for trial in range(trials):
            shuffle_rng = derive_rng(seed, "shuffle", dataset.name, c, trial)
            perm = shuffle_rng.permutation(n)
            shuffled = scores[perm]
            for name, method in methods.items():
                mech_rng = derive_rng(seed, "mech", name, dataset.name, c, trial)
                picked = np.asarray(
                    method(shuffled, threshold, c, epsilon, mech_rng), dtype=np.int64
                )
                original = perm[picked] if picked.size else picked
                per_method_ser[name].append(score_error_rate(scores, original, c))
                per_method_fnr[name].append(false_negative_rate(scores, original, c))
        for name in methods:
            ser = np.asarray(per_method_ser[name])
            fnr = np.asarray(per_method_fnr[name])
            results[name].by_c[c] = MetricSummary(
                ser_mean=float(ser.mean()),
                ser_std=float(ser.std(ddof=1)) if trials > 1 else 0.0,
                fnr_mean=float(fnr.mean()),
                fnr_std=float(fnr.std(ddof=1)) if trials > 1 else 0.0,
                trials=trials,
            )
    return results
