"""The generic selection-experiment loop, batched through the engine.

One *trial* is exactly the paper's protocol: shuffle the items, hand the
shuffled score vector (and the threshold computed from the *true* c-th and
(c+1)-th scores) to a selection method, map the selected shuffled indices
back to original identities, and score the selection with SER and FNR.
Trials are averaged; each trial gets an independent child RNG so results are
invariant to trial order.

Execution model: the harness builds the whole ``(trials, n)`` shuffled score
matrix up front and scores every method's selections with one vectorized
SER/FNR pass (:func:`repro.metrics.utility.batch_selection_metrics`).
Methods come in two flavors:

* a plain callable ``(shuffled_scores, threshold, c, epsilon, rng) ->
  indices`` — invoked once per trial (the pre-engine protocol, still
  supported for methods with inherently sequential structure such as
  retraversal);
* a :class:`BatchSelectionMethod` — additionally exposes ``run_matrix``
  which consumes the full trial matrix at once through
  :mod:`repro.engine.trials`.  The per-trial generators are the *same*
  derived streams the callable protocol receives, so promoting a method to
  the batch path does not change a single released bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generators import ScoreDataset
from repro.exceptions import InvalidParameterError
from repro.metrics.utility import batch_selection_metrics
from repro.rng import RngLike, derive_rng, derive_rngs

__all__ = [
    "SelectionMethod",
    "BatchSelectionMethod",
    "MetricSummary",
    "MethodResult",
    "run_selection_experiment",
    "run_selection_sweep",
]

#: A selection method: (shuffled_scores, threshold, c, epsilon, rng) -> indices
#: into the shuffled array.
SelectionMethod = Callable[[np.ndarray, float, int, float, np.random.Generator], np.ndarray]


class BatchSelectionMethod:
    """A selection method the harness may run over all trials in one pass.

    Subclasses implement :meth:`run_matrix`; ``__call__`` must remain the
    single-trial protocol (used by tooling that probes one trial at a time).
    """

    def __call__(
        self,
        scores: np.ndarray,
        threshold: float,
        c: int,
        epsilon: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        raise NotImplementedError

    def run_matrix(
        self,
        shuffled: np.ndarray,
        threshold: float,
        c: int,
        epsilon: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Selections for every trial row; ``(trials, k)`` padded with -1."""
        raise NotImplementedError

    def run_grid(
        self,
        shuffled: np.ndarray,
        threshold: float,
        c: int,
        epsilons: Sequence[float],
        make_rngs: Callable[[], List[np.random.Generator]],
    ) -> Dict[float, np.ndarray]:
        """Selections for a whole epsilon grid, same trials at every epsilon.

        ``make_rngs`` returns a *fresh* (rewound) list of the per-trial
        generators — the same derived streams at every call — so the default
        per-epsilon loop reproduces exactly what running ``run_matrix`` per
        epsilon with the harness's derivation would.  Engine-backed methods
        override this to draw the streams' unit noise once and rescale per
        epsilon (bit-identical output, one sampling pass — see
        :func:`repro.engine.trials.svt_selection_grid`).
        """
        return {
            float(eps): self.run_matrix(shuffled, threshold, c, float(eps), make_rngs())
            for eps in epsilons
        }


@dataclass(frozen=True)
class MetricSummary:
    """Mean and standard deviation of SER and FNR over the trials."""

    ser_mean: float
    ser_std: float
    fnr_mean: float
    fnr_std: float
    trials: int


@dataclass
class MethodResult:
    """Per-c summaries for one method on one dataset."""

    method: str
    dataset: str
    by_c: Dict[int, MetricSummary]

    def series(self, metric: str = "ser") -> Tuple[List[int], List[float]]:
        """(c values, metric means) ready for plotting/tabulation."""
        if metric not in ("ser", "fnr"):
            raise InvalidParameterError("metric must be 'ser' or 'fnr'")
        cs = sorted(self.by_c)
        attr = f"{metric}_mean"
        return cs, [getattr(self.by_c[c], attr) for c in cs]


def _pad_selections(picks: List[np.ndarray]) -> np.ndarray:
    """Stack ragged per-trial index arrays into a -1-padded matrix."""
    width = max((p.size for p in picks), default=0)
    out = np.full((len(picks), max(width, 1)), -1, dtype=np.int64)
    for t, p in enumerate(picks):
        out[t, : p.size] = p
    return out


def _run_experiment_cell(payload: tuple) -> MetricSummary:
    """One (method, c) figure cell, executed in a worker process.

    Calls :func:`run_selection_experiment` on the singleton cell: every
    shuffle and mechanism stream is derived from ``(seed, dataset, name,
    c, ...)`` alone, so a cell computed in isolation is byte-identical to
    the same cell inside a full serial run.
    """
    dataset, name, method, c, epsilon, trials, seed, max_bytes = payload
    result = run_selection_experiment(
        dataset, {name: method}, [c], epsilon, trials, seed, max_bytes=max_bytes
    )
    return result[name].by_c[c]


def _trial_chunks(
    trials: int, n: int, max_bytes, memory_probe=None
) -> List[Tuple[int, int]]:
    """[t0, t1) trial windows keeping the (chunk, n) working set budgeted.

    The harness's hot allocation is the shuffled score matrix plus the
    engine blocks behind ``run_matrix``; both scale with (trials × n), so
    the engine's own planner sizes the windows.  ``max_bytes=None`` keeps
    the historical single-window behavior.  With a static byte budget the
    windows are uniform (the historical layout); with ``max_bytes="auto"``
    each successive window is re-planned from a fresh *memory_probe* read —
    the same between-chunks live feedback :mod:`repro.engine.exec` applies —
    so window sizes follow the machine's actual headroom.  Results are
    byte-identical either way: every shuffle and mechanism stream is keyed
    by the global trial index, never by the window layout.
    """
    if max_bytes is None:
        return [(0, trials)]
    from repro.engine.plans import plan_trials

    windows: List[Tuple[int, int]] = []
    t0 = 0
    while t0 < trials:
        chunk = plan_trials(
            trials - t0, n, max_bytes, memory_probe=memory_probe
        ).chunk_trials
        t1 = min(t0 + chunk, trials)
        windows.append((t0, t1))
        t0 = t1
    return windows


def _summarize(ser: np.ndarray, fnr: np.ndarray, trials: int) -> MetricSummary:
    return MetricSummary(
        ser_mean=float(ser.mean()),
        ser_std=float(ser.std(ddof=1)) if trials > 1 else 0.0,
        fnr_mean=float(fnr.mean()),
        fnr_std=float(fnr.std(ddof=1)) if trials > 1 else 0.0,
        trials=trials,
    )


def run_selection_experiment(
    dataset: ScoreDataset,
    methods: Dict[str, SelectionMethod],
    c_values: Sequence[int],
    epsilon: float,
    trials: int,
    seed: RngLike = 0,
    parallel: Optional[str] = None,
    workers: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> Dict[str, MethodResult]:
    """Run every method over every c, *trials* times each, on one dataset.

    All methods within a (c, trial) cell see the **same** shuffled order, so
    method comparisons are paired (lower variance in the differences), while
    their mechanism randomness stays independent.

    ``parallel="process"`` fans the (method, c) cells out across a process
    pool (:func:`repro.engine.exec.run_sharded`, the same machinery that
    shards engine trial chunks).  Because every cell derives its shuffles
    and mechanism streams from *seed* and its own coordinates, the fan-out
    is bit-identical to the serial loop; it requires a stateless *seed*
    (int/None) and picklable methods.

    ``max_bytes`` bounds the harness working set — the (trials, n) shuffled
    score matrix and the engine blocks behind it — by windowing the trial
    axis.  Every shuffle and mechanism stream is derived from the *global*
    trial index, so windowed results are byte-identical to the unwindowed
    run (and to any other window size).
    """
    if epsilon <= 0:
        raise InvalidParameterError("epsilon must be > 0")
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    scores = np.asarray(dataset.supports, dtype=float)
    n = scores.size
    for c in c_values:
        if int(c) >= n:
            raise InvalidParameterError(
                f"c={int(c)} needs a (c+1)-th score but {dataset.name} has {n} items"
            )
    results: Dict[str, MethodResult] = {
        name: MethodResult(method=name, dataset=dataset.name, by_c={}) for name in methods
    }
    if parallel is not None and parallel != "serial":
        from repro.engine.exec import run_sharded

        if isinstance(seed, np.random.Generator):
            raise InvalidParameterError(
                "parallel cells need a stateless seed (int or None), not a "
                "Generator whose state would depend on cell order"
            )
        payloads = [
            (dataset, name, method, int(c), float(epsilon), int(trials), seed, max_bytes)
            for c in c_values
            for name, method in methods.items()
        ]
        summaries = run_sharded(
            _run_experiment_cell, payloads, parallel=parallel, workers=workers
        )
        for (                # noqa: B007 - unpacking documents the payload
            _dataset, name, _method, c, _eps, _trials, _seed, _mb
        ), summary in zip(payloads, summaries):
            results[name].by_c[c] = summary
        return results
    windows = _trial_chunks(trials, n, max_bytes)
    for c in c_values:
        c = int(c)
        threshold = dataset.threshold_for_c(c)
        per_method: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {
            name: [] for name in methods
        }
        for t0, t1 in windows:
            # One shuffle per trial, derived exactly as the per-trial loop
            # did — keyed by the global trial index, so windowing is free.
            perms = np.stack(
                [
                    derive_rng(seed, "shuffle", dataset.name, c, trial).permutation(n)
                    for trial in range(t0, t1)
                ]
            )
            shuffled = scores[perms]
            for name, method in methods.items():
                rngs = derive_rngs(seed, t1 - t0, "mech", name, dataset.name, c, start=t0)
                if isinstance(method, BatchSelectionMethod):
                    selection = method.run_matrix(shuffled, threshold, c, epsilon, rngs)
                else:
                    picks = [
                        np.asarray(
                            method(shuffled[row], threshold, c, epsilon, rngs[row]),
                            dtype=np.int64,
                        )
                        for row in range(t1 - t0)
                    ]
                    selection = _pad_selections(picks)
                # Metrics are computed in the shuffled frame: the selected
                # scores (and the score multiset) are identical either way,
                # so mapping back to original identities is not needed.
                ser, fnr = batch_selection_metrics(
                    shuffled, selection, c, base_scores=scores
                )
                per_method[name].append((ser, fnr))
        for name, parts in per_method.items():
            ser = np.concatenate([p[0] for p in parts])
            fnr = np.concatenate([p[1] for p in parts])
            results[name].by_c[c] = _summarize(ser, fnr, trials)
    return results


def run_selection_sweep(
    dataset: ScoreDataset,
    methods: Dict[str, SelectionMethod],
    c: int,
    epsilons: Sequence[float],
    trials: int,
    seed: RngLike = 0,
    max_bytes: Optional[int] = None,
) -> Dict[str, Dict[float, MetricSummary]]:
    """Every method over a whole epsilon grid at fixed c, in one pass.

    The multi-epsilon counterpart of :func:`run_selection_experiment`:
    *all* epsilon cells of a (method, c) pair share the same per-trial
    shuffles **and** the same derived mechanism streams, so comparisons are
    paired across methods (same shuffles within a cell, as before) *and*
    across epsilons.  The shuffle/stream derivation is byte-identical to
    running :func:`run_selection_experiment` once per epsilon — which is
    exactly what this replaces — so sweep results are unchanged; batch
    methods just stop re-sampling their noise at every grid point (their
    ``run_grid`` rescales one unit block per epsilon).  ``max_bytes``
    windows the trial axis exactly as in :func:`run_selection_experiment`
    (byte-identical results, bounded working set).
    """
    if not epsilons or any(float(e) <= 0 for e in epsilons):
        raise InvalidParameterError("epsilons must be non-empty and positive")
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    scores = np.asarray(dataset.supports, dtype=float)
    n = scores.size
    c = int(c)
    if c >= n:
        raise InvalidParameterError(
            f"c={c} needs a (c+1)-th score but {dataset.name} has {n} items"
        )
    eps_list = [float(e) for e in epsilons]
    threshold = dataset.threshold_for_c(c)
    results: Dict[str, Dict[float, MetricSummary]] = {name: {} for name in methods}
    acc: Dict[Tuple[str, float], List[Tuple[np.ndarray, np.ndarray]]] = {
        (name, eps): [] for name in methods for eps in eps_list
    }
    for t0, t1 in _trial_chunks(trials, n, max_bytes):
        perms = np.stack(
            [
                derive_rng(seed, "shuffle", dataset.name, c, trial).permutation(n)
                for trial in range(t0, t1)
            ]
        )
        shuffled = scores[perms]
        for name, method in methods.items():
            def make_rngs(name=name, t0=t0, t1=t1):
                return derive_rngs(
                    seed, t1 - t0, "mech", name, dataset.name, c, start=t0
                )

            if isinstance(method, BatchSelectionMethod):
                grid = method.run_grid(shuffled, threshold, c, eps_list, make_rngs)
            else:
                grid = {}
                for epsilon in eps_list:
                    rngs = make_rngs()
                    picks = [
                        np.asarray(
                            method(shuffled[row], threshold, c, epsilon, rngs[row]),
                            dtype=np.int64,
                        )
                        for row in range(t1 - t0)
                    ]
                    grid[epsilon] = _pad_selections(picks)
            for epsilon in eps_list:
                acc[(name, epsilon)].append(
                    batch_selection_metrics(
                        shuffled, grid[epsilon], c, base_scores=scores
                    )
                )
    for (name, epsilon), parts in acc.items():
        ser = np.concatenate([p[0] for p in parts])
        fnr = np.concatenate([p[1] for p in parts])
        results[name][epsilon] = _summarize(ser, fnr, trials)
    return results
