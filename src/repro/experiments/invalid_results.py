"""The Section-1 "invalid results" demonstration.

The paper's sharpest claim about the data-mining literature:

    "When using a correct version of SVT in these papers, one would get
    significantly worse accuracy.  Since these papers seek to improve the
    tradeoff between privacy and utility, the results in them are thus
    invalid."

This driver quantifies it for Alg. 4 (Lee & Clifton).  Three runs on the
same top-c selection task:

1. **Alg. 4 at its advertised eps** — the accuracy the original paper
   reported (looks great, but silently costs ((1+3c)/4)eps for this
   monotonic workload).
2. **Corrected SVT at the same advertised eps** — what honest accuracy at
   that privacy level actually looks like (significantly worse).
3. **Corrected SVT at Alg. 4's true cost** — showing Alg. 4's accuracy was
   "bought" with the extra, unreported budget: spending the true budget on a
   correct mechanism roughly recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.svt import run_svt_batch
from repro.data.generators import ScoreDataset
from repro.metrics.utility import score_error_rate
from repro.rng import derive_rng
from repro.variants.lee_clifton import lee_clifton_actual_epsilon, run_lee_clifton

__all__ = ["InvalidResultsRow", "invalid_results_demo"]


@dataclass(frozen=True)
class InvalidResultsRow:
    """One of the three runs in the demonstration."""

    label: str
    epsilon_spent: float
    epsilon_claimed: float
    ser: float


def invalid_results_demo(
    dataset: ScoreDataset,
    advertised_epsilon: float = 0.1,
    c: int = 25,
    trials: int = 20,
    seed: int = 0,
) -> List[InvalidResultsRow]:
    """Run the three-way comparison; returns rows in presentation order."""
    scores = dataset.supports.astype(float)
    threshold = dataset.threshold_for_c(c)
    true_cost = lee_clifton_actual_epsilon(advertised_epsilon, c, monotonic=True)

    def trial_perm(trial: int) -> np.ndarray:
        return derive_rng(seed, "invalid-shuffle", trial).permutation(scores.size)

    def mean_ser_alg4(trial_count: int) -> float:
        sers = []
        for trial in range(trial_count):
            perm = trial_perm(trial)
            result = run_lee_clifton(
                scores[perm],
                advertised_epsilon,
                c,
                thresholds=threshold,
                rng=derive_rng(seed, "invalid-alg4", trial),
                allow_non_private=True,
            )
            picked = perm[np.asarray(result.positives, dtype=np.int64)]
            sers.append(score_error_rate(scores, picked, c))
        return float(np.mean(sers))

    def mean_ser_correct(epsilon: float, trial_count: int, tag: str) -> float:
        sers = []
        for trial in range(trial_count):
            perm = trial_perm(trial)
            allocation = BudgetAllocation.from_ratio(epsilon, c, "1:c^(2/3)", monotonic=True)
            result = run_svt_batch(
                scores[perm],
                allocation,
                c,
                thresholds=threshold,
                monotonic=True,
                rng=derive_rng(seed, f"invalid-{tag}", trial),
            )
            picked = perm[np.asarray(result.positives, dtype=np.int64)]
            sers.append(score_error_rate(scores, picked, c))
        return float(np.mean(sers))

    return [
        InvalidResultsRow(
            label="Alg. 4 as published (broken accounting)",
            epsilon_spent=true_cost,
            epsilon_claimed=advertised_epsilon,
            ser=mean_ser_alg4(trials),
        ),
        InvalidResultsRow(
            label="correct SVT at the claimed budget",
            epsilon_spent=advertised_epsilon,
            epsilon_claimed=advertised_epsilon,
            ser=mean_ser_correct(advertised_epsilon, trials, "claimed"),
        ),
        InvalidResultsRow(
            label="correct SVT at Alg. 4's true cost",
            epsilon_spent=true_cost,
            epsilon_claimed=true_cost,
            ser=mean_ser_correct(true_cost, trials, "true"),
        ),
    ]
