"""Table 1 and Figure 3 — dataset characteristics and score distributions."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig

__all__ = ["table1", "figure3_series"]

#: The paper's Table 1, for side-by-side comparison in reports.
PAPER_TABLE1 = {
    "BMS-POS": (515_597, 1_657),
    "Kosarak": (990_002, 41_270),
    "AOL": (647_377, 2_290_685),
    "Zipf": (1_000_000, 10_000),
}


def table1(config: ExperimentConfig) -> List[Tuple[str, int, int]]:
    """Regenerate Table 1: (dataset, number of records, number of items).

    With ``dataset_scale = 1.0`` the counts equal the paper's exactly (they
    are generator calibration targets, not measurements).
    """
    rows = []
    for name, dataset in config.load_datasets().items():
        rows.append((name, dataset.num_records, dataset.num_items))
    return rows


def figure3_series(config: ExperimentConfig, top_n: int = 300) -> Dict[str, np.ndarray]:
    """Regenerate Figure 3: the *top_n* highest supports per dataset.

    The paper plots these on log-log axes (rank vs support); callers get the
    raw series and render however they like.
    """
    return {name: ds.head(top_n) for name, ds in config.load_datasets().items()}
