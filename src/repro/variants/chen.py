"""Alg. 6 — SVT as in Chen et al. 2015 [1] (Bayesian-network edge selection).

Faithful to the Figure 1 listing:

* ``eps1 = eps/2``; ``rho = Lap(Delta/eps1)``;
* query noise ``nu_i = Lap(Delta/eps2)`` — does not scale with c;
* per-query thresholds ``T_i`` (like Alg. 1);
* **no cutoff** — unboundedly many positives.

Motivated by the observation that Lee & Clifton's proof "goes through"
without the cutoff; the proof's flaw (Section 3.2) is treating
``∫ p(z) f(z) g(z) dz`` as if it factored into
``∫ p f · ∫ p g``.  Theorem 7 shows the mechanism is ∞-DP with a ratio
growing like ``e^{m eps/2}`` on a 2m-query counterexample.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.base import ABOVE, BELOW, SVTResult, normalize_thresholds
from repro.rng import RngLike, ensure_rng
from repro.variants._common import require_opt_in, validate_inputs

__all__ = ["run_chen"]

_DEFECT = (
    "query noise does not scale with the (absent) cutoff and positives are "
    "unbounded; not eps'-DP for any finite eps' (Theorem 7)"
)


def run_chen(
    answers: Sequence[float],
    epsilon: float,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Run Alg. 6 (no ``c`` parameter — the listing has no cutoff)."""
    require_opt_in(allow_non_private, "Alg. 6 (Chen et al. 2015)", _DEFECT)
    validate_inputs(epsilon, sensitivity, None)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    eps1 = epsilon / 2.0
    eps2 = epsilon - eps1
    rho = float(gen.laplace(scale=delta / eps1))
    nu = gen.laplace(scale=delta / eps2, size=values.size)

    above = values + nu >= thr + rho
    result = SVTResult(noisy_threshold_trace=[rho])
    result.processed = values.size
    result.positives = [int(i) for i in np.nonzero(above)[0]]
    result.answers = [ABOVE if flag else BELOW for flag in above]
    return result
