"""GPTT — the generalized private threshold testing algorithm of [2].

Chen & Machanavajjhala [2] modeled the broken variants of [13, 18, 1] as one
parametric mechanism: threshold noise ``Lap(Delta/eps1)``, per-query noise
``Lap(Delta/eps2)``, no cutoff.  With ``eps1 = eps2 = eps/2`` it *is* Alg. 6.
It is ∞-DP (correctly shown by the Theorem-7 technique; [2]'s own proof was
flawed — see :mod:`repro.analysis.gptt`), so running it requires the same
opt-in as the other broken variants.

Provided as a runnable mechanism so the analysis module's claims can be
checked against an implementation, and so the eps1/eps2 generalization can be
explored empirically.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.base import ABOVE, BELOW, SVTResult, normalize_thresholds
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng
from repro.variants._common import require_opt_in, validate_inputs

__all__ = ["run_gptt"]

_DEFECT = (
    "per-query noise does not scale with the (absent) cutoff; "
    "not eps'-DP for any finite eps' (modeled in [2]; cf. Theorem 7)"
)


def run_gptt(
    answers: Sequence[float],
    eps1: float,
    eps2: float,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Run GPTT with an explicit (eps1, eps2) split.

    ``run_gptt(a, eps/2, eps/2, ...)`` reproduces Alg. 6 exactly.
    """
    require_opt_in(allow_non_private, "GPTT (Chen & Machanavajjhala 2015 model)", _DEFECT)
    if float(eps1) <= 0.0 or float(eps2) <= 0.0:
        raise InvalidParameterError("eps1 and eps2 must both be > 0")
    validate_inputs(eps1 + eps2, sensitivity, None)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    rho = float(gen.laplace(scale=delta / eps1))
    nu = gen.laplace(scale=delta / eps2, size=values.size)

    above = values + nu >= thr + rho
    result = SVTResult(noisy_threshold_trace=[rho])
    result.processed = values.size
    result.positives = [int(i) for i in np.nonzero(above)[0]]
    result.answers = [ABOVE if flag else BELOW for flag in above]
    return result
