"""The six SVT variants analyzed in Figure 1/Figure 2 of the paper.

============ ============================ ==================== =================
Module       Source                       Paper listing        Privacy
============ ============================ ==================== =================
(core)       this paper                   Alg. 1 / Alg. 7      eps-DP
dpbook       Dwork & Roth 2014 book [8]   Alg. 2               eps-DP (noisy)
roth         Roth 2011 lecture notes [15] Alg. 3               ∞-DP (broken)
lee_clifton  Lee & Clifton 2014 [13]      Alg. 4               (1+6c)/4·eps-DP
stoddard     Stoddard et al. 2014 [18]    Alg. 5               ∞-DP (broken)
chen         Chen et al. 2015 [1]         Alg. 6               ∞-DP (broken)
============ ============================ ==================== =================

The broken variants exist for study, attack demonstrations, and the Figure-2
reproduction.  Every non-private runner refuses to execute unless called with
``allow_non_private=True`` (and Alg. 4, whose true guarantee is much weaker
than its advertised eps, requires the same opt-in).
"""

from repro.variants.dpbook import run_dpbook, run_dpbook_batch
from repro.variants.roth import run_roth
from repro.variants.lee_clifton import lee_clifton_actual_epsilon, run_lee_clifton
from repro.variants.stoddard import run_stoddard
from repro.variants.chen import run_chen
from repro.variants.gptt import run_gptt
from repro.variants.registry import (
    ALGORITHMS,
    VariantInfo,
    get_variant,
    figure2_table,
)

__all__ = [
    "run_dpbook",
    "run_dpbook_batch",
    "run_roth",
    "run_lee_clifton",
    "lee_clifton_actual_epsilon",
    "run_stoddard",
    "run_chen",
    "run_gptt",
    "ALGORITHMS",
    "VariantInfo",
    "get_variant",
    "figure2_table",
]
