"""Alg. 4 — SVT as in Lee & Clifton 2014 [13] (top-k frequent itemsets).

Faithful to the Figure 1 listing:

* ``eps1 = eps/4`` (a 1:3 split — harmless by itself);
* ``rho = Lap(Delta/eps1)``;
* query noise ``nu_i = Lap(Delta/eps2)`` — **does not scale with c**, so each
  of the up-to-c positive outcomes pays the full eps2 rather than eps2/c;
* halts after c positives.

The mechanism is therefore not eps-DP but ``((1+6c)/4)eps``-DP in general and
``((1+3c)/4)eps``-DP for monotonic queries (Section 3.2; both follow from
Theorem 4/5 applied with the actual noise scales).  Since the advertised
budget is understated by a factor ~1.5c, running it requires the same
explicit opt-in as the ∞-DP variants.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.base import ABOVE, BELOW, SVTResult, normalize_thresholds
from repro.rng import RngLike, ensure_rng
from repro.variants._common import require_opt_in, validate_inputs

__all__ = ["run_lee_clifton", "lee_clifton_actual_epsilon"]

_DEFECT = (
    "query noise does not scale with c, so the actual guarantee is "
    "((1+6c)/4)*eps-DP (monotonic: ((1+3c)/4)*eps-DP), far weaker than the "
    "advertised eps-DP"
)


def lee_clifton_actual_epsilon(epsilon: float, c: int, monotonic: bool = False) -> float:
    """The true privacy cost of running Alg. 4 with advertised budget *epsilon*.

    Derivation: Alg. 4 is Alg. 7 with ``eps1' = eps/4`` and a query-noise
    scale of ``Delta/eps2 = Delta/(3eps/4)``.  Matching Theorem 4's required
    scale ``2c*Delta/eps2'`` gives ``eps2' = 2c * (3eps/4) = (6c/4)eps``
    (Theorem 5 drops the 2 for monotonic queries), hence a total of
    ``eps/4 + (6c/4)eps = ((1+6c)/4)eps``.
    """
    factor = (1 + 3 * c) / 4.0 if monotonic else (1 + 6 * c) / 4.0
    return factor * float(epsilon)


def run_lee_clifton(
    answers: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Run Alg. 4.  Requires ``allow_non_private=True`` (budget understated ~1.5c×)."""
    require_opt_in(allow_non_private, "Alg. 4 (Lee & Clifton 2014)", _DEFECT)
    validate_inputs(epsilon, sensitivity, c)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    eps1 = epsilon / 4.0
    eps2 = epsilon - eps1
    rho = float(gen.laplace(scale=delta / eps1))

    result = SVTResult(noisy_threshold_trace=[rho])
    count = 0
    for i in range(values.size):
        nu = float(gen.laplace(scale=delta / eps2))
        result.processed += 1
        if values[i] + nu >= thr[i] + rho:
            result.answers.append(ABOVE)
            result.positives.append(i)
            count += 1
            if count >= c:
                result.halted = True
                break
        else:
            result.answers.append(BELOW)
    return result
