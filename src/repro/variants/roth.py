"""Alg. 3 — SVT as in Roth's 2011 lecture notes [15] (abstracted from [11, 12]).

Faithful to the Figure 1 listing:

* ``eps1 = eps/2``; ``rho = Lap(Delta/eps1)``;
* query noise ``nu_i = Lap(c*Delta/eps2)`` — missing the factor 2 needed for
  eps-DP (on its own this only degrades the guarantee to (3/2)eps-DP);
* **on a positive outcome it outputs the noisy query answer**
  ``q_i(D) + nu_i`` instead of ⊤ — this is the fatal flaw: the numeric output
  reveals that the noisy threshold lies below it, and Theorem 6 shows the
  mechanism is not eps'-DP for any finite eps' (∞-DP).

The released value reuses the *same* noise ``nu_i`` that won the comparison
(that correlation is exactly what breaks the proof — see Section 3.2's
discussion of step (11)).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.base import BELOW, SVTResult, normalize_thresholds
from repro.rng import RngLike, ensure_rng
from repro.variants._common import require_opt_in, validate_inputs

__all__ = ["run_roth"]

_DEFECT = (
    "outputs the noisy query answer for positive outcomes, leaking the noisy "
    "threshold; not eps'-DP for any finite eps' (Theorem 6)"
)


def run_roth(
    answers: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Run Alg. 3.  Requires ``allow_non_private=True`` (it is ∞-DP)."""
    require_opt_in(allow_non_private, "Alg. 3 (Roth 2011 lecture notes)", _DEFECT)
    validate_inputs(epsilon, sensitivity, c)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    eps1 = epsilon / 2.0
    eps2 = epsilon - eps1
    rho = float(gen.laplace(scale=delta / eps1))

    result = SVTResult(noisy_threshold_trace=[rho])
    count = 0
    for i in range(values.size):
        nu = float(gen.laplace(scale=c * delta / eps2))
        result.processed += 1
        noisy = float(values[i]) + nu
        if noisy >= thr[i] + rho:
            # Line 6: the noisy answer itself is released.
            result.answers.append(noisy)
            result.positives.append(i)
            count += 1
            if count >= c:
                result.halted = True
                break
        else:
            result.answers.append(BELOW)
    return result
