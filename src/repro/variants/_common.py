"""Shared validation and guard rails for the variant implementations."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError, NonPrivateMechanismError

__all__ = ["validate_inputs", "require_opt_in"]


def validate_inputs(epsilon: float, sensitivity: float, c: int | None) -> None:
    if float(epsilon) <= 0.0 or not math.isfinite(float(epsilon)):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    if float(sensitivity) <= 0.0 or not math.isfinite(float(sensitivity)):
        raise InvalidParameterError(
            f"sensitivity must be finite and > 0, got {sensitivity!r}"
        )
    if c is not None and (not isinstance(c, (int, np.integer)) or int(c) <= 0):
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")


def require_opt_in(allow_non_private: bool, algorithm: str, defect: str) -> None:
    """Refuse to run a known-non-private mechanism without explicit opt-in."""
    if not allow_non_private:
        raise NonPrivateMechanismError(
            f"{algorithm} is NOT differentially private as advertised ({defect}). "
            "It is provided for study and attack demonstrations only; pass "
            "allow_non_private=True to run it anyway."
        )
