"""Alg. 2 — SVT as in Dwork & Roth's 2014 book [8] ("SVT-DPBook").

Faithful to the Figure 1 listing:

* ``eps1 = eps/2``; threshold noise ``rho = Lap(c*Delta/eps1)`` — note the
  factor c that Alg. 1 avoids;
* query noise ``nu_i = Lap(2c*Delta/eps1)`` (the listing scales it with eps1);
* after each positive outcome the threshold noise is *refreshed*:
  ``rho = Lap(c*Delta/eps2)``;
* halt after c positives.

This variant IS eps-DP; the paper's point (Sections 3.2 and 6) is that the
refresh forces the threshold noise to scale with c, which destroys utility:
on Kosarak with eps=0.1, c=50 its SER is 0.705 where Alg. 7 variants sit
below 0.05.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.base import ABOVE, BELOW, SVTResult, normalize_thresholds
from repro.rng import RngLike, ensure_rng
from repro.variants._common import validate_inputs

__all__ = ["run_dpbook", "run_dpbook_batch"]


def run_dpbook(
    answers: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
) -> SVTResult:
    """Streaming (query-at-a-time) transliteration of Alg. 2."""
    validate_inputs(epsilon, sensitivity, c)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    eps1 = epsilon / 2.0
    eps2 = epsilon - eps1
    rho = float(gen.laplace(scale=c * delta / eps1))

    result = SVTResult(noisy_threshold_trace=[rho])
    count = 0
    for i in range(values.size):
        nu = float(gen.laplace(scale=2 * c * delta / eps1))
        result.processed += 1
        if values[i] + nu >= thr[i] + rho:
            result.answers.append(ABOVE)
            result.positives.append(i)
            # Line 6: refresh the noisy threshold after every positive.
            rho = float(gen.laplace(scale=c * delta / eps2))
            result.noisy_threshold_trace.append(rho)
            count += 1
            if count >= c:
                result.halted = True
                break
        else:
            result.answers.append(BELOW)
    return result


def run_dpbook_batch(
    answers: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
) -> SVTResult:
    """Vectorized Alg. 2 for large query arrays.

    The refresh after each positive splits the run into at most c segments,
    each with a constant noisy threshold; within a segment everything is
    vectorizable.  Same output distribution as :func:`run_dpbook` (the
    per-query noise is i.i.d., so drawing a segment's noise in one batch is
    equivalent), which a distributional test verifies.
    """
    validate_inputs(epsilon, sensitivity, c)
    values = np.asarray(answers, dtype=float)
    n = values.size
    thr = normalize_thresholds(thresholds, n)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    eps1 = epsilon / 2.0
    eps2 = epsilon - eps1
    query_scale = 2 * c * delta / eps1
    rho = float(gen.laplace(scale=c * delta / eps1))

    result = SVTResult(noisy_threshold_trace=[rho])
    start = 0
    count = 0
    while start < n and count < c:
        nu = gen.laplace(scale=query_scale, size=n - start)
        above = values[start:] + nu >= thr[start:] + rho
        hits = np.nonzero(above)[0]
        if not hits.size:
            result.processed = n
            break
        pos = start + int(hits[0])
        result.positives.append(pos)
        result.processed = pos + 1
        count += 1
        start = pos + 1
        if count >= c:
            result.halted = True
            break
        rho = float(gen.laplace(scale=c * delta / eps2))
        result.noisy_threshold_trace.append(rho)
    else:
        result.processed = max(result.processed, start)
    if not result.halted:
        result.processed = n
    above_set = set(result.positives)
    result.answers = [ABOVE if i in above_set else BELOW for i in range(result.processed)]
    return result
