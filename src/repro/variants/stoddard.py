"""Alg. 5 — SVT as in Stoddard et al. 2014 [18] (private feature selection).

Faithful to the Figure 1 listing:

* ``eps1 = eps/2``; ``rho = Lap(Delta/eps1)``;
* **no noise on query answers** (``nu_i = 0``);
* **no cutoff** — every query is answered, with no bound on positives.

The "insight" behind it is real but misapplied: the Lemma 1 bounding argument
works without query noise *when the entire output is one-sided* (all ⊥ or all
⊤).  With mixed outputs one must pick a side to bound, and unnoised answers on
the other side give the adversary a deterministic comparison against the one
noisy threshold.  Theorem 3 exhibits two neighboring datasets and an output
``(⊥, ⊤)`` with nonzero probability on one and zero on the other: ∞-DP.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.base import ABOVE, BELOW, SVTResult, normalize_thresholds
from repro.rng import RngLike, ensure_rng
from repro.variants._common import require_opt_in, validate_inputs

__all__ = ["run_stoddard"]

_DEFECT = (
    "adds no noise to query answers and never stops after positives; "
    "not eps'-DP for any finite eps' (Theorem 3)"
)


def run_stoddard(
    answers: Sequence[float],
    epsilon: float,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Run Alg. 5 (note: no ``c`` parameter — the listing has no cutoff)."""
    require_opt_in(allow_non_private, "Alg. 5 (Stoddard et al. 2014)", _DEFECT)
    validate_inputs(epsilon, sensitivity, None)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    eps1 = epsilon / 2.0
    rho = float(gen.laplace(scale=delta / eps1))

    result = SVTResult(noisy_threshold_trace=[rho])
    # Vectorized: with nu_i = 0 and a single rho, the whole run is one
    # deterministic comparison against the noisy threshold.
    above = values + 0.0 >= thr + rho
    result.processed = values.size
    result.positives = [int(i) for i in np.nonzero(above)[0]]
    result.answers = [ABOVE if flag else BELOW for flag in above]
    return result
