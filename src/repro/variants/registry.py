"""Machine-readable version of Figure 2 ("Differences among Algorithms 1-6").

Each :class:`VariantInfo` records the rows of the Figure 2 table — the eps1
fraction, the threshold- and query-noise scales (as formula strings and as
callables of ``(c, Delta, eps)``), the design quirks, and the true privacy
property — plus a uniform runner so the experiment harness and the
attack/verification tooling can iterate over all six algorithms generically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.base import SVTResult
from repro.core.svt import run_svt_batch
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike
from repro.variants.chen import run_chen
from repro.variants.dpbook import run_dpbook_batch
from repro.variants.lee_clifton import lee_clifton_actual_epsilon, run_lee_clifton
from repro.variants.roth import run_roth
from repro.variants.stoddard import run_stoddard

__all__ = [
    "VariantInfo",
    "SelectionMethodInfo",
    "ALGORITHMS",
    "SECTION5_METHODS",
    "get_variant",
    "get_method",
    "figure2_table",
]

ScaleFn = Callable[[int, float, float], float]
# Uniform runner signature: (answers, epsilon, c, thresholds, sensitivity,
# rng, allow_non_private) -> SVTResult.
Runner = Callable[..., SVTResult]


@dataclass(frozen=True)
class VariantInfo:
    """One row-set of the Figure 2 comparison table."""

    key: str
    listing: str
    source: str
    eps1_fraction: float
    threshold_noise_formula: str
    threshold_noise_scale: ScaleFn
    query_noise_formula: str
    query_noise_scale: ScaleFn
    resets_threshold_noise: bool
    outputs_numeric_answer: bool
    unbounded_positives: bool
    privacy_property: str
    is_private: bool
    runner: Runner
    actual_epsilon: Optional[Callable[[float, int], float]] = None
    batch_runner: Optional[Runner] = None

    def run(
        self,
        answers: Sequence[float],
        epsilon: float,
        c: int,
        thresholds: Union[float, Sequence[float]] = 0.0,
        sensitivity: float = 1.0,
        rng: RngLike = None,
        allow_non_private: bool = False,
    ) -> SVTResult:
        """Run this variant with a uniform signature.

        Variants without a cutoff (Alg. 5, 6) ignore *c*; the private ones
        ignore *allow_non_private*.
        """
        return self.runner(
            answers,
            epsilon=epsilon,
            c=c,
            thresholds=thresholds,
            sensitivity=sensitivity,
            rng=rng,
            allow_non_private=allow_non_private,
        )

    def run_batch(
        self,
        answers: Sequence[float],
        epsilon: float,
        c: int,
        thresholds: Union[float, Sequence[float]] = 0.0,
        sensitivity: float = 1.0,
        rng: RngLike = None,
        allow_non_private: bool = False,
    ) -> SVTResult:
        """Run this variant through the vectorized batch engine.

        Same uniform signature (and for the single-pass variants, the same
        seed-to-result mapping — see :mod:`repro.engine.batch`) as
        :meth:`run`, but the whole answer array is processed with block noise
        draws and a cumsum halt point instead of a Python loop.
        """
        runner = self.batch_runner if self.batch_runner is not None else self.runner
        return runner(
            answers,
            epsilon=epsilon,
            c=c,
            thresholds=thresholds,
            sensitivity=sensitivity,
            rng=rng,
            allow_non_private=allow_non_private,
        )


def _run_alg1(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    allocation = BudgetAllocation(eps1=epsilon / 2.0, eps2=epsilon / 2.0)
    return run_svt_batch(
        answers, allocation, c, thresholds=thresholds, sensitivity=sensitivity, rng=rng
    )


def _run_alg2(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    return run_dpbook_batch(
        answers, epsilon, c, thresholds=thresholds, sensitivity=sensitivity, rng=rng
    )


def _run_alg3(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    return run_roth(
        answers,
        epsilon,
        c,
        thresholds=thresholds,
        sensitivity=sensitivity,
        rng=rng,
        allow_non_private=allow_non_private,
    )


def _run_alg4(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    return run_lee_clifton(
        answers,
        epsilon,
        c,
        thresholds=thresholds,
        sensitivity=sensitivity,
        rng=rng,
        allow_non_private=allow_non_private,
    )


def _run_alg5(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    return run_stoddard(
        answers,
        epsilon,
        thresholds=thresholds,
        sensitivity=sensitivity,
        rng=rng,
        allow_non_private=allow_non_private,
    )


def _run_alg6(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    return run_chen(
        answers,
        epsilon,
        thresholds=thresholds,
        sensitivity=sensitivity,
        rng=rng,
        allow_non_private=allow_non_private,
    )


# Engine-backed batch runners.  The engine package is imported lazily: it
# depends on the variant modules (via repro.variants.__init__), so a
# module-level import here would be circular.


def _run_alg3_batch(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    from repro.engine.batch import run_roth_batch

    return run_roth_batch(
        answers, epsilon, c, thresholds=thresholds, sensitivity=sensitivity,
        rng=rng, allow_non_private=allow_non_private,
    )


def _run_alg4_batch(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    from repro.engine.batch import run_lee_clifton_batch

    return run_lee_clifton_batch(
        answers, epsilon, c, thresholds=thresholds, sensitivity=sensitivity,
        rng=rng, allow_non_private=allow_non_private,
    )


def _run_alg5_batch(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    from repro.engine.batch import run_stoddard_batch

    return run_stoddard_batch(
        answers, epsilon, thresholds=thresholds, sensitivity=sensitivity,
        rng=rng, allow_non_private=allow_non_private,
    )


def _run_alg6_batch(
    answers, epsilon, c, thresholds, sensitivity, rng, allow_non_private
) -> SVTResult:
    from repro.engine.batch import run_chen_batch

    return run_chen_batch(
        answers, epsilon, thresholds=thresholds, sensitivity=sensitivity,
        rng=rng, allow_non_private=allow_non_private,
    )


ALGORITHMS: Dict[str, VariantInfo] = {
    "alg1": VariantInfo(
        key="alg1",
        listing="Alg. 1",
        source="this paper (Lyu, Su, Li 2017)",
        eps1_fraction=0.5,
        threshold_noise_formula="Delta/eps1",
        threshold_noise_scale=lambda c, delta, eps1: delta / eps1,
        query_noise_formula="2c*Delta/eps2",
        query_noise_scale=lambda c, delta, eps2: 2 * c * delta / eps2,
        resets_threshold_noise=False,
        outputs_numeric_answer=False,
        unbounded_positives=False,
        privacy_property="eps-DP",
        is_private=True,
        runner=_run_alg1,
        batch_runner=_run_alg1,
    ),
    "alg2": VariantInfo(
        key="alg2",
        listing="Alg. 2",
        source="Dwork & Roth 2014 book [8]",
        eps1_fraction=0.5,
        threshold_noise_formula="c*Delta/eps1",
        threshold_noise_scale=lambda c, delta, eps1: c * delta / eps1,
        query_noise_formula="2c*Delta/eps1",
        query_noise_scale=lambda c, delta, eps1: 2 * c * delta / eps1,
        resets_threshold_noise=True,
        outputs_numeric_answer=False,
        unbounded_positives=False,
        privacy_property="eps-DP",
        is_private=True,
        runner=_run_alg2,
        batch_runner=_run_alg2,
    ),
    "alg3": VariantInfo(
        key="alg3",
        listing="Alg. 3",
        source="Roth 2011 lecture notes [15]",
        eps1_fraction=0.5,
        threshold_noise_formula="Delta/eps1",
        threshold_noise_scale=lambda c, delta, eps1: delta / eps1,
        query_noise_formula="c*Delta/eps2",
        query_noise_scale=lambda c, delta, eps2: c * delta / eps2,
        resets_threshold_noise=False,
        outputs_numeric_answer=True,
        unbounded_positives=False,
        privacy_property="infinity-DP",
        is_private=False,
        runner=_run_alg3,
        batch_runner=_run_alg3_batch,
    ),
    "alg4": VariantInfo(
        key="alg4",
        listing="Alg. 4",
        source="Lee & Clifton 2014 [13]",
        eps1_fraction=0.25,
        threshold_noise_formula="Delta/eps1",
        threshold_noise_scale=lambda c, delta, eps1: delta / eps1,
        query_noise_formula="Delta/eps2",
        query_noise_scale=lambda c, delta, eps2: delta / eps2,
        resets_threshold_noise=False,
        outputs_numeric_answer=False,
        unbounded_positives=False,
        privacy_property="((1+6c)/4)eps-DP",
        is_private=False,
        runner=_run_alg4,
        actual_epsilon=lee_clifton_actual_epsilon,
        batch_runner=_run_alg4_batch,
    ),
    "alg5": VariantInfo(
        key="alg5",
        listing="Alg. 5",
        source="Stoddard et al. 2014 [18]",
        eps1_fraction=0.5,
        threshold_noise_formula="Delta/eps1",
        threshold_noise_scale=lambda c, delta, eps1: delta / eps1,
        query_noise_formula="0",
        query_noise_scale=lambda c, delta, eps2: 0.0,
        resets_threshold_noise=False,
        outputs_numeric_answer=False,
        unbounded_positives=True,
        privacy_property="infinity-DP",
        is_private=False,
        runner=_run_alg5,
        batch_runner=_run_alg5_batch,
    ),
    "alg6": VariantInfo(
        key="alg6",
        listing="Alg. 6",
        source="Chen et al. 2015 [1]",
        eps1_fraction=0.5,
        threshold_noise_formula="Delta/eps1",
        threshold_noise_scale=lambda c, delta, eps1: delta / eps1,
        query_noise_formula="Delta/eps2",
        query_noise_scale=lambda c, delta, eps2: delta / eps2,
        resets_threshold_noise=False,
        outputs_numeric_answer=False,
        unbounded_positives=True,
        privacy_property="infinity-DP",
        is_private=False,
        runner=_run_alg6,
        batch_runner=_run_alg6_batch,
    ),
}


# ---------------------------------------------------------------------------
# Section-5 methods (Figure 5's non-interactive roster): SVT with Retraversal
# and the c-round exponential mechanism.  Not Figure-2 rows — they have no
# eps1-fraction/noise-formula table entries — but the engine and the
# experiment harness dispatch them exactly like the six listed variants.
# ---------------------------------------------------------------------------


def _run_retraversal(
    answers,
    epsilon,
    c,
    thresholds=0.0,
    sensitivity=1.0,
    rng=None,
    allow_non_private=False,
    ratio="1:c^(2/3)",
    monotonic=True,
    threshold_bump_d=0.0,
    max_passes=100,
):
    from repro.core.retraversal import svt_retraversal

    allocation = BudgetAllocation.from_ratio(epsilon, c, ratio=ratio, monotonic=monotonic)
    return svt_retraversal(
        answers, allocation, c, thresholds=thresholds, sensitivity=sensitivity,
        monotonic=monotonic, threshold_bump_d=threshold_bump_d,
        max_passes=max_passes, rng=rng,
    )


def _run_em(
    answers,
    epsilon,
    c,
    thresholds=0.0,
    sensitivity=1.0,
    rng=None,
    allow_non_private=False,
    monotonic=True,
):
    from repro.mechanisms.exponential import select_top_c_em

    return select_top_c_em(
        answers, epsilon, c, sensitivity=sensitivity, monotonic=monotonic, rng=rng
    )


@dataclass(frozen=True)
class SelectionMethodInfo:
    """A Section-5 selection method with engine-backed dispatch.

    ``run`` executes one run (already array-vectorized within the run);
    ``run_trials`` routes a whole Monte-Carlo cell — or an epsilon grid —
    through :func:`repro.engine.trials.run_trials`, which batches every
    trial in one pass.
    """

    key: str
    listing: str
    source: str
    privacy_property: str
    is_private: bool
    runner: Callable

    def run(self, answers, epsilon, c, **kwargs):
        return self.runner(answers, epsilon=epsilon, c=c, **kwargs)

    # The single-run implementations are already vectorized over the query
    # axis, so the batch form of one run is the run itself.
    run_batch = run

    def run_trials(self, answers, epsilons, c, trials, **kwargs):
        from repro.engine.trials import run_trials

        return run_trials(self.key, answers, epsilons, c, trials, **kwargs)


SECTION5_METHODS: Dict[str, SelectionMethodInfo] = {
    "retraversal": SelectionMethodInfo(
        key="retraversal",
        listing="SVT-ReTr",
        source="this paper (Section 5)",
        privacy_property="eps-DP",
        is_private=True,
        runner=_run_retraversal,
    ),
    "em": SelectionMethodInfo(
        key="em",
        listing="EM",
        source="this paper (Section 5) / McSherry & Talwar 2007",
        privacy_property="eps-DP",
        is_private=True,
        runner=_run_em,
    ),
}

#: Canonical alias spellings for the Section-5 methods.  The engine's
#: run_trials dispatch (:mod:`repro.engine.trials`) uses this same table, so
#: a spelling accepted by one entry point is accepted by all of them.
METHOD_ALIASES = {
    "retr": "retraversal",
    "svtretr": "retraversal",
    "svtretraversal": "retraversal",
    "svt-retr": "retraversal",
    "expmech": "em",
    "exponential": "em",
}


def get_method(key: str) -> Union[VariantInfo, SelectionMethodInfo]:
    """Look up any dispatchable method: the six variants plus ReTr and EM."""
    normalized = str(key).strip().lower().replace(" ", "").replace(".", "")
    normalized = METHOD_ALIASES.get(normalized, normalized)
    if normalized in SECTION5_METHODS:
        return SECTION5_METHODS[normalized]
    return get_variant(key)


def get_variant(key: str) -> VariantInfo:
    """Look up a variant by key ('alg1'..'alg6'), listing ('Alg. 3'), or number."""
    normalized = str(key).strip().lower().replace(" ", "").replace(".", "")
    if normalized.startswith("alg"):
        normalized = "alg" + normalized[3:]
    elif normalized.isdigit():
        normalized = f"alg{normalized}"
    if normalized not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown variant {key!r}; known: {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[normalized]


def figure2_table() -> str:
    """Render the Figure 2 comparison table as ASCII (used by the E3 bench)."""
    infos = [ALGORITHMS[f"alg{i}"] for i in range(1, 7)]
    rows = [
        ("", *(v.listing for v in infos)),
        ("eps1", *(f"eps/{round(1/v.eps1_fraction)}" for v in infos)),
        ("threshold noise rho", *(v.threshold_noise_formula for v in infos)),
        (
            "reset rho after top (unnecessary)",
            *("Yes" if v.resets_threshold_noise else "" for v in infos),
        ),
        ("query noise nu_i", *(v.query_noise_formula for v in infos)),
        (
            "outputs q_i+nu_i (not private)",
            *("Yes" if v.outputs_numeric_answer else "" for v in infos),
        ),
        (
            "unbounded tops (not private)",
            *("Yes" if v.unbounded_positives else "" for v in infos),
        ),
        ("privacy property", *(v.privacy_property for v in infos)),
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
