"""Random-number-generator plumbing.

Every randomized component in this library accepts an optional ``rng``
argument that may be ``None`` (fresh entropy), an ``int`` seed, or an existing
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
mechanisms honest about their randomness and makes every experiment
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "derive_rng", "derive_rngs"]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce *rng* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (OS entropy), an integer seed, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so that callers can thread one
    generator through a whole experiment).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Create *n* statistically independent child generators.

    Used by the experiment harness to give each trial its own stream so trials
    can be reordered or parallelized without changing results.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(rng, np.random.Generator):
        seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
        if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover
            seq = np.random.SeedSequence(int(rng.integers(0, 2**63)))
    elif isinstance(rng, np.random.SeedSequence):
        seq = rng
    else:
        seq = np.random.SeedSequence(rng)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def _derive_material(rng: RngLike, keys: tuple[Union[int, str], ...]) -> list[int]:
    """The SeedSequence entropy shared by :func:`derive_rng` / :func:`derive_rngs`."""
    material: list[int] = []
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    if isinstance(rng, np.random.Generator):
        base = int(rng.integers(0, 2**32))
    elif isinstance(rng, np.random.SeedSequence):
        base = int(rng.generate_state(1)[0])
    elif rng is None:
        base = int(np.random.SeedSequence().generate_state(1)[0])
    else:
        base = int(rng)
    return [base & 0xFFFFFFFF, *material]


def derive_rng(rng: RngLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive a deterministic child generator keyed by *keys*.

    Example::

        rng = derive_rng(1234, "figure4", "kosarak", c)

    Two calls with the same base seed and keys produce identical streams;
    different keys produce independent streams.
    """
    seq = np.random.SeedSequence(_derive_material(rng, keys))
    return np.random.default_rng(seq)


def derive_rngs(
    rng: RngLike, n: int, *keys: Union[int, str], start: int = 0
) -> list[np.random.Generator]:
    """Derive *n* deterministic child generators keyed by ``(*keys, i)``.

    The i-th returned generator is stream-identical to
    ``derive_rng(rng, *keys, start + i)``, so a batch engine drawing trial
    i's noise from ``derive_rngs(seed, trials, ...)[i]`` reproduces
    bit-for-bit what a per-trial loop deriving its own generator would have
    drawn.  The base entropy is resolved once, which matters when *rng* is a
    ``Generator`` (whose state advances on every derivation).

    ``start`` offsets the index keys: ``derive_rngs(seed, k, *keys,
    start=s)`` equals ``derive_rngs(seed, s + k, *keys)[s:]`` without
    constructing the prefix — what window-chunked executors use to derive
    only their own trials' streams.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if start < 0:
        raise ValueError("start must be non-negative")
    material = _derive_material(rng, keys)
    return [
        np.random.default_rng(np.random.SeedSequence([*material, i & 0xFFFFFFFF]))
        for i in range(start, start + n)
    ]
