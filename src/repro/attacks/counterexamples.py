"""The paper's non-privacy counterexamples, as runnable constructions.

Each theorem exhibits a pair of neighboring answer vectors and a target
outcome whose probability ratio between the two grows without bound (or is
literally ∞).  We return both the closed-form bound proved in the paper and
an exact numeric value from the Eq.-(5) integrator, so tests can check them
against each other — and so the same machinery can show that Alg. 1 on the
very same inputs stays within its eps budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.verifier import (
    MechanismSpec,
    outcome_probability,
    spec_for_variant,
)
from repro.exceptions import InvalidParameterError

__all__ = [
    "Counterexample",
    "theorem3_stoddard",
    "theorem6_roth",
    "theorem7_chen",
]


@dataclass(frozen=True)
class Counterexample:
    """A concrete eps-DP violation witness.

    ``ratio`` is ``Pr[A(D) = outcome] / Pr[A(D') = outcome]`` computed by
    exact integration (``inf`` when the denominator is 0);
    ``closed_form_bound`` is the paper's analytical value/lower bound for the
    same ratio.  ``epsilon_refuted`` says which eps-DP claims this witness
    disproves: any eps with ``e^eps < ratio``.
    """

    theorem: str
    variant: str
    epsilon: float
    answers_d: List[float]
    answers_d_prime: List[float]
    pattern: List[bool]
    thresholds: float
    ratio: float
    closed_form_bound: float
    numeric_values: Optional[List[float]] = None

    def epsilon_refuted(self) -> float:
        """The largest eps'-DP claim this witness refutes (ln of the ratio)."""
        if self.ratio == math.inf:
            return math.inf
        return math.log(self.ratio)


def theorem3_stoddard(epsilon: float = 1.0) -> Counterexample:
    """Theorem 3: Alg. 5 (no query noise) is not eps'-DP for any finite eps'.

    ``T = 0``, ``Delta = 1``, ``q(D) = (0, 1)``, ``q(D') = (1, 0)``,
    ``a = (⊥, ⊤)``.  On D the outcome needs ``0 < z <= 1`` (positive
    probability); on D' it needs ``1 < z`` and ``z <= 0`` simultaneously
    (impossible).  The ratio is exactly ∞.
    """
    spec = spec_for_variant("alg5", epsilon, c=1)
    answers_d = [0.0, 1.0]
    answers_d_prime = [1.0, 0.0]
    pattern = [False, True]
    p_d = outcome_probability(spec, answers_d, pattern, thresholds=0.0)
    p_dp = outcome_probability(spec, answers_d_prime, pattern, thresholds=0.0)
    ratio = math.inf if p_dp <= 0.0 < p_d else (p_d / p_dp if p_dp else 1.0)
    return Counterexample(
        theorem="Theorem 3",
        variant="alg5",
        epsilon=epsilon,
        answers_d=answers_d,
        answers_d_prime=answers_d_prime,
        pattern=pattern,
        thresholds=0.0,
        ratio=ratio,
        closed_form_bound=math.inf,
    )


def theorem6_roth(m: int, epsilon: float = 1.0) -> Counterexample:
    """Theorem 6: Alg. 3 (outputs noisy answers) has ratio exactly e^{(m-1)eps/2}.

    ``c = 1``, ``T = 0``, ``Delta = 1``, ``m+1`` queries with
    ``q(D) = 0^m, Delta`` and ``q(D') = Delta^m, 0``; the outcome is
    ``⊥^m`` followed by the numeric value 0.  Releasing 0 pins the noisy
    threshold below 0, which breaks the change-of-variable in the privacy
    proof; Appendix 10.1 computes the density ratio to be exactly
    ``e^{(m-1) eps/2}``.
    """
    if not isinstance(m, int) or m < 1:
        raise InvalidParameterError(f"m must be a positive integer, got {m!r}")
    spec = spec_for_variant("alg3", epsilon, c=1)
    answers_d = [0.0] * m + [1.0]
    answers_d_prime = [1.0] * m + [0.0]
    pattern = [False] * m + [True]
    numeric_values = [0.0]
    p_d = outcome_probability(spec, answers_d, pattern, 0.0, numeric_values)
    p_dp = outcome_probability(spec, answers_d_prime, pattern, 0.0, numeric_values)
    ratio = p_d / p_dp if p_dp > 0.0 else math.inf
    return Counterexample(
        theorem="Theorem 6",
        variant="alg3",
        epsilon=epsilon,
        answers_d=answers_d,
        answers_d_prime=answers_d_prime,
        pattern=pattern,
        thresholds=0.0,
        ratio=ratio,
        closed_form_bound=math.exp((m - 1) * epsilon / 2.0),
        numeric_values=numeric_values,
    )


def theorem7_chen(m: int, epsilon: float = 1.0) -> Counterexample:
    """Theorem 7: Alg. 6 (no cutoff) has ratio at least e^{m*eps/2}.

    ``Delta = 1``, ``T = 0``, 2m queries with ``q(D) = 0^{2m}``,
    ``q(D') = 1^m (-1)^m``, outcome ``⊥^m ⊤^m``.  The paper lower-bounds the
    ratio of the integrands pointwise by ``e^{eps/2}`` per query pair.
    """
    if not isinstance(m, int) or m < 1:
        raise InvalidParameterError(f"m must be a positive integer, got {m!r}")
    spec = spec_for_variant("alg6", epsilon, c=1)
    answers_d = [0.0] * (2 * m)
    answers_d_prime = [1.0] * m + [-1.0] * m
    pattern = [False] * m + [True] * m
    p_d = outcome_probability(spec, answers_d, pattern, thresholds=0.0)
    p_dp = outcome_probability(spec, answers_d_prime, pattern, thresholds=0.0)
    ratio = p_d / p_dp if p_dp > 0.0 else math.inf
    return Counterexample(
        theorem="Theorem 7",
        variant="alg6",
        epsilon=epsilon,
        answers_d=answers_d,
        answers_d_prime=answers_d_prime,
        pattern=pattern,
        thresholds=0.0,
        ratio=ratio,
        closed_form_bound=math.exp(m * epsilon / 2.0),
    )
