"""Non-privacy demonstrations.

:mod:`repro.attacks.counterexamples` packages the paper's Theorems 3, 6, 7
as runnable constructions with exact (integrated) and closed-form ratios;
:mod:`repro.attacks.estimator` provides a black-box Monte-Carlo epsilon
estimator for cross-checking any mechanism empirically.
"""

from repro.attacks.counterexamples import (
    Counterexample,
    theorem3_stoddard,
    theorem6_roth,
    theorem7_chen,
)
from repro.attacks.estimator import estimate_event_epsilon, event_frequency

__all__ = [
    "Counterexample",
    "theorem3_stoddard",
    "theorem6_roth",
    "theorem7_chen",
    "estimate_event_epsilon",
    "event_frequency",
]
