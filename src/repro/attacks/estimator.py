"""Black-box Monte-Carlo privacy-loss estimation.

Where the Eq.-(5) integrator needs the mechanism's noise structure, this
estimator only needs to *run* the mechanism: execute it many times on two
neighboring inputs, measure the frequency of a target event, and bound the
log-ratio.  Used in tests as an independent check that the streaming
implementations match the analytical verifier (if an implementation secretly
differed from its spec, the two would disagree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, spawn_rngs

__all__ = ["event_frequency", "estimate_event_epsilon", "EpsilonEstimate"]


def event_frequency(
    mechanism: Callable[[np.random.Generator], object],
    event: Callable[[object], bool],
    trials: int,
    rng: RngLike = None,
    vectorized: bool = False,
) -> float:
    """Fraction of *trials* runs of *mechanism* whose output satisfies *event*.

    With ``vectorized=True`` the mechanism is called **once** with the whole
    list of per-trial generators and must return one output per generator —
    the protocol of :func:`repro.engine.trials.transcript_sampler`, which
    runs every trial through the batch engine in a single pass.  Trial i
    still owns generator i, so a vectorized mechanism that honors the
    per-stream discipline is output-identical to the per-trial loop.
    """
    if trials <= 0:
        raise InvalidParameterError("trials must be positive")
    rngs = spawn_rngs(rng, trials)
    if vectorized:
        outputs = mechanism(rngs)
        if len(outputs) != trials:
            raise InvalidParameterError(
                f"vectorized mechanism returned {len(outputs)} outputs for {trials} trials"
            )
        hits = sum(1 for out in outputs if event(out))
    else:
        hits = sum(1 for gen in rngs if event(mechanism(gen)))
    return hits / trials


@dataclass(frozen=True)
class EpsilonEstimate:
    """A Monte-Carlo lower estimate of the privacy loss on one event.

    ``point`` is ``ln(p_d / p_dp)`` on observed frequencies (with additive
    smoothing so a zero count yields a large-but-finite value rather than a
    spurious ∞); ``conservative`` shrinks both frequencies toward each other
    by their binomial standard errors, giving a value that is exceeded only
    with small probability when the true ratio is 1.
    """

    p_d: float
    p_d_prime: float
    trials: int
    point: float
    conservative: float


def estimate_event_epsilon(
    mechanism_d: Callable[[np.random.Generator], object],
    mechanism_d_prime: Callable[[np.random.Generator], object],
    event: Callable[[object], bool],
    trials: int = 20_000,
    rng: RngLike = None,
    vectorized: bool = False,
) -> EpsilonEstimate:
    """Estimate ``|ln Pr_D[event] - ln Pr_D'[event]|`` by simulation.

    The two mechanisms should be the same algorithm bound to neighboring
    inputs.  A genuinely eps-DP mechanism keeps the *conservative* estimate
    at or below eps (up to the smoothing floor) for every event; the broken
    variants blow past it on their counterexample events.
    """
    if trials <= 1:
        raise InvalidParameterError("trials must be > 1")
    rng_d, rng_dp = spawn_rngs(rng, 2)
    p_d = event_frequency(mechanism_d, event, trials, rng_d, vectorized=vectorized)
    p_dp = event_frequency(mechanism_d_prime, event, trials, rng_dp, vectorized=vectorized)
    # Additive (Laplace-rule) smoothing keeps zero counts finite.
    smooth_d = (p_d * trials + 1.0) / (trials + 2.0)
    smooth_dp = (p_dp * trials + 1.0) / (trials + 2.0)
    point = abs(math.log(smooth_d) - math.log(smooth_dp))

    def stderr(p: float) -> float:
        return math.sqrt(max(p * (1.0 - p), 1.0 / trials) / trials)

    # Shrink the larger frequency down and the smaller up by ~2.6 standard
    # errors each (two-sided ~1% per side) before taking the ratio.
    z = 2.576
    hi, lo = max(smooth_d, smooth_dp), min(smooth_d, smooth_dp)
    hi_adj = max(hi - z * stderr(hi), 1.0 / (trials + 2.0))
    lo_adj = min(lo + z * stderr(lo), 1.0 - 1.0 / (trials + 2.0))
    conservative = max(0.0, math.log(hi_adj) - math.log(lo_adj))
    return EpsilonEstimate(
        p_d=p_d, p_d_prime=p_dp, trials=trials, point=point, conservative=conservative
    )
