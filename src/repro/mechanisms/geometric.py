"""The geometric mechanism (two-sided geometric / discrete Laplace noise).

For integer-valued counting queries the geometric mechanism [Ghosh, Roughgarden
& Sundararajan 2009] is the natural alternative to continuous Laplace noise:
it adds integer noise with

    Pr[Z = k]  =  (1 - a) / (1 + a) * a^{|k|},       a = e^{-eps/Delta},

is eps-DP for sensitivity-Delta integer queries, and is universally optimal
for counts.  In this library it backs the optional integer-release mode of
the numeric phase: supports are integers, and releasing integer counts avoids
the awkward "support 41.7" outputs of the Laplace route.

Sampling uses the difference-of-geometrics representation:
``Z = G1 - G2`` with ``G1, G2`` i.i.d. geometric on {0, 1, ...} with success
probability ``1 - a`` — exact, vectorized, and seedable.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "GeometricMechanism",
    "geometric_pmf",
    "geometric_cdf",
    "sample_two_sided_geometric",
]

ArrayLike = Union[float, int, np.ndarray]


def _alpha(epsilon: float, sensitivity: float) -> float:
    epsilon = float(epsilon)
    sensitivity = float(sensitivity)
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    if sensitivity <= 0.0 or not math.isfinite(sensitivity):
        raise InvalidParameterError(
            f"sensitivity must be finite and > 0, got {sensitivity!r}"
        )
    return math.exp(-epsilon / sensitivity)


def geometric_pmf(k: ArrayLike, epsilon: float, sensitivity: float = 1.0) -> ArrayLike:
    """``Pr[Z = k]`` for the two-sided geometric with parameter a = e^{-eps/Delta}."""
    a = _alpha(epsilon, sensitivity)
    k_arr = np.asarray(k)
    if not np.issubdtype(k_arr.dtype, np.integer) and not np.all(k_arr == np.rint(k_arr)):
        raise InvalidParameterError("the two-sided geometric is supported on integers")
    out = (1.0 - a) / (1.0 + a) * a ** np.abs(k_arr.astype(float))
    return out if out.ndim else float(out)


def geometric_cdf(k: ArrayLike, epsilon: float, sensitivity: float = 1.0) -> ArrayLike:
    """``Pr[Z <= k]`` (k integer; non-integers are floored)."""
    a = _alpha(epsilon, sensitivity)
    k_arr = np.floor(np.asarray(k, dtype=float))
    # For k < 0:  Pr = a^{-k} / (1+a).   For k >= 0:  1 - a^{k+1} / (1+a).
    # np.where evaluates both branches, so clamp the dead branch's exponent
    # to avoid a harmless-but-noisy overflow warning at extreme |k|.
    neg_exp = np.where(k_arr < 0, -k_arr, 0.0)
    pos_exp = np.where(k_arr >= 0, k_arr + 1.0, 0.0)
    out = np.where(
        k_arr < 0,
        a**neg_exp / (1.0 + a),
        1.0 - a**pos_exp / (1.0 + a),
    )
    return out if out.ndim else float(out)


def sample_two_sided_geometric(
    epsilon: float,
    sensitivity: float = 1.0,
    size: Optional[Union[int, tuple]] = None,
    rng: RngLike = None,
) -> ArrayLike:
    """Exact two-sided geometric samples via difference of geometrics."""
    a = _alpha(epsilon, sensitivity)
    gen = ensure_rng(rng)
    # numpy's geometric counts trials (support {1, 2, ...}); subtract 1 for
    # the {0, 1, ...} version.
    shape = size if size is not None else ()
    g1 = gen.geometric(1.0 - a, size=shape) - 1
    g2 = gen.geometric(1.0 - a, size=shape) - 1
    out = g1 - g2
    return int(out) if size is None else out.astype(np.int64)


class GeometricMechanism:
    """eps-DP integer release: ``A(D) = f(D) + Z`` with two-sided geometric Z.

    Examples
    --------
    >>> mech = GeometricMechanism(epsilon=1.0)
    >>> isinstance(mech.release(41, rng=0), int)
    True
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        self._a = _alpha(epsilon, sensitivity)  # validates
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)

    @property
    def variance(self) -> float:
        """``Var[Z] = 2a / (1-a)^2`` — compare ``2 (Delta/eps)^2`` for Laplace."""
        return 2.0 * self._a / (1.0 - self._a) ** 2

    def release(self, true_value: ArrayLike, rng: RngLike = None) -> ArrayLike:
        """Release integer value(s) with exact integer noise."""
        value = np.asarray(true_value)
        if not np.issubdtype(value.dtype, np.integer) and not np.all(
            value == np.rint(value)
        ):
            raise InvalidParameterError(
                "GeometricMechanism releases integer-valued statistics"
            )
        noise = sample_two_sided_geometric(
            self.epsilon,
            self.sensitivity,
            size=value.shape if value.ndim else None,
            rng=rng,
        )
        out = value.astype(np.int64) + noise
        return int(out) if out.ndim == 0 else out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeometricMechanism(epsilon={self.epsilon:g}, "
            f"sensitivity={self.sensitivity:g})"
        )
