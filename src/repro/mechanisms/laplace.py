"""The Laplace distribution and the Laplace mechanism.

The whole SVT story is a story about Laplace noise: the threshold noise
``rho = Lap(Delta/eps1)``, the query noise ``nu_i = Lap(2c*Delta/eps2)``, and
the optional numeric-answer noise ``Lap(c*Delta/eps3)`` are all Laplace
variates.  This module provides:

* a small, fully-specified :class:`LaplaceDistribution` value object with
  exact ``pdf``/``cdf``/``ppf``/``variance`` (used by the analytical privacy
  verifier in :mod:`repro.analysis.verifier`), and
* :class:`LaplaceMechanism`, the standard eps-DP primitive for releasing
  numeric answers.

Conventions follow the paper: ``Lap(b)`` has density
``Pr[Lap(b) = x] = (1/2b) * exp(-|x|/b)``, i.e. *b* is the scale, not the
privacy parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "LaplaceDistribution",
    "LaplaceMechanism",
    "laplace_pdf",
    "laplace_cdf",
    "laplace_ppf",
    "sample_laplace",
]

ArrayLike = Union[float, np.ndarray]


def _check_scale(scale: float) -> float:
    scale = float(scale)
    if not math.isfinite(scale) or scale <= 0.0:
        raise InvalidParameterError(f"Laplace scale must be finite and > 0, got {scale!r}")
    return scale


def laplace_pdf(x: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Density of ``loc + Lap(scale)`` at *x*."""
    scale = _check_scale(scale)
    x = np.asarray(x, dtype=float)
    out = np.exp(-np.abs(x - loc) / scale) / (2.0 * scale)
    return out if out.ndim else float(out)


def laplace_cdf(x: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """CDF of ``loc + Lap(scale)`` at *x*.

    ``F(x) = 1/2 * exp((x-loc)/scale)`` for ``x <= loc`` and
    ``1 - 1/2 * exp(-(x-loc)/scale)`` otherwise.  This is the function called
    ``F`` in the paper's Theorems 6 and 7.
    """
    scale = _check_scale(scale)
    x = np.asarray(x, dtype=float)
    # Tiny scales can overflow the division to +/-inf; the subsequent exp
    # maps that to the correct 0/1 limit, so silence the intermediate noise.
    with np.errstate(over="ignore"):
        z = (x - loc) / scale
        out = np.where(z <= 0.0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))
    return out if out.ndim else float(out)


def laplace_sf(x: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Survival function ``Pr[loc + Lap(scale) >= x]`` (complement of the CDF)."""
    scale = _check_scale(scale)
    x = np.asarray(x, dtype=float)
    with np.errstate(over="ignore"):
        z = (x - loc) / scale
        out = np.where(z <= 0.0, 1.0 - 0.5 * np.exp(z), 0.5 * np.exp(-z))
    return out if out.ndim else float(out)


def laplace_ppf(q: ArrayLike, scale: float, loc: float = 0.0) -> ArrayLike:
    """Quantile function (inverse CDF) of ``loc + Lap(scale)``."""
    scale = _check_scale(scale)
    q = np.asarray(q, dtype=float)
    if np.any((q < 0.0) | (q > 1.0)):
        raise InvalidParameterError("quantiles must lie in [0, 1]")
    with np.errstate(divide="ignore"):
        out = np.where(
            q <= 0.5,
            loc + scale * np.log(2.0 * q),
            loc - scale * np.log(2.0 * (1.0 - q)),
        )
    return out if out.ndim else float(out)


def sample_laplace(
    scale: float,
    size: Optional[Union[int, tuple]] = None,
    rng: RngLike = None,
    loc: float = 0.0,
) -> ArrayLike:
    """Draw samples from ``loc + Lap(scale)``.

    A thin wrapper over :meth:`numpy.random.Generator.laplace` that validates
    the scale and routes through :func:`repro.rng.ensure_rng` so every sample
    in the library is attributable to a seed.
    """
    scale = _check_scale(scale)
    gen = ensure_rng(rng)
    out = gen.laplace(loc=loc, scale=scale, size=size)
    return float(out) if size is None else out


@dataclass(frozen=True)
class LaplaceDistribution:
    """An immutable ``loc + Lap(scale)`` distribution.

    The analytical verifier composes these objects to integrate the exact
    outcome probability of an SVT run (Eq. (5) of the paper), so the methods
    here must be exact, not approximations.
    """

    scale: float
    loc: float = 0.0

    def __post_init__(self) -> None:
        _check_scale(self.scale)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        return laplace_pdf(x, self.scale, self.loc)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        return laplace_cdf(x, self.scale, self.loc)

    def sf(self, x: ArrayLike) -> ArrayLike:
        return laplace_sf(x, self.scale, self.loc)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        return laplace_ppf(q, self.scale, self.loc)

    @property
    def variance(self) -> float:
        """``Var[Lap(b)] = 2 b^2`` — the quantity minimized in Section 4.2."""
        return 2.0 * self.scale * self.scale

    @property
    def std(self) -> float:
        """Standard deviation ``sqrt(2) * b`` — the "D" unit of SVT-ReTr."""
        return math.sqrt(2.0) * self.scale

    def sample(self, size: Optional[Union[int, tuple]] = None, rng: RngLike = None) -> ArrayLike:
        return sample_laplace(self.scale, size=size, rng=rng, loc=self.loc)

    def shift(self, delta: float) -> "LaplaceDistribution":
        """The distribution of this variate plus a constant *delta*."""
        return LaplaceDistribution(self.scale, self.loc + float(delta))


class LaplaceMechanism:
    """The eps-DP Laplace mechanism ``A_f(D) = f(D) + Lap(Delta_f / eps)``.

    Parameters
    ----------
    epsilon:
        Privacy parameter; must be > 0.
    sensitivity:
        Global L1 sensitivity ``Delta_f`` of the released statistic.

    Examples
    --------
    >>> mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
    >>> noisy = mech.release(42.0, rng=0)
    >>> isinstance(noisy, float)
    True
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        epsilon = float(epsilon)
        sensitivity = float(sensitivity)
        if epsilon <= 0.0 or not math.isfinite(epsilon):
            raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
        if sensitivity <= 0.0 or not math.isfinite(sensitivity):
            raise InvalidParameterError(
                f"sensitivity must be finite and > 0, got {sensitivity!r}"
            )
        self.epsilon = epsilon
        self.sensitivity = sensitivity

    @property
    def scale(self) -> float:
        """Noise scale ``Delta_f / eps``."""
        return self.sensitivity / self.epsilon

    @property
    def distribution(self) -> LaplaceDistribution:
        return LaplaceDistribution(self.scale)

    def release(self, true_value: ArrayLike, rng: RngLike = None) -> ArrayLike:
        """Release a noisy version of *true_value*.

        When *true_value* is an array, each entry receives independent noise;
        by sequential composition the total cost is ``len(value) * eps``
        unless the entries are answers to queries with disjoint sensitivity —
        callers are responsible for accounting (see :mod:`repro.accounting`).
        """
        value = np.asarray(true_value, dtype=float)
        gen = ensure_rng(rng)
        noisy = value + gen.laplace(scale=self.scale, size=value.shape)
        return float(noisy) if noisy.ndim == 0 else noisy

    def confidence_interval(self, noisy_value: float, confidence: float = 0.95) -> tuple:
        """Two-sided noise interval: the true value lies inside with prob. *confidence*."""
        if not 0.0 < confidence < 1.0:
            raise InvalidParameterError("confidence must be in (0, 1)")
        half_width = -self.scale * math.log(1.0 - confidence)
        return (noisy_value - half_width, noisy_value + half_width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LaplaceMechanism(epsilon={self.epsilon:g}, "
            f"sensitivity={self.sensitivity:g})"
        )
