"""Differentially private primitives used throughout the library.

This package contains the two classical mechanisms the paper builds on — the
Laplace mechanism [Dwork et al., TCC 2006] and the Exponential Mechanism
[McSherry & Talwar, FOCS 2007] — plus report-noisy-max, which is used as a
cross-check for top-1 selection.
"""

from repro.mechanisms.laplace import (
    LaplaceDistribution,
    LaplaceMechanism,
    laplace_cdf,
    laplace_pdf,
    laplace_ppf,
    sample_laplace,
)
from repro.mechanisms.geometric import (
    GeometricMechanism,
    geometric_cdf,
    geometric_pmf,
    sample_two_sided_geometric,
)
from repro.mechanisms.exponential import (
    ExponentialMechanism,
    exponential_mechanism_probabilities,
    select_one,
    select_top_c_em,
)
from repro.mechanisms.noisy_max import report_noisy_max, report_noisy_max_top_c

__all__ = [
    "LaplaceDistribution",
    "LaplaceMechanism",
    "laplace_pdf",
    "laplace_cdf",
    "laplace_ppf",
    "sample_laplace",
    "ExponentialMechanism",
    "GeometricMechanism",
    "geometric_pmf",
    "geometric_cdf",
    "sample_two_sided_geometric",
    "exponential_mechanism_probabilities",
    "select_one",
    "select_top_c_em",
    "report_noisy_max",
    "report_noisy_max_top_c",
]
