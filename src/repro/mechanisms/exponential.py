"""The Exponential Mechanism (EM) and top-c selection.

Section 5 of the paper argues that in the *non-interactive* setting — all
queries known up front, goal = select the c queries with the highest answers —
SVT should be replaced by EM: run EM c times, each round with budget
``eps/c``, quality of a query = its answer, removing each selected query from
the candidate pool.

Two exponents are supported, exactly as in Section 2 of the paper:

* general case: ``Pr[r] ∝ exp(eps * q(D, r) / (2 * Delta_q))``
* monotonic case (all quality values move the same direction between
  neighbors, e.g. counting queries under add/remove-one-tuple neighbors):
  ``Pr[r] ∝ exp(eps * q(D, r) / Delta_q)``

For large candidate universes (the AOL-like dataset has ~2.3 million items)
sequential categorical sampling is slow, so :func:`select_top_c_em` uses the
Gumbel-top-c trick, which draws exactly from the same sequential
without-replacement (Plackett–Luce) process in one vectorized pass.  The
equivalence is covered by a distributional test in
``tests/mechanisms/test_exponential.py``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "ExponentialMechanism",
    "exponential_mechanism_probabilities",
    "select_one",
    "select_top_c_em",
]


def _validate_eps(epsilon: float) -> float:
    epsilon = float(epsilon)
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    return epsilon


def _validate_sensitivity(sensitivity: float) -> float:
    sensitivity = float(sensitivity)
    if sensitivity <= 0.0 or not math.isfinite(sensitivity):
        raise InvalidParameterError(
            f"sensitivity must be finite and > 0, got {sensitivity!r}"
        )
    return sensitivity


def exponential_mechanism_probabilities(
    qualities: Sequence[float],
    epsilon: float,
    sensitivity: float = 1.0,
    monotonic: bool = False,
) -> np.ndarray:
    """Exact selection probabilities of one EM draw.

    Uses a numerically stable log-sum-exp; used both by :func:`select_one` on
    small universes and by the tests that verify the Gumbel sampler.
    """
    epsilon = _validate_eps(epsilon)
    sensitivity = _validate_sensitivity(sensitivity)
    q = np.asarray(qualities, dtype=float)
    if q.ndim != 1 or q.size == 0:
        raise InvalidParameterError("qualities must be a non-empty 1-D sequence")
    denom = sensitivity if monotonic else 2.0 * sensitivity
    logits = (epsilon / denom) * q
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


def select_one(
    qualities: Sequence[float],
    epsilon: float,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    rng: RngLike = None,
) -> int:
    """One eps-DP EM draw; returns the index of the selected candidate."""
    probs = exponential_mechanism_probabilities(qualities, epsilon, sensitivity, monotonic)
    gen = ensure_rng(rng)
    return int(gen.choice(probs.size, p=probs))


def _gumbel_top_c(logits: np.ndarray, c: int, gen: np.random.Generator) -> np.ndarray:
    """Indices of the top-c entries of ``logits + Gumbel`` (Plackett–Luce draw).

    Adding i.i.d. standard Gumbel noise to the logits and taking the argmax
    samples proportionally to ``exp(logits)``; taking the top-c in order is
    distributed exactly like c sequential without-replacement draws.
    """
    gumbel = gen.gumbel(size=logits.shape)
    keys = logits + gumbel
    if c >= keys.size:
        return np.argsort(-keys, kind="stable")
    # argpartition then sort only the head: O(n + c log c).
    head = np.argpartition(-keys, c)[:c]
    return head[np.argsort(-keys[head], kind="stable")]


def select_top_c_em(
    qualities: Sequence[float],
    epsilon: float,
    c: int,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    rng: RngLike = None,
    per_round_epsilon: Optional[float] = None,
) -> np.ndarray:
    """Select c candidates with c rounds of EM (total budget *epsilon*).

    Each round uses ``epsilon / c`` (or *per_round_epsilon* when given, in
    which case *epsilon* is ignored) and the winner is removed from the pool,
    exactly as in Section 5 ("EM or SVT").  Returns the selected indices in
    selection order.
    """
    q = np.asarray(qualities, dtype=float)
    if q.ndim != 1 or q.size == 0:
        raise InvalidParameterError("qualities must be a non-empty 1-D sequence")
    if not isinstance(c, (int, np.integer)) or c <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    c = int(min(c, q.size))
    sensitivity = _validate_sensitivity(sensitivity)
    if per_round_epsilon is None:
        per_round_epsilon = _validate_eps(epsilon) / c
    else:
        per_round_epsilon = _validate_eps(per_round_epsilon)
    denom = sensitivity if monotonic else 2.0 * sensitivity
    logits = (per_round_epsilon / denom) * q
    gen = ensure_rng(rng)
    return _gumbel_top_c(logits, c, gen)


class ExponentialMechanism:
    """Object-style facade over the EM functions.

    Examples
    --------
    >>> em = ExponentialMechanism(epsilon=1.0, sensitivity=1.0, monotonic=True)
    >>> idx = em.select([10.0, 0.0, 3.0], rng=0)
    >>> 0 <= idx < 3
    True
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float = 1.0,
        monotonic: bool = False,
    ) -> None:
        self.epsilon = _validate_eps(epsilon)
        self.sensitivity = _validate_sensitivity(sensitivity)
        self.monotonic = bool(monotonic)

    def probabilities(self, qualities: Sequence[float]) -> np.ndarray:
        return exponential_mechanism_probabilities(
            qualities, self.epsilon, self.sensitivity, self.monotonic
        )

    def select(self, qualities: Sequence[float], rng: RngLike = None) -> int:
        return select_one(qualities, self.epsilon, self.sensitivity, self.monotonic, rng)

    def select_top_c(
        self, qualities: Sequence[float], c: int, rng: RngLike = None
    ) -> np.ndarray:
        """Split this mechanism's budget over c rounds and select c winners."""
        return select_top_c_em(
            qualities,
            self.epsilon,
            c,
            sensitivity=self.sensitivity,
            monotonic=self.monotonic,
            rng=rng,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "monotonic" if self.monotonic else "general"
        return (
            f"ExponentialMechanism(epsilon={self.epsilon:g}, "
            f"sensitivity={self.sensitivity:g}, {mode})"
        )
