"""Report-noisy-max and its top-c extension.

Report-noisy-max is the other classical private-selection primitive: add
independent ``Lap(2*Delta/eps)`` (or ``Lap(Delta/eps)`` in the monotonic
case) noise to every quality and report the argmax.  It is not evaluated in
the paper but is the natural sanity baseline for the EM-vs-SVT comparison, and
we use it in tests as an independent implementation of "private top-c" to
cross-check harness plumbing.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = ["report_noisy_max", "report_noisy_max_top_c"]


def _noise_scale(epsilon: float, sensitivity: float, monotonic: bool) -> float:
    epsilon = float(epsilon)
    sensitivity = float(sensitivity)
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    if sensitivity <= 0.0 or not math.isfinite(sensitivity):
        raise InvalidParameterError(
            f"sensitivity must be finite and > 0, got {sensitivity!r}"
        )
    return (sensitivity if monotonic else 2.0 * sensitivity) / epsilon


def report_noisy_max(
    qualities: Sequence[float],
    epsilon: float,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    rng: RngLike = None,
) -> int:
    """eps-DP argmax via independent Laplace noise on each quality."""
    q = np.asarray(qualities, dtype=float)
    if q.ndim != 1 or q.size == 0:
        raise InvalidParameterError("qualities must be a non-empty 1-D sequence")
    gen = ensure_rng(rng)
    scale = _noise_scale(epsilon, sensitivity, monotonic)
    return int(np.argmax(q + gen.laplace(scale=scale, size=q.shape)))


def report_noisy_max_top_c(
    qualities: Sequence[float],
    epsilon: float,
    c: int,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    rng: RngLike = None,
) -> np.ndarray:
    """Select c winners with c rounds of report-noisy-max, each at eps/c.

    Fresh noise per round, winner removed from the pool — composition gives
    eps-DP overall, mirroring the structure of EM top-c selection.
    """
    q = np.asarray(qualities, dtype=float)
    if q.ndim != 1 or q.size == 0:
        raise InvalidParameterError("qualities must be a non-empty 1-D sequence")
    if not isinstance(c, (int, np.integer)) or c <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    c = int(min(c, q.size))
    gen = ensure_rng(rng)
    scale = _noise_scale(epsilon / c, sensitivity, monotonic)
    selected: list[int] = []
    remaining = np.arange(q.size)
    for _ in range(c):
        noisy = q[remaining] + gen.laplace(scale=scale, size=remaining.size)
        winner_pos = int(np.argmax(noisy))
        selected.append(int(remaining[winner_pos]))
        remaining = np.delete(remaining, winner_pos)
    return np.asarray(selected, dtype=np.int64)
