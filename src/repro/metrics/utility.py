"""The paper's two utility measures: FNR and SER (Section 6).

Both compare a selected set S of query indices against the true top-c set:

* **False Negative Rate** — the fraction of the true top-c that was missed.
  When exactly c results are output this equals the false positive rate.
* **Score Error Rate** — ``1 - avgScore(S) / avgScore(Topc)`` — the fraction
  of "missed score", which unlike FNR distinguishes missing the top item from
  missing the c-th, and selecting garbage from selecting the (c+1)-th.

Convention: indices refer to positions in the *scores* array; scores need not
be sorted.  Ties at the top-c boundary are handled by value, not by index —
selecting any item whose score equals the c-th highest counts as a hit, which
matches how the metrics behave on real data where adjacent supports tie.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "false_negative_rate",
    "score_error_rate",
    "precision_recall",
    "selection_report",
    "batch_selection_metrics",
    "metrics_from_topc",
]


def _validate(scores: Sequence[float], selected: Sequence[int], c: int) -> Tuple[np.ndarray, np.ndarray]:
    scores_arr = np.asarray(scores, dtype=float)
    if scores_arr.ndim != 1 or scores_arr.size == 0:
        raise InvalidParameterError("scores must be a non-empty 1-D sequence")
    if not isinstance(c, (int, np.integer)) or int(c) <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    if int(c) > scores_arr.size:
        raise InvalidParameterError(f"c={c} exceeds the number of candidates {scores_arr.size}")
    sel = np.asarray(selected, dtype=np.int64).ravel()
    if sel.size and (sel.min() < 0 or sel.max() >= scores_arr.size):
        raise InvalidParameterError("selected indices out of range")
    if np.unique(sel).size != sel.size:
        raise InvalidParameterError("selected indices must be distinct")
    return scores_arr, sel


def false_negative_rate(scores: Sequence[float], selected: Sequence[int], c: int) -> float:
    """Fraction of the true top-c scores that the selection missed.

    Tie-aware: a selected item "covers" one true top-c slot if its score
    equals that slot's score, so swapping equal-score items costs nothing.
    """
    scores_arr, sel = _validate(scores, selected, c)
    c = int(c)
    top_scores = np.sort(scores_arr)[-c:]  # ascending, the c highest values
    selected_scores = np.sort(scores_arr[sel])
    # Greedy two-pointer matching of selected scores to top-c slots by value.
    hits = 0
    i = top_scores.size - 1
    j = selected_scores.size - 1
    while i >= 0 and j >= 0:
        if selected_scores[j] >= top_scores[i]:
            hits += 1
            i -= 1
            j -= 1
        else:
            i -= 1
    return 1.0 - hits / c


def score_error_rate(scores: Sequence[float], selected: Sequence[int], c: int) -> float:
    """``1 - avgScore(S) / avgScore(Topc)`` (the paper's SER).

    When the selection returns fewer than c items (plain SVT can), the
    average over S still divides by ``len(S)`` only if S is non-empty —
    matching the metric's definition on the selected set — but the common
    harness convention (and the conservative one) is to treat missing slots
    as zero score.  We follow the conservative convention: the selected-score
    sum is divided by c, so under-selection is penalized.
    """
    scores_arr, sel = _validate(scores, selected, c)
    c = int(c)
    top_sum = float(np.sort(scores_arr)[-c:].sum())
    if top_sum <= 0.0:
        raise InvalidParameterError("top-c scores must have positive sum for SER")
    sel_sum = float(scores_arr[sel[:c]].sum()) if sel.size else 0.0
    # Clamp away floating-point dust: a valid selection's score sum can never
    # exceed the top-c sum, so SER lies in [0, 1] by definition (assuming
    # non-negative scores, which the top_sum check effectively enforces for
    # the quantities that matter).
    return float(min(1.0, max(0.0, 1.0 - (sel_sum / c) / (top_sum / c))))


def precision_recall(
    scores: Sequence[float], selected: Sequence[int], c: int
) -> Tuple[float, float]:
    """(precision, recall) of the selection against the true top-c, tie-aware."""
    scores_arr, sel = _validate(scores, selected, c)
    c = int(c)
    if sel.size == 0:
        return 0.0, 0.0
    fnr = false_negative_rate(scores_arr, sel, c)
    hits = round((1.0 - fnr) * c)
    return hits / sel.size, hits / c


def batch_selection_metrics(
    scores: np.ndarray,
    selection: np.ndarray,
    c: int,
    base_scores: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized (SER, FNR) over a whole batch of trials at once.

    Parameters
    ----------
    scores:
        ``(n,)`` shared scores, or ``(trials, n)`` per-trial score rows (e.g.
        per-trial shuffles); ``selection`` indexes into the matching row.
    selection:
        ``(trials, k)`` selected indices per trial, right-padded with ``-1``.
        Column order is selection order: SER uses the first c columns (the
        conservative under-selection convention of :func:`score_error_rate`),
        FNR all of them.
    base_scores:
        The score multiset used for the true top-c reference.  Required when
        *scores* is 2-D and its rows are permutations of a common multiset
        (the experiment-harness case); defaults to *scores* when 1-D.

    Matches the scalar metrics exactly: SER is the same clamped ratio of
    sums; FNR uses the tie-aware counting identity — with b the c-th highest
    score and a the number of scores strictly above b, the greedy matching of
    :func:`false_negative_rate` awards ``hits = #{sel > b} + min(#{sel == b},
    c - a)`` — which a property test cross-checks against the two-pointer.
    """
    sel = np.asarray(selection, dtype=np.int64)
    if sel.ndim != 2:
        raise InvalidParameterError("selection must be a (trials, k) matrix")
    scores_arr = np.asarray(scores, dtype=float)
    if scores_arr.ndim == 1:
        base = scores_arr if base_scores is None else np.asarray(base_scores, dtype=float)
        rows = np.broadcast_to(scores_arr, (sel.shape[0], scores_arr.size))
    elif scores_arr.ndim == 2:
        if base_scores is None:
            raise InvalidParameterError(
                "2-D scores need base_scores (the shared score multiset)"
            )
        base = np.asarray(base_scores, dtype=float)
        rows = scores_arr
    else:
        raise InvalidParameterError("scores must be 1-D or (trials, n)")
    if not isinstance(c, (int, np.integer)) or int(c) <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    c = int(c)
    if c > base.size:
        raise InvalidParameterError(f"c={c} exceeds the number of candidates {base.size}")

    top = np.sort(base)[-c:]
    top_sum = float(top.sum())
    if top_sum <= 0.0:
        raise InvalidParameterError("top-c scores must have positive sum for SER")
    boundary = float(top[0])  # the c-th highest score
    slots_above = int(np.count_nonzero(base > boundary))

    # Same guarantees the scalar metrics enforce: -1 is padding, anything
    # else must be a distinct in-range index.
    if sel.size:
        if sel.min() < -1 or sel.max() >= rows.shape[1]:
            raise InvalidParameterError("selected indices out of range")
        sorted_sel = np.sort(sel, axis=1)
        duplicated = (sorted_sel[:, 1:] == sorted_sel[:, :-1]) & (sorted_sel[:, 1:] >= 0)
        if duplicated.any():
            raise InvalidParameterError("selected indices must be distinct")

    valid = sel >= 0
    picked = np.take_along_axis(rows, np.where(valid, sel, 0), axis=1)
    picked = np.where(valid, picked, -np.inf)
    return metrics_from_topc(picked, valid, c, top_sum, boundary, slots_above)


def metrics_from_topc(
    picked: np.ndarray,
    valid: np.ndarray,
    c: int,
    top_sum: float,
    boundary: float,
    slots_above: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """(SER, FNR) from gathered selection scores plus the top-c reference.

    The computational core of :func:`batch_selection_metrics`, split out so
    the tiled engine can score selections against a streaming top-c summary
    (:func:`repro.data.scores.topc_stats`) without ever holding the score
    vector: *picked* is the ``(trials, k)`` matrix of selected scores
    (``-inf`` at padded slots, *valid* marking real entries), and
    ``(top_sum, boundary, slots_above)`` the true top-c sum, the c-th
    highest score, and the count strictly above it.  Bit-identical to the
    dense path — same sums in the same order, same tie-aware counting.
    """
    if top_sum <= 0.0:
        raise InvalidParameterError("top-c scores must have positive sum for SER")
    sel_sum = np.where(valid[:, :c], picked[:, :c], 0.0).sum(axis=1)
    ser = np.minimum(1.0, np.maximum(0.0, 1.0 - (sel_sum / c) / (top_sum / c)))

    hits = (picked > boundary).sum(axis=1) + np.minimum(
        (picked == boundary).sum(axis=1), c - slots_above
    )
    fnr = 1.0 - hits / c
    return ser, fnr


@dataclass(frozen=True)
class SelectionReport:
    """Bundle of all metrics for one selection."""

    c: int
    num_selected: int
    fnr: float
    ser: float
    precision: float
    recall: float


def selection_report(scores: Sequence[float], selected: Sequence[int], c: int) -> SelectionReport:
    """Compute every Section-6 metric (plus precision/recall) in one call."""
    scores_arr, sel = _validate(scores, selected, c)
    precision, recall = precision_recall(scores_arr, sel, int(c))
    return SelectionReport(
        c=int(c),
        num_selected=int(sel.size),
        fnr=false_negative_rate(scores_arr, sel, int(c)),
        ser=score_error_rate(scores_arr, sel, int(c)),
        precision=precision,
        recall=recall,
    )
