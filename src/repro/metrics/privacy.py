"""Privacy reporting: one call combining the exact verifier and the MC estimator.

For a Figure-1 variant and a neighboring input pair, :func:`privacy_report`
computes the exact (integrated) privacy loss where the outcome space is
enumerable, a Monte-Carlo point estimate from the actual implementation, and
the verdict against the advertised epsilon.  Used by the Figure-2 bench and
exported for downstream users auditing their own parameterizations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.verifier import empirical_epsilon, spec_for_variant
from repro.attacks.estimator import estimate_event_epsilon
from repro.engine.trials import transcript_sampler
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike
from repro.variants.registry import get_variant

__all__ = ["PrivacyReport", "privacy_report"]


@dataclass(frozen=True)
class PrivacyReport:
    """Outcome of auditing one variant on one neighboring pair.

    ``exact_loss`` is the verifier's max-over-outcomes log-ratio (may be
    ``inf``); ``mc_loss`` the Monte-Carlo estimate on the worst enumerated
    event; ``advertised_epsilon`` what the algorithm claims; ``violated``
    whether the exact loss exceeds the claim (beyond numerical tolerance).
    """

    variant: str
    advertised_epsilon: float
    exact_loss: float
    mc_loss: Optional[float]
    violated: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mc = "n/a" if self.mc_loss is None else f"{self.mc_loss:.3f}"
        status = "VIOLATED" if self.violated else "ok"
        return (
            f"{self.variant}: advertised eps={self.advertised_epsilon:g}, "
            f"exact loss={self.exact_loss:.4f}, MC loss={mc} -> {status}"
        )


def privacy_report(
    variant_key: str,
    answers_d: Sequence[float],
    answers_d_prime: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: float = 0.0,
    mc_trials: int = 0,
    rng: RngLike = None,
) -> PrivacyReport:
    """Audit a variant's eps-DP claim on one neighboring pair.

    Numeric-output variants (Alg. 3) have a continuous outcome space and are
    not supported here — use :mod:`repro.attacks.counterexamples` directly.

    *mc_trials* > 0 additionally runs the real implementation and estimates
    the loss on the single worst discrete event found by the verifier (a
    consistency check that implementation and spec agree).
    """
    info = get_variant(variant_key)
    if info.outputs_numeric_answer:
        raise InvalidParameterError(
            "numeric-output variants need the counterexample tooling; "
            "see repro.attacks.counterexamples.theorem6_roth"
        )
    spec = spec_for_variant(variant_key, epsilon, c)
    cutoff = None if info.unbounded_positives else c
    exact = empirical_epsilon(
        spec, answers_d, answers_d_prime, thresholds=thresholds, c=cutoff
    )

    mc_loss: Optional[float] = None
    if mc_trials > 0:
        # The indicator transcript is a deterministic function of
        # (processed, positives); estimating on the full transcript event
        # space via its worst single event would require enumerating again,
        # so use the coarser "identical transcript" event for the pair's
        # most-likely-on-D outcome.
        def probe(gen):
            result = info.run(
                list(answers_d),
                epsilon=epsilon,
                c=c,
                thresholds=thresholds,
                rng=gen,
                allow_non_private=True,
            )
            return (result.processed, tuple(result.positives))

        target = probe(np.random.default_rng(0))
        estimate = estimate_event_epsilon(
            transcript_sampler(
                info, list(answers_d), epsilon, c,
                thresholds=thresholds, allow_non_private=True,
            ),
            transcript_sampler(
                info, list(answers_d_prime), epsilon, c,
                thresholds=thresholds, allow_non_private=True,
            ),
            lambda out: out == target,
            trials=mc_trials,
            rng=rng,
            vectorized=True,
        )
        mc_loss = estimate.point

    violated = exact > float(epsilon) + 1e-6
    return PrivacyReport(
        variant=info.listing,
        advertised_epsilon=float(epsilon),
        exact_loss=exact,
        mc_loss=mc_loss,
        violated=violated,
    )
