"""Utility metrics from Section 6."""

from repro.metrics.privacy import PrivacyReport, privacy_report
from repro.metrics.utility import (
    false_negative_rate,
    precision_recall,
    score_error_rate,
    selection_report,
)

__all__ = [
    "false_negative_rate",
    "score_error_rate",
    "precision_recall",
    "selection_report",
    "PrivacyReport",
    "privacy_report",
]
