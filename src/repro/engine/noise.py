"""Noise-block sampling for the batch execution engine.

Every SVT variant consumes two kinds of Laplace noise: one threshold
perturbation ``rho`` per run (per refresh for Alg. 2) and one query
perturbation ``nu_i`` per examined query.  The engine samples these as
*blocks* — a ``(trials, n)`` matrix of query noise and a ``(trials,)`` vector
of threshold noise — instead of scalar-at-a-time, which is where the batch
path gets its throughput.

Two sampling modes are supported, selected by the type of the ``rng``
argument:

* a single ``Generator`` (or seed): one vectorized ``laplace`` call for the
  whole matrix — the fastest path;
* a list of per-trial ``Generator`` objects (e.g. from
  :func:`repro.rng.derive_rngs`): each trial's row is drawn from its own
  stream.  Because a NumPy block draw consumes the bit stream exactly like
  the equivalent sequence of scalar draws, row i is then bit-identical to
  what a per-trial loop seeded the same way would have sampled — the
  property the batch ≡ streaming equivalence tests rely on.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "TrialRngs",
    "TrialStreams",
    "laplace_vector",
    "laplace_matrix",
    "gumbel_matrix",
]

#: Either one shared stream or one stream per trial.
TrialRngs = Union[RngLike, Sequence[np.random.Generator]]


def _is_rng_list(rng: TrialRngs) -> bool:
    return isinstance(rng, (list, tuple))


def laplace_vector(rng: TrialRngs, scale: float, trials: int) -> np.ndarray:
    """Sample a ``(trials,)`` vector of ``Lap(scale)`` threshold noise.

    With per-trial generators, entry i is each stream's *next* draw.
    ``scale`` may also be a ``(trials,)`` array for per-trial scales.
    """
    if _is_rng_list(rng):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        scales = np.broadcast_to(np.asarray(scale, dtype=float), (trials,))
        return np.array(
            [float(gen.laplace(scale=s)) for gen, s in zip(rng, scales)]
        )
    return np.atleast_1d(ensure_rng(rng).laplace(scale=scale, size=trials))


def laplace_matrix(rng: TrialRngs, scale: float, trials: int, n: int) -> np.ndarray:
    """Sample a ``(trials, n)`` matrix of ``Lap(scale)`` query noise in one block.

    With a single generator this is one vectorized call; with per-trial
    generators each row comes from its own stream (stream-compatible with a
    per-trial loop drawing ``gen.laplace(scale, size=n)``).
    """
    if n < 0 or trials < 0:
        raise InvalidParameterError("trials and n must be non-negative")
    if _is_rng_list(rng):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        out = np.empty((trials, n), dtype=float)
        for i, gen in enumerate(rng):
            out[i] = gen.laplace(scale=scale, size=n)
        return out
    return ensure_rng(rng).laplace(scale=scale, size=(trials, n))


class TrialStreams:
    """Per-trial generators with checkpoint/replay, for two-axis tiling.

    The tiled engine (:mod:`repro.engine.tiled`) consumes each trial's noise
    stream *tile by tile* in query order.  Because a NumPy block draw eats
    the bit stream exactly like the equivalent sequence of smaller draws,
    the concatenation of per-tile draws is bit-identical to the one
    full-width draw the dense engine makes — that is what keeps tiled ==
    untiled exact for every chunk_n.

    Two mechanisms need to *revisit* stream positions without disturbing
    them: Alg. 2's segmented rescans re-read the query-noise tiles after
    later rounds learn a refreshed threshold, and epsilon grids re-read the
    shared unit-noise tiles once per grid point.  :meth:`checkpoint` captures
    every trial's ``bit_generator.state`` (a small dict — noise tiles are
    re-derived from their coordinates in the stream, never stored), and
    :meth:`replayer` builds a throwaway generator positioned at a saved
    state, so replays never advance the live streams.
    """

    def __init__(self, gens: Sequence[np.random.Generator]) -> None:
        self.gens: List[np.random.Generator] = list(gens)

    def __len__(self) -> int:
        return len(self.gens)

    # -- live draws (advance the streams) --------------------------------
    def rho(self, scale: float) -> np.ndarray:
        """One threshold draw per trial (``Lap(scale)``), in trial order."""
        return laplace_vector(self.gens, scale, len(self.gens))

    def laplace_tile(self, scale: float, width: int) -> np.ndarray:
        """A ``(trials, width)`` Laplace tile, one row per live stream."""
        return laplace_matrix(self.gens, scale, len(self.gens), width)

    def gumbel_tile(self, width: int) -> np.ndarray:
        """A ``(trials, width)`` standard-Gumbel tile from the live streams."""
        return gumbel_matrix(self.gens, len(self.gens), width)

    # -- checkpoint / replay ---------------------------------------------
    def checkpoint(self) -> list:
        """Every trial's current bit-generator state (cheap, copyable)."""
        return [g.bit_generator.state for g in self.gens]

    @staticmethod
    def _clone(gen: np.random.Generator, state) -> np.random.Generator:
        replay = np.random.Generator(type(gen.bit_generator)())
        replay.bit_generator.state = state
        return replay

    def replayer(self, trial: int, state) -> np.random.Generator:
        """A fresh generator for *trial* positioned at a saved *state*."""
        return self._clone(self.gens[trial], state)

    def replayers(self, states) -> "TrialStreams":
        """A whole replay bundle positioned at per-trial *states*."""
        return TrialStreams(
            [self._clone(g, s) for g, s in zip(self.gens, states)]
        )


def gumbel_matrix(rng: TrialRngs, trials: int, n: int) -> np.ndarray:
    """Sample a ``(trials, n)`` matrix of standard Gumbel noise (EM kernel).

    Standard (loc 0, scale 1) because the exponential mechanism's budget
    enters through the logits, not the noise — which is what lets one Gumbel
    block serve a whole epsilon grid.  Per-trial generators draw one row per
    stream, bit-compatible with ``gen.gumbel(size=n)`` in a per-trial loop.
    """
    if n < 0 or trials < 0:
        raise InvalidParameterError("trials and n must be non-negative")
    if _is_rng_list(rng):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        out = np.empty((trials, n), dtype=float)
        for i, gen in enumerate(rng):
            out[i] = gen.gumbel(size=n)
        return out
    return ensure_rng(rng).gumbel(size=(trials, n))
