"""Noise-block sampling for the batch execution engine.

Every SVT variant consumes two kinds of Laplace noise: one threshold
perturbation ``rho`` per run (per refresh for Alg. 2) and one query
perturbation ``nu_i`` per examined query.  The engine samples these as
*blocks* — a ``(trials, n)`` matrix of query noise and a ``(trials,)`` vector
of threshold noise — instead of scalar-at-a-time, which is where the batch
path gets its throughput.

Two sampling modes are supported, selected by the type of the ``rng``
argument:

* a single ``Generator`` (or seed): one vectorized ``laplace`` call for the
  whole matrix — the fastest path;
* a list of per-trial ``Generator`` objects (e.g. from
  :func:`repro.rng.derive_rngs`): each trial's row is drawn from its own
  stream.  Because a NumPy block draw consumes the bit stream exactly like
  the equivalent sequence of scalar draws, row i is then bit-identical to
  what a per-trial loop seeded the same way would have sampled — the
  property the batch ≡ streaming equivalence tests rely on.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = ["TrialRngs", "laplace_vector", "laplace_matrix", "gumbel_matrix"]

#: Either one shared stream or one stream per trial.
TrialRngs = Union[RngLike, Sequence[np.random.Generator]]


def _is_rng_list(rng: TrialRngs) -> bool:
    return isinstance(rng, (list, tuple))


def laplace_vector(rng: TrialRngs, scale: float, trials: int) -> np.ndarray:
    """Sample a ``(trials,)`` vector of ``Lap(scale)`` threshold noise.

    With per-trial generators, entry i is each stream's *next* draw.
    ``scale`` may also be a ``(trials,)`` array for per-trial scales.
    """
    if _is_rng_list(rng):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        scales = np.broadcast_to(np.asarray(scale, dtype=float), (trials,))
        return np.array(
            [float(gen.laplace(scale=s)) for gen, s in zip(rng, scales)]
        )
    return np.atleast_1d(ensure_rng(rng).laplace(scale=scale, size=trials))


def laplace_matrix(rng: TrialRngs, scale: float, trials: int, n: int) -> np.ndarray:
    """Sample a ``(trials, n)`` matrix of ``Lap(scale)`` query noise in one block.

    With a single generator this is one vectorized call; with per-trial
    generators each row comes from its own stream (stream-compatible with a
    per-trial loop drawing ``gen.laplace(scale, size=n)``).
    """
    if n < 0 or trials < 0:
        raise InvalidParameterError("trials and n must be non-negative")
    if _is_rng_list(rng):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        out = np.empty((trials, n), dtype=float)
        for i, gen in enumerate(rng):
            out[i] = gen.laplace(scale=scale, size=n)
        return out
    return ensure_rng(rng).laplace(scale=scale, size=(trials, n))


def gumbel_matrix(rng: TrialRngs, trials: int, n: int) -> np.ndarray:
    """Sample a ``(trials, n)`` matrix of standard Gumbel noise (EM kernel).

    Standard (loc 0, scale 1) because the exponential mechanism's budget
    enters through the logits, not the noise — which is what lets one Gumbel
    block serve a whole epsilon grid.  Per-trial generators draw one row per
    stream, bit-compatible with ``gen.gumbel(size=n)`` in a per-trial loop.
    """
    if n < 0 or trials < 0:
        raise InvalidParameterError("trials and n must be non-negative")
    if _is_rng_list(rng):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        out = np.empty((trials, n), dtype=float)
        for i, gen in enumerate(rng):
            out[i] = gen.gumbel(size=n)
        return out
    return ensure_rng(rng).gumbel(size=(trials, n))
