"""Pure SVT kernels: noise in, transcript out.

Each kernel is a *deterministic* function of the true answers, thresholds,
and pre-sampled noise — no generator in sight.  Sampling lives in
:mod:`repro.engine.noise` / :mod:`repro.engine.batch`; keeping it out of the
kernels means the batch ≡ streaming question becomes a statement about pure
functions: feed both forms the exact same noise arrays and they must return
the exact same :class:`~repro.core.base.SVTResult`, field for field.  The
``*_stream`` twins are query-at-a-time Python transliterations of the
Figure 1 listings and exist purely as the equivalence oracle (and as living
documentation of what the vectorized forms compute).

Kernel families, mapping onto the Figure 1 variants:

* :func:`threshold_kernel` — one rho, i.i.d. query noise, halt at the c-th
  positive.  Covers Alg. 1/7 (optionally with the independent eps3 numeric
  phase), Alg. 3 (``release_noisy=True``: the positive *releases* the very
  ``q_i + nu_i`` that won the comparison), and Alg. 4.
* :func:`dpbook_kernel` — Alg. 2: the threshold noise is refreshed after
  every positive, splitting the run into constant-rho segments; each segment
  is one vectorized scan-then-cut.
* :func:`nocut_kernel` — Alg. 5/6 and GPTT: no cutoff, every query is
  processed, so the whole run is a single vectorized comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import ABOVE, BELOW, SVTResult
from repro.exceptions import InvalidParameterError

__all__ = [
    "cut_at_cth_positive",
    "threshold_kernel",
    "threshold_kernel_stream",
    "dpbook_kernel",
    "dpbook_kernel_stream",
    "nocut_kernel",
    "nocut_kernel_stream",
    "THRESHOLD_BYTES_PER_CELL",
    "DPBOOK_BYTES_PER_CELL",
    "NOCUT_BYTES_PER_CELL",
    "NOCUT_NONOISE_BYTES_PER_CELL",
]

# ---------------------------------------------------------------------------
# Working-set models: peak live bytes per (trial, query) cell of each kernel
# family, used by repro.engine.plans to size trial chunks.  Counted from the
# arrays each multi-trial path actually holds at once (float64 = 8, bool/int
# masks as labelled), with slack for the shuffle row and selection scatter.
# Deliberately conservative — the budget caps *peak* footprint.
# ---------------------------------------------------------------------------

#: threshold_kernel shape (Alg. 1/3/4/7): shuffled values (8) + nu block (8)
#: + noisy-comparison intermediate (8) + above (1) + cumsum (8) + prefix and
#: positives masks (2) + slack.
THRESHOLD_BYTES_PER_CELL = 48

#: dpbook_kernel (Alg. 2): the threshold shape plus the persistent
#: ``values + nu`` matrix the segmented refresh rescans keep live.
DPBOOK_BYTES_PER_CELL = 56

#: nocut_kernel with query noise (Alg. 6 / GPTT): no halt bookkeeping, but
#: the selection scatter still runs a cumsum; one intermediate fewer than
#: the threshold shape.
NOCUT_BYTES_PER_CELL = 44

#: nocut_kernel without query noise (Alg. 5): no nu block and no noisy
#: intermediate at all — the comparison broadcasts against rho alone.
NOCUT_NONOISE_BYTES_PER_CELL = 32


def cut_at_cth_positive(above: np.ndarray, c: int) -> Tuple[int, bool]:
    """Halt-point of a cutoff-c run given the full comparison vector.

    Returns ``(processed, halted)``: the run consumes queries up to and
    including the c-th positive, or the whole stream when fewer than c
    comparisons succeed.
    """
    cum = np.cumsum(above)
    hit = np.nonzero(cum == c)[0]
    if hit.size and above[hit[0]]:
        return int(hit[0]) + 1, True
    return int(above.size), False


def _as_values(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise InvalidParameterError("answers must be a 1-D sequence")
    return arr


def threshold_kernel(
    values: Sequence[float],
    thresholds: np.ndarray,
    rho: float,
    nu: np.ndarray,
    c: int,
    numeric_noise: Optional[np.ndarray] = None,
    release_noisy: bool = False,
) -> SVTResult:
    """Vectorized single-rho cutoff kernel (Alg. 1/3/4/7).

    ``numeric_noise`` (Alg. 7 eps3 phase) holds one fresh-noise draw per
    positive ordinal; ``release_noisy`` (Alg. 3) instead releases the
    comparison's own ``q_i + nu_i``.  The two are mutually exclusive.
    """
    if release_noisy and numeric_noise is not None:
        raise InvalidParameterError("release_noisy excludes an independent numeric phase")
    arr = _as_values(values)
    noisy = arr + nu
    above = noisy >= thresholds + rho
    processed, halted = cut_at_cth_positive(above, c)
    positives = np.nonzero(above[:processed])[0]

    answers: list = [BELOW] * processed
    if release_noisy:
        for i in positives:
            answers[int(i)] = float(noisy[i])
    elif numeric_noise is not None:
        for k, i in enumerate(positives):
            answers[int(i)] = float(arr[i] + numeric_noise[k])
    else:
        for i in positives:
            answers[int(i)] = ABOVE
    return SVTResult(
        answers=answers,
        positives=[int(i) for i in positives],
        processed=processed,
        halted=halted,
        noisy_threshold_trace=[float(rho)],
    )


def threshold_kernel_stream(
    values: Sequence[float],
    thresholds: np.ndarray,
    rho: float,
    nu: np.ndarray,
    c: int,
    numeric_noise: Optional[np.ndarray] = None,
    release_noisy: bool = False,
) -> SVTResult:
    """Query-at-a-time reference for :func:`threshold_kernel`."""
    if release_noisy and numeric_noise is not None:
        raise InvalidParameterError("release_noisy excludes an independent numeric phase")
    arr = _as_values(values)
    result = SVTResult(noisy_threshold_trace=[float(rho)])
    count = 0
    for i in range(arr.size):
        noisy = arr[i] + nu[i]
        result.processed += 1
        if noisy >= thresholds[i] + rho:
            result.positives.append(i)
            if release_noisy:
                result.answers.append(float(noisy))
            elif numeric_noise is not None:
                result.answers.append(float(arr[i] + numeric_noise[count]))
            else:
                result.answers.append(ABOVE)
            count += 1
            if count >= c:
                result.halted = True
                break
        else:
            result.answers.append(BELOW)
    return result


def dpbook_kernel(
    values: Sequence[float],
    thresholds: np.ndarray,
    rhos: np.ndarray,
    nu: np.ndarray,
    c: int,
) -> SVTResult:
    """Vectorized Alg. 2 kernel: segmented rescans with per-segment rho.

    ``rhos[0]`` is the initial threshold noise; ``rhos[k]`` the refresh used
    after the k-th positive (the listing refreshes after *every* positive,
    including the c-th, so up to ``c + 1`` entries are consumed — pass at
    least that many).  Each query is examined exactly once; a "segment" is a
    maximal run under one rho, ended by a positive, and within a segment the
    comparison is one vectorized scan.
    """
    arr = _as_values(values)
    n = arr.size
    if len(rhos) < min(c, n) + 1:
        raise InvalidParameterError(f"need at least min(c, n)+1 threshold draws, got {len(rhos)}")
    noisy = arr + nu

    rho = float(rhos[0])
    trace = [rho]
    positives: list[int] = []
    start = 0
    processed = n
    halted = False
    while start < n:
        above = noisy[start:] >= thresholds[start:] + rho
        hits = np.nonzero(above)[0]
        if not hits.size:
            break
        pos = start + int(hits[0])
        positives.append(pos)
        rho = float(rhos[len(positives)])
        trace.append(rho)
        if len(positives) >= c:
            processed = pos + 1
            halted = True
            break
        start = pos + 1

    above_set = set(positives)
    return SVTResult(
        answers=[ABOVE if i in above_set else BELOW for i in range(processed)],
        positives=positives,
        processed=processed,
        halted=halted,
        noisy_threshold_trace=trace,
    )


def dpbook_kernel_stream(
    values: Sequence[float],
    thresholds: np.ndarray,
    rhos: np.ndarray,
    nu: np.ndarray,
    c: int,
) -> SVTResult:
    """Query-at-a-time reference for :func:`dpbook_kernel`."""
    arr = _as_values(values)
    rho = float(rhos[0])
    result = SVTResult(noisy_threshold_trace=[rho])
    count = 0
    for i in range(arr.size):
        result.processed += 1
        if arr[i] + nu[i] >= thresholds[i] + rho:
            result.answers.append(ABOVE)
            result.positives.append(i)
            count += 1
            rho = float(rhos[count])
            result.noisy_threshold_trace.append(rho)
            if count >= c:
                result.halted = True
                break
        else:
            result.answers.append(BELOW)
    return result


def nocut_kernel(
    values: Sequence[float],
    thresholds: np.ndarray,
    rho: float,
    nu: Optional[np.ndarray] = None,
) -> SVTResult:
    """Vectorized no-cutoff kernel (Alg. 5/6, GPTT); ``nu=None`` means no query noise."""
    arr = _as_values(values)
    noisy = arr + nu if nu is not None else arr + 0.0
    above = noisy >= thresholds + rho
    positives = np.nonzero(above)[0]
    return SVTResult(
        answers=[ABOVE if flag else BELOW for flag in above],
        positives=[int(i) for i in positives],
        processed=int(arr.size),
        halted=False,
        noisy_threshold_trace=[float(rho)],
    )


def nocut_kernel_stream(
    values: Sequence[float],
    thresholds: np.ndarray,
    rho: float,
    nu: Optional[np.ndarray] = None,
) -> SVTResult:
    """Query-at-a-time reference for :func:`nocut_kernel`."""
    arr = _as_values(values)
    result = SVTResult(noisy_threshold_trace=[float(rho)])
    for i in range(arr.size):
        noisy = arr[i] + (nu[i] if nu is not None else 0.0)
        result.processed += 1
        if noisy >= thresholds[i] + rho:
            result.answers.append(ABOVE)
            result.positives.append(i)
        else:
            result.answers.append(BELOW)
    return result
