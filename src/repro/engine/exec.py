"""Chunked and process-sharded execution of engine trial runs.

The engine's working set is a handful of ``(trials, n)`` blocks.  At the
paper's full AOL configuration (n ≈ 2.3M items × hundreds of trials) one
block is tens of gigabytes — far past any laptop — so this layer splits the
*trial* axis into chunks sized by a byte budget (:func:`~repro.engine.plans.
plan_trials`) and runs them either serially or sharded across a
``ProcessPoolExecutor`` (``parallel="process"``), the same scan-sharding
shape production query engines use for large scans.

Determinism is the design constraint: chunked must equal unchunked, and the
worker count must never leak into results.  Both follow from one rule —
entering this layer switches the run onto **per-trial derived streams**
(:func:`repro.rng.derive_rngs`; a caller-supplied list of per-trial
generators is used as-is).  Each chunk then consumes exactly its own trials'
streams, wherever and in whatever order it runs.  The one semantic shift:
``run_trials(rng=seed, max_bytes=...)`` uses the derived streams even when
everything fits in one chunk, so its results differ from the plain
shared-stream ``run_trials(rng=seed)`` — but never across chunk sizes or
backends.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine.plans import TrialPlan, plan_trials
from repro.exceptions import InvalidParameterError
from repro.rng import derive_rngs

__all__ = ["execute_trials", "merge_batches", "run_sharded"]

_BACKENDS = (None, "serial", "process")


def run_sharded(runner, payloads, parallel=None, workers=None) -> list:
    """Run *payloads* through *runner*, serially or on a process pool.

    The shared sharding backend: :func:`execute_trials` feeds it trial
    chunks and :func:`repro.experiments.runner.run_selection_experiment`
    feeds it figure cells.  ``runner`` and every payload must be picklable
    for ``parallel="process"``; results come back in payload order.
    """
    if parallel not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown parallel backend {parallel!r}; known: {sorted(str(b) for b in _BACKENDS)}"
        )
    if workers is not None and workers < 1:
        raise InvalidParameterError("workers must be >= 1")
    if parallel == "process" and len(payloads) > 1:
        max_workers = min(workers or os.cpu_count() or 1, len(payloads))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(runner, payloads))
    return [runner(p) for p in payloads]


def merge_batches(batches: Sequence) -> "TrialBatch":  # noqa: F821 (doc type)
    """Concatenate per-chunk :class:`~repro.engine.trials.TrialBatch` results.

    All chunks share (variant, epsilon, c, n) and differ only in their trial
    rows, so every per-trial array concatenates along axis 0.
    """
    from repro.engine.trials import TrialBatch

    if not batches:
        raise InvalidParameterError("no batches to merge")
    if len(batches) == 1:
        return batches[0]
    first = batches[0]

    def cat(name):
        parts = [getattr(b, name) for b in batches]
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts, axis=0)

    return TrialBatch(
        variant=first.variant,
        epsilon=first.epsilon,
        c=first.c,
        trials=sum(b.trials for b in batches),
        n=first.n,
        processed=cat("processed"),
        halted=cat("halted"),
        num_positives=cat("num_positives"),
        selection=cat("selection"),
        ser=cat("ser"),
        fnr=cat("fnr"),
        positives_mask=cat("positives_mask"),
        passes=cat("passes"),
        exhausted=cat("exhausted"),
    )


def _run_payload(payload: dict):
    """Top-level (picklable) chunk runner for the process backend."""
    from repro.engine.trials import run_trials

    return run_trials(**payload)


def execute_trials(
    variant: str,
    answers,
    epsilons,
    c: int,
    trials: int,
    *,
    rng=None,
    max_bytes: Optional[int] = None,
    parallel: Optional[str] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> Union["TrialBatch", Dict[float, "TrialBatch"]]:  # noqa: F821
    """Run a (possibly epsilon-grid) trial batch chunked and/or sharded.

    Called by :func:`repro.engine.trials.run_trials` when ``max_bytes`` or
    ``parallel`` is set; not usually invoked directly.  ``workers`` defaults
    to the CPU count (capped by the number of chunks).
    """
    if parallel not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown parallel backend {parallel!r}; known: {sorted(str(b) for b in _BACKENDS)}"
        )
    if workers is not None and workers < 1:
        raise InvalidParameterError("workers must be >= 1")
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    base = np.asarray(answers, dtype=float)
    if base.ndim != 1:
        raise InvalidParameterError("answers must be a 1-D sequence")

    if isinstance(rng, (list, tuple)):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        rngs = list(rng)
    else:
        # Chunk-invariance: derive one stream per trial up front, then hand
        # each chunk its slice.  (A shared stream would interleave draws
        # differently at every chunk boundary.)
        rngs = derive_rngs(rng, trials, "engine-exec")

    plan: TrialPlan = plan_trials(trials, base.size, max_bytes, variant=variant)
    payloads: List[dict] = [
        dict(
            variant=variant,
            answers=base,
            epsilons=epsilons,
            c=c,
            trials=stop - start,
            rng=rngs[start:stop],
            **kwargs,
        )
        for start, stop in plan.bounds()
    ]

    results = run_sharded(_run_payload, payloads, parallel=parallel, workers=workers)

    if isinstance(results[0], dict):
        return {
            eps: merge_batches([r[eps] for r in results]) for eps in results[0]
        }
    return merge_batches(results)
