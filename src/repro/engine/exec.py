"""Chunked, tiled, and process-sharded execution of engine trial runs.

The engine's working set is a handful of ``(trials, n)`` blocks.  At the
paper's full AOL configuration (n ≈ 2.3M items × hundreds of trials) one
block is tens of gigabytes — far past any laptop — so this layer splits the
*trial* axis into chunks sized by a byte budget (:func:`~repro.engine.plans.
plan_trials`) and runs them either serially or sharded across a
``ProcessPoolExecutor`` (``parallel="process"``), the same scan-sharding
shape production query engines use for large scans.  When even a single
full-width trial row exceeds the budget — or the caller passes ``chunk_n``
— the plan tiles the *query* axis too, and each chunk runs through
:mod:`repro.engine.tiled` over a lazy :class:`~repro.data.scores.ScoreSource`
(what workers receive is the source and the tile grid, never a materialized
score matrix).

Determinism is the design constraint: chunked must equal unchunked, tiled
must equal untiled, and the worker count must never leak into results.  All
follow from one rule — entering this layer switches the run onto
**per-trial derived streams** (:func:`repro.rng.derive_rngs`; a
caller-supplied list of per-trial generators is used as-is).  Each chunk
then consumes exactly its own trials' streams, wherever and in whatever
order it runs, and each stream is consumed tile by tile in query order —
bit-identical to one full-width draw.  The one semantic shift:
``run_trials(rng=seed, max_bytes=...)`` uses the derived streams even when
everything fits in one chunk, so its results differ from the plain
shared-stream ``run_trials(rng=seed)`` — but never across chunk sizes,
tile widths, or backends.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.scores import as_score_source, topc_stats
from repro.engine.plans import MemoryProbe, TrialPlan, plan_trials
from repro.exceptions import InvalidParameterError
from repro.rng import derive_rngs
from repro.variants._common import validate_inputs

__all__ = ["execute_trials", "merge_batches", "run_sharded"]

_BACKENDS = (None, "serial", "process")


def run_sharded(runner, payloads, parallel=None, workers=None) -> list:
    """Run *payloads* through *runner*, serially or on a process pool.

    The shared sharding backend: :func:`execute_trials` feeds it trial
    chunks and :func:`repro.experiments.runner.run_selection_experiment`
    feeds it figure cells.  ``runner`` and every payload must be picklable
    for ``parallel="process"``; results come back in payload order.
    """
    if parallel not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown parallel backend {parallel!r}; known: {sorted(str(b) for b in _BACKENDS)}"
        )
    if workers is not None and workers < 1:
        raise InvalidParameterError("workers must be >= 1")
    if parallel == "process" and len(payloads) > 1:
        max_workers = min(workers or os.cpu_count() or 1, len(payloads))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(runner, payloads))
    return [runner(p) for p in payloads]


def merge_batches(batches: Sequence) -> "TrialBatch":  # noqa: F821 (doc type)
    """Concatenate per-chunk :class:`~repro.engine.trials.TrialBatch` results.

    All chunks share (variant, epsilon, c, n) and differ only in their trial
    rows, so every per-trial array concatenates along axis 0.
    """
    from repro.engine.trials import TrialBatch

    if not batches:
        raise InvalidParameterError("no batches to merge")
    if len(batches) == 1:
        return batches[0]
    first = batches[0]

    def cat(name):
        parts = [getattr(b, name) for b in batches]
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts, axis=0)

    return TrialBatch(
        variant=first.variant,
        epsilon=first.epsilon,
        c=first.c,
        trials=sum(b.trials for b in batches),
        n=first.n,
        processed=cat("processed"),
        halted=cat("halted"),
        num_positives=cat("num_positives"),
        selection=cat("selection"),
        ser=cat("ser"),
        fnr=cat("fnr"),
        positives_mask=cat("positives_mask"),
        passes=cat("passes"),
        exhausted=cat("exhausted"),
    )


def _run_payload(payload: dict):
    """Top-level (picklable) chunk runner for the process backend."""
    from repro.engine.trials import run_trials

    return run_trials(**payload)


def _run_tiled_payload(payload: dict):
    """Top-level (picklable) tiled-chunk runner for the process backend."""
    from repro.engine.tiled import run_tiled_chunk

    return run_tiled_chunk(**payload)


def execute_trials(
    variant: str,
    answers,
    epsilons,
    c: int,
    trials: int,
    *,
    rng=None,
    max_bytes: Union[int, str, None] = None,
    parallel: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_n: Optional[int] = None,
    memory_probe: Optional[MemoryProbe] = None,
    **kwargs,
) -> Union["TrialBatch", Dict[float, "TrialBatch"]]:  # noqa: F821
    """Run a (possibly epsilon-grid) trial batch chunked, tiled, and/or sharded.

    Called by :func:`repro.engine.trials.run_trials` when ``max_bytes``,
    ``parallel``, ``chunk_n``, or a lazy score source is in play; not
    usually invoked directly.  ``workers`` defaults to the CPU count
    (capped by the number of chunks).

    ``max_bytes="auto"`` on the serial backends **re-plans between
    chunks**: each chunk's trial count (and, in the tiled regime, its tile
    width) is sized from a fresh *memory_probe* read — default
    :func:`~repro.engine.plans.available_memory_bytes`; pass a
    :meth:`~repro.service.runtime.metrics.RssSampler.memory_probe` to make
    the feedback visible in the runtime's metrics — so a run that starts
    with lots of headroom shrinks its working set when the machine tightens
    mid-flight instead of honoring a stale planning-time sample.  Results
    are invariant to the re-planning because chunk and tile boundaries
    never change results (per-trial derived streams, tile-folded kernels);
    ``parallel="process"`` plans once up front, since its chunks must all
    exist before the pool maps them.
    """
    if parallel not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown parallel backend {parallel!r}; known: {sorted(str(b) for b in _BACKENDS)}"
        )
    if workers is not None and workers < 1:
        raise InvalidParameterError("workers must be >= 1")
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    source = as_score_source(answers)

    if isinstance(rng, (list, tuple)):
        if len(rng) != trials:
            raise InvalidParameterError(
                f"got {len(rng)} per-trial generators for {trials} trials"
            )
        rngs = list(rng)
    else:
        # Chunk-invariance: derive one stream per trial up front, then hand
        # each chunk its slice.  (A shared stream would interleave draws
        # differently at every chunk boundary.)
        rngs = derive_rngs(rng, trials, "engine-exec")

    # The (trials, n) positives mask is sized by the TOTAL trial count, not
    # one chunk's: per-chunk masks merge into a full-height mask, which must
    # not outgrow the budget the chunking exists to enforce.
    from repro.engine.tiled import MASK_MATERIALIZE_LIMIT

    keep_mask = trials * source.n <= MASK_MATERIALIZE_LIMIT

    # Lazy one-time preparations shared by the chunk builders: dense chunks
    # want the materialized scores; tiled chunks want validated epsilons and
    # the streaming top-c stats.
    prepared: dict = {}

    def dense_payload(start: int, stop: int) -> dict:
        if "base" not in prepared:
            prepared["base"] = source.to_array()
        return dict(
            variant=variant,
            answers=prepared["base"],
            epsilons=epsilons,
            c=c,
            trials=stop - start,
            rng=rngs[start:stop],
            **kwargs,
        )

    def tiled_payload(start: int, stop: int, tiles) -> dict:
        if kwargs.get("shuffle"):
            raise InvalidParameterError(
                "tiled (chunk_n) execution does not support shuffle=True: a "
                "per-trial permutation is itself a dense (trials, n) object"
            )
        if "topc" not in prepared:
            sensitivity = kwargs.get("sensitivity", 1.0)
            eps_list = [epsilons] if np.isscalar(epsilons) else list(epsilons)
            for eps in eps_list:
                validate_inputs(float(eps), sensitivity, c)
            prepared["topc"] = (
                topc_stats(source, c) if kwargs.get("compute_metrics", True) else None
            )
        return dict(
            key=variant,
            source=source,
            epsilons=epsilons,
            c=c,
            trials=stop - start,
            rngs=rngs[start:stop],
            tiles=tiles,
            thresholds=kwargs.get("thresholds", 0.0),
            sensitivity=kwargs.get("sensitivity", 1.0),
            monotonic=kwargs.get("monotonic", False),
            ratio=kwargs.get("ratio"),
            threshold_bump_d=kwargs.get("threshold_bump_d", 0.0),
            max_passes=kwargs.get("max_passes", 100),
            compute_metrics=kwargs.get("compute_metrics", True),
            share_noise=kwargs.get("share_noise", True),
            topc=prepared["topc"],
            keep_positives_mask=keep_mask,
        )

    def strip_mask(result) -> None:
        # Per-chunk dense masks are transient (1/48th of the chunk working
        # set); the full-height concatenation is what breaks the cap.
        if not keep_mask:
            for batch in result.values() if isinstance(result, dict) else [result]:
                batch.positives_mask = None

    live_replan = max_bytes == "auto" and parallel != "process"
    if live_replan:
        # Serial backends re-plan the REMAINING trials before every chunk
        # with a fresh memory read: the budget — hence the chunk height and
        # tile width — tracks live headroom.  Chunk/tile boundaries never
        # change results (per-trial streams, tile-folded kernels), so this
        # is a pure execution-shape decision.
        results: List = []
        start = 0
        while start < trials:
            plan = plan_trials(
                trials - start, source.n, "auto", variant=variant,
                chunk_n=chunk_n, memory_probe=memory_probe,
            )
            stop = min(start + plan.chunk_trials, trials)
            if plan.chunk_n is None:
                result = _run_payload(dense_payload(start, stop))
                strip_mask(result)
            else:
                result = _run_tiled_payload(
                    tiled_payload(start, stop, plan.tile_bounds())
                )
            results.append(result)
            start = stop
    else:
        plan: TrialPlan = plan_trials(
            trials, source.n, max_bytes, variant=variant, chunk_n=chunk_n,
            memory_probe=memory_probe,
        )
        if plan.chunk_n is None:
            # One-axis plan: each chunk runs the classic dense cell (small
            # sources materialize once; the working set stays budgeted).
            payloads: List[dict] = [
                dense_payload(start, stop) for start, stop in plan.bounds()
            ]
            results = run_sharded(
                _run_payload, payloads, parallel=parallel, workers=workers
            )
            for result in results:
                strip_mask(result)
        else:
            # Two-axis plan: ship the lazy source plus the tile grid to each
            # chunk; nothing (trials, n)-shaped is ever materialized.
            tiles = plan.tile_bounds()
            payloads = [
                tiled_payload(start, stop, tiles) for start, stop in plan.bounds()
            ]
            results = run_sharded(
                _run_tiled_payload, payloads, parallel=parallel, workers=workers
            )

    if isinstance(results[0], dict):
        return {
            eps: merge_batches([r[eps] for r in results]) for eps in results[0]
        }
    return merge_batches(results)
