"""Row-per-session gate execution: the service's engine entry point.

The multi-tenant service (:mod:`repro.service`) answers many interactive
sessions at once.  Each session runs the corrected Section-3.4 online gate —
``r_i + nu >= T + rho`` on the error of a derived answer, Laplace release on
⊤ — and sessions differ in everything: epsilon split, threshold, firing
budget, even their already-drawn threshold noise rho.  The service therefore
needs a *heterogeneous* block primitive: one row per (session, query), with
per-row thresholds, rho, and noise scales, so a whole cross-session batch
becomes one vectorized compare instead of N Python-level ``answer()`` calls.

:func:`gate_block` is that primitive.  Like the rest of the engine it keeps
sampling and logic in one auditable place and supports the two stream modes
of :mod:`repro.engine.noise`:

* a single shared ``Generator`` — one block draw for the query noise and one
  for the release noise (the throughput path; heterogeneous scales are
  handled by rescaling unit draws, the same linearity the epsilon-grid path
  relies on);
* a list of per-row ``Generator`` objects — row i draws its nu (and, only
  when it fires, its release noise) from its own stream, in exactly the
  order a per-session streaming loop would.  Because each session appears at
  most once per block, committing blocks in round order reproduces every
  per-session stream draw for draw — the bit-identity contract the service's
  ``per-session`` mode is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.noise import TrialRngs, laplace_vector
from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["GateBlock", "gate_block", "GateGrid", "gate_grid", "GATE_FAULTS"]

#: Injectable gate faults, for the empirical privacy auditor only.
#: ``"rho-reuse"`` models the stale-noise-buffer bug class (the Alg.-4 /
#: GPTT mistake): the session's threshold-noise draw rho is reused as the
#: per-query noise nu, so the comparison collapses to the *noiseless*
#: ``error >= T`` — every query outcome leaks the data exactly.  The fault
#: skips the nu draw entirely (a buggy implementation that never samples
#: fresh noise would not advance the stream either).
GATE_FAULTS = frozenset({"rho-reuse"})


def _check_fault(fault) -> None:
    if fault is not None and fault not in GATE_FAULTS:
        raise InvalidParameterError(
            f"unknown gate fault {fault!r}; known: {sorted(GATE_FAULTS)}"
        )


@dataclass(frozen=True)
class GateBlock:
    """Outcome of one heterogeneous gate block.

    ``above[i]`` says whether row i's gate fired; ``released[i]`` holds the
    noisy database answer for fired rows and NaN elsewhere (a below row
    releases nothing — its session serves the derived estimate, which never
    touches this kernel).
    """

    above: np.ndarray
    nu: np.ndarray
    released: np.ndarray

    @property
    def rows(self) -> int:
        return int(self.above.size)


def _as_row_vector(value, rows: int, name: str) -> np.ndarray:
    out = np.broadcast_to(np.asarray(value, dtype=float), (rows,))
    if not np.all(np.isfinite(out)):
        raise InvalidParameterError(f"{name} must be finite")
    return out


def gate_block(
    errors,
    thresholds,
    rho,
    nu_scales,
    answer_scales,
    truths,
    rng: TrialRngs = None,
    fault: str = None,
) -> GateBlock:
    """Answer one row-per-session block of corrected online-SVT gates.

    Parameters
    ----------
    errors:
        Per-row gate queries ``r_i = |q~ - q(D)|`` (already evaluated — the
        kernel never sees raw data, only numbers, like the rest of the
        engine).
    thresholds / rho / nu_scales / answer_scales:
        Per-row gate parameters; scalars broadcast.  ``rho`` is each row's
        session threshold noise, drawn once at session open, *not* here.
    truths:
        Per-row true answers ``q(D)``, released with ``Lap(answer_scales)``
        noise where the gate fires.
    rng:
        A shared seed/Generator (one block draw, unit noise rescaled per
        row) or one Generator per row (bit-compatible with a per-session
        streaming loop: nu then — only on ⊤ — the release draw).
    fault:
        One of :data:`GATE_FAULTS` (None = healthy).  Test-only knob for the
        privacy auditor; never set in production paths.
    """
    _check_fault(fault)
    errors = np.asarray(errors, dtype=float)
    if errors.ndim != 1:
        raise InvalidParameterError("errors must be a 1-D row-per-session vector")
    rows = errors.size
    if rows == 0:
        empty = np.empty(0)
        return GateBlock(above=np.empty(0, dtype=bool), nu=empty, released=empty)
    if isinstance(rng, (list, tuple)):
        if len(rng) != rows:
            raise InvalidParameterError(
                f"got {len(rng)} per-row generators for {rows} rows"
            )
    else:
        # Coerce once: the nu and release draws below must continue ONE
        # stream (a raw seed handed to each sampler would replay one bit
        # stream, correlating noises that must be independent).
        rng = ensure_rng(rng)
    thr = _as_row_vector(thresholds, rows, "thresholds")
    rho = _as_row_vector(rho, rows, "rho")
    nu_scales = _as_row_vector(nu_scales, rows, "nu_scales")
    answer_scales = _as_row_vector(answer_scales, rows, "answer_scales")
    truths = np.broadcast_to(np.asarray(truths, dtype=float), (rows,))
    if np.any(nu_scales <= 0.0) or np.any(answer_scales <= 0.0):
        raise InvalidParameterError("noise scales must be > 0")

    if fault == "rho-reuse":
        nu = rho.copy()
    else:
        nu = laplace_vector(rng, nu_scales, rows)
    above = errors + nu >= thr + rho

    released = np.full(rows, np.nan)
    fired = np.nonzero(above)[0]
    if fired.size:
        if isinstance(rng, (list, tuple)):
            release_noise = laplace_vector(
                [rng[i] for i in fired], answer_scales[fired], fired.size
            )
        else:
            release_noise = laplace_vector(rng, answer_scales[fired], fired.size)
        released[fired] = truths[fired] + release_noise
    return GateBlock(above=above, nu=nu, released=released)


@dataclass(frozen=True)
class GateGrid:
    """Outcome of one query gated across many budget lanes.

    ``above[l]`` / ``released[l]`` follow :class:`GateBlock` semantics, one
    entry per lane.  ``nu`` holds the realized per-lane query noise; in
    shared mode every entry is the *same unit draw* rescaled
    (``nu[l] / nu_scales[l]`` is constant across lanes), which is what the
    shared-noise tests pin.
    """

    above: np.ndarray
    nu: np.ndarray
    released: np.ndarray

    @property
    def lanes(self) -> int:
        return int(self.above.size)


def gate_grid(
    errors,
    thresholds,
    rho,
    nu_scales,
    answer_scales,
    truths,
    rng: TrialRngs = None,
    fault: str = None,
) -> GateGrid:
    """Gate ONE query across a grid of budget lanes — the epsilon-grid
    analog of :func:`gate_block`.

    A multi-budget tenant holds several ``(epsilon, T, c)`` lanes over the
    same data.  Asking a query "under every lane at once" is exactly the
    engine's epsilon-grid problem: the same comparison under many noise
    scales.  The two stream modes mirror :func:`repro.engine.trials.run_trials`'s
    ``share_noise`` split:

    * a single shared ``Generator`` — ONE unit Laplace draw is rescaled per
      lane for the query noise, and (only if any lane fires) ONE unit draw
      is rescaled per firing lane for the release noise.  Lane outcomes are
      correlated but each lane's marginal distribution is exact (Laplace is
      closed under scaling), the same argument the trial engine's
      ``share_noise=True`` grid makes per epsilon cell;
    * a list of per-lane ``Generator`` objects — lane l draws its nu and
      (only on ⊤) its release noise from its own stream, in exactly the
      order an independent session's streaming ``answer()`` would.  This is
      the **bit-identity** mode: a multi-budget session in ``per-lane`` mode
      must serve the very bits that separate single-budget sessions would
      (enforced in ``tests/service/test_lanes.py``).

    Parameters are per-lane vectors (scalars broadcast); *errors* may differ
    per lane because each lane keeps its own released history, hence its own
    derived estimate.  *truths* is normally one scalar — the same query hits
    the same database — but broadcasts per lane for generality.
    """
    _check_fault(fault)
    errors = np.atleast_1d(np.asarray(errors, dtype=float))
    if errors.ndim != 1:
        raise InvalidParameterError("errors must be a 1-D per-lane vector")
    lanes = errors.size
    if lanes == 0:
        empty = np.empty(0)
        return GateGrid(above=np.empty(0, dtype=bool), nu=empty, released=empty)
    per_lane = isinstance(rng, (list, tuple))
    if per_lane:
        if len(rng) != lanes:
            raise InvalidParameterError(
                f"got {len(rng)} per-lane generators for {lanes} lanes"
            )
    else:
        rng = ensure_rng(rng)
    thr = _as_row_vector(thresholds, lanes, "thresholds")
    rho = _as_row_vector(rho, lanes, "rho")
    nu_scales = _as_row_vector(nu_scales, lanes, "nu_scales")
    answer_scales = _as_row_vector(answer_scales, lanes, "answer_scales")
    truths = np.broadcast_to(np.asarray(truths, dtype=float), (lanes,))
    if np.any(nu_scales <= 0.0) or np.any(answer_scales <= 0.0):
        raise InvalidParameterError("noise scales must be > 0")

    released = np.full(lanes, np.nan)
    if per_lane:
        # Streaming draw order per lane: nu, then — only on ⊤ — the release.
        nu = np.empty(lanes)
        above = np.empty(lanes, dtype=bool)
        for index in range(lanes):
            gen = ensure_rng(rng[index])
            if fault == "rho-reuse":
                nu[index] = rho[index]
            else:
                nu[index] = gen.laplace(scale=nu_scales[index])
            above[index] = errors[index] + nu[index] >= thr[index] + rho[index]
            if above[index]:
                released[index] = truths[index] + gen.laplace(
                    scale=answer_scales[index]
                )
        return GateGrid(above=above, nu=nu, released=released)

    # Shared mode: one unit draw per role, rescaled per lane.
    if fault == "rho-reuse":
        nu = rho.copy()
    else:
        unit_nu = float(rng.laplace(scale=1.0))
        nu = unit_nu * nu_scales
    above = errors + nu >= thr + rho
    fired = np.nonzero(above)[0]
    if fired.size:
        unit_release = float(rng.laplace(scale=1.0))
        released[fired] = truths[fired] + unit_release * answer_scales[fired]
    return GateGrid(above=above, nu=nu, released=released)
