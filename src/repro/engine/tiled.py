"""Two-axis tiled execution: every variant over a lazy score axis.

The classic engine materializes a handful of ``(trials, n)`` blocks; at the
paper's full AOL configuration (n ≈ 2.3M) even a single trial's row is
hundreds of megabytes, so :func:`repro.engine.plans.plan_trials` can tile
the query axis too.  This module runs one trial chunk over that tile grid:
scores come from a :class:`~repro.data.scores.ScoreSource` one
``block(lo, hi)`` at a time, noise comes from the per-trial streams one tile
at a time, and each kernel *folds* its running state (firing counts, halt
positions, top-c heaps, SER/FNR inputs) across the n-tiles instead of
holding the full row.

**Bit-identity is the contract, not an aspiration.**  A NumPy block draw
consumes the bit stream exactly like the equivalent sequence of smaller
draws, so drawing a trial's query noise tile by tile (in query order, from
the same per-trial stream) reproduces the dense engine's one full-width
draw bit for bit.  The two places that must *revisit* noise — Alg. 2's
segmented rescans (later rounds re-read the query noise under a refreshed
threshold) and shared-unit epsilon grids (every grid point re-reads the same
unit block) — re-derive their tiles from bit-generator state checkpoints
(:class:`~repro.engine.noise.TrialStreams`) rather than storing them, the
same re-derivation trick that makes the per-trial streams chunk-invariant.
Consequently, for every registry variant and every ``(chunk_trials,
chunk_n)`` grid, the tiled result equals the dense per-trial-stream result
exactly: same selections, same ``processed``/``passes``/``examined``
accounting, same SER/FNR — enforced across all variants by
``tests/engine/test_engine_tiled.py``.

What the fold keeps per trial is O(c): the selection so far, a firing
count, a halt position.  What it streams is O(chunk_trials × chunk_n): one
score tile, one noise tile, one comparison tile.  Nothing is ever
materialized at (trials, n) — except the optional ``positives_mask``, which
is only built when ``trials * n`` is small enough to afford it (the
no-cutoff variants' mask is genuinely dense information).

Shuffled query order is not supported here: a per-trial permutation of a
2.3M-item universe is itself a dense (trials, n) object.  Tiled runs raise
on ``shuffle=True``; the paper-protocol experiment harness keeps its dense
shuffle path (bounded by its own ``max_bytes`` trial chunking).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.base import normalize_thresholds
from repro.data.scores import ScoreSource, topc_stats
from repro.engine.noise import TrialStreams
from repro.engine.plans import noise_plan
from repro.exceptions import InvalidParameterError
from repro.metrics.utility import metrics_from_topc

__all__ = ["run_tiled_chunk", "MASK_MATERIALIZE_LIMIT"]

#: Build the (trials, n) positives mask only below this many cells (16M cells
#: = 16 MB of bool); above it the mask stays None and callers use
#: ``selection`` / ``num_positives`` instead.
MASK_MATERIALIZE_LIMIT = 1 << 24

_SINGLE_PASS = ("alg1", "alg3", "alg4", "alg5", "alg6", "gptt")


class _ThresholdView:
    """Tile-sliced thresholds without materializing the scalar broadcast."""

    def __init__(self, thresholds, n: int) -> None:
        arr = np.asarray(thresholds, dtype=float)
        if arr.ndim == 0:
            self._scalar: Optional[float] = float(arr)
            self._arr: Optional[np.ndarray] = None
        else:
            self._scalar = None
            self._arr = normalize_thresholds(thresholds, n)

    def __call__(self, lo: int, hi: int) -> np.ndarray:
        if self._arr is None:
            return np.full(hi - lo, self._scalar)
        return self._arr[lo:hi]


def _svt_scales(
    allocation: BudgetAllocation, c: int, delta: float, monotonic: bool
) -> Tuple[float, float]:
    """(rho_scale, nu_scale) of Alg. 7 under one allocation (engine-shared)."""
    factor = c if monotonic else 2 * c
    return delta / allocation.eps1, factor * delta / allocation.eps2


class _UnitTiles:
    """The shared unit noise of one epsilon grid, as replayable checkpoints.

    ``rho`` is the pre-drawn ``(trials,)`` unit threshold noise; ``states``
    holds each tile's per-trial bit-generator states at the moment the unit
    tile was drawn (None for variants without query noise).  ``kind`` is the
    tile distribution ("laplace"/"gumbel").
    """

    __slots__ = ("rho", "states", "kind")

    def __init__(self, rho, states, kind: str) -> None:
        self.rho = rho
        self.states = states
        self.kind = kind


def _draw_unit_tiles(
    key: str, streams: TrialStreams, tiles: Sequence[Tuple[int, int]]
) -> Optional[_UnitTiles]:
    """Consume one grid's unit noise from the live streams, keeping only
    checkpoints (tiles are re-derived per grid point, never stored).

    Draw order per trial matches the dense ``_draw_units`` exactly: the unit
    rho first, then the unit query-noise block (as its tile sequence).
    Returns None for retraversal, whose per-pass draws are data-dependent.
    """
    if key == "retraversal":
        return None
    if key == "em":
        states = []
        for lo, hi in tiles:
            states.append(streams.checkpoint())
            streams.gumbel_tile(hi - lo)
        return _UnitTiles(rho=None, states=states, kind="gumbel")
    rho = streams.rho(1.0)
    if key == "alg5":
        return _UnitTiles(rho=rho, states=None, kind="laplace")
    states = []
    for lo, hi in tiles:
        states.append(streams.checkpoint())
        streams.laplace_tile(1.0, hi - lo)
    return _UnitTiles(rho=rho, states=states, kind="laplace")


def _unit_replay_iter(streams, states, tiles, kind: str, mult: float):
    """Re-derive the unit tiles in scan order, scaled, via replay streams."""
    rep = streams.replayers(states[0])
    for lo, hi in tiles:
        if kind == "gumbel":
            yield rep.gumbel_tile(hi - lo)
        else:
            yield rep.laplace_tile(1.0, hi - lo) * mult


def _live_iter(streams, tiles, kind: str, scale: float = 1.0):
    """Draw the tiles fresh from the live streams, in scan order."""
    for lo, hi in tiles:
        if kind == "gumbel":
            yield streams.gumbel_tile(hi - lo)
        else:
            yield streams.laplace_tile(scale, hi - lo)


def _scatter_selection(selection: np.ndarray, trials: int, n: int) -> np.ndarray:
    mask = np.zeros((trials, n), dtype=bool)
    rows, cols = np.nonzero(selection >= 0)
    mask[rows, selection[rows, cols]] = True
    return mask


# ---------------------------------------------------------------------------
# Single-pass fold: Alg. 1/3/4 (cutoff) and Alg. 5/6/GPTT (no cutoff).
# ---------------------------------------------------------------------------


def _fold_single_pass(
    source: ScoreSource,
    thrv: _ThresholdView,
    tiles: Sequence[Tuple[int, int]],
    rho: np.ndarray,
    nu_iter,
    c: int,
    cutoff: bool,
    mask_out: Optional[np.ndarray],
):
    """One vectorized scan over the tile grid, folding counts and selections.

    ``nu_iter`` yields one scaled ``(trials, width)`` query-noise tile per
    grid tile (or is None for the noise-free Alg. 5).  Exactly reproduces
    ``cut_matrix`` + ``selection_matrix`` over the implied dense comparison
    matrix.
    """
    trials = rho.size
    n = source.n
    count = np.zeros(trials, dtype=np.int64)
    halted = np.zeros(trials, dtype=bool)
    processed = np.full(trials, n, dtype=np.int64)
    selection = np.full((trials, c), -1, dtype=np.int64)

    for k, (lo, hi) in enumerate(tiles):
        w = hi - lo
        nu = None if nu_iter is None else next(nu_iter)
        if w == 0:
            continue
        v = source.block(lo, hi)
        t = thrv(lo, hi)
        if nu is None:
            cmp = v[None, :] >= t[None, :] + rho[:, None]
        else:
            cmp = v[None, :] + nu >= t[None, :] + rho[:, None]
        cols = np.arange(w)
        if cutoff:
            act = ~halted
            cum = np.cumsum(cmp, axis=1) + count[:, None]
            hit = (cum == c) & cmp
            has = hit.any(axis=1)
            first = np.argmax(hit, axis=1)
            newly = act & has
            stop = np.where(has, first, w - 1)
            sel_mask = cmp & (cum <= c) & act[:, None]
            sel_mask &= cols[None, :] <= stop[:, None]
            rows, cc = np.nonzero(sel_mask)
            selection[rows, cum[rows, cc] - 1] = lo + cc
            if mask_out is not None:
                mask_out[:, lo:hi] = sel_mask
            processed[newly] = lo + first[newly] + 1
            count[act] = np.where(newly[act], c, cum[act, -1])
            halted |= newly
        else:
            cum = np.cumsum(cmp, axis=1) + count[:, None]
            sel_mask = cmp & (cum <= c)
            rows, cc = np.nonzero(sel_mask)
            selection[rows, cum[rows, cc] - 1] = lo + cc
            if mask_out is not None:
                mask_out[:, lo:hi] = cmp
            count = cum[:, -1]
    if not cutoff:
        halted[:] = False
        processed[:] = n
    return selection, processed, halted, count


# ---------------------------------------------------------------------------
# Alg. 2: segmented rescans over the tile grid with checkpoint replay.
# ---------------------------------------------------------------------------


def _tile_index(tiles: Sequence[Tuple[int, int]], pos: int) -> int:
    """Index of the tile containing query position *pos*."""
    for k, (lo, hi) in enumerate(tiles):
        if lo <= pos < hi:
            return k
    raise InvalidParameterError(f"position {pos} outside the tile grid")


def _fold_dpbook(
    source: ScoreSource,
    thrv: _ThresholdView,
    tiles: Sequence[Tuple[int, int]],
    streams: TrialStreams,
    rho0: np.ndarray,
    nu_scale: float,
    refresh_scale: float,
    c: int,
    unit_states: Optional[list],
):
    """Alg. 2 over the tile grid: rounds of first-hit scans, replayed tiles.

    Round 1 sweeps every tile; with ``unit_states=None`` the query noise is
    drawn live (advancing the streams through exactly n draws per trial,
    the dense draw order) while each tile's pre-draw states are recorded.
    Later rounds re-derive only the tiles at/after each still-active trial's
    scan position from those checkpoints — replay generators, so the live
    streams stay exactly where the dense path leaves them: right before the
    data-dependent refresh draws, which are taken live in event order.
    """
    trials = len(streams)
    n = source.n
    rho = rho0.copy()
    count = np.zeros(trials, dtype=np.int64)
    selection = np.full((trials, c), -1, dtype=np.int64)
    processed = np.full(trials, n, dtype=np.int64)
    halted = np.zeros(trials, dtype=bool)
    start = np.zeros(trials, dtype=np.int64)
    active = np.ones(trials, dtype=bool) if n else np.zeros(trials, dtype=bool)

    live_round1 = unit_states is None
    tile_states: List[list] = [] if live_round1 else list(unit_states)
    draw_scale = nu_scale if live_round1 else 1.0
    mult = 1.0 if live_round1 else nu_scale

    # Round 1: one sweep, all trials, initial rho.
    hit_pos = np.full(trials, -1, dtype=np.int64)
    if live_round1:
        nu_src = None
    else:
        rep = streams.replayers(tile_states[0]) if tiles else None
    for k, (lo, hi) in enumerate(tiles):
        w = hi - lo
        if live_round1:
            tile_states.append(streams.checkpoint())
            nu = streams.laplace_tile(nu_scale, w)
        else:
            nu = rep.laplace_tile(1.0, w) * nu_scale
        if w == 0:
            continue
        need = active & (hit_pos < 0)
        if not need.any():
            if live_round1:
                continue  # streams must still advance; replay may stop early
            break
        v = source.block(lo, hi)
        t = thrv(lo, hi)
        above = v[None, :] + nu >= t[None, :] + rho[:, None]
        has = above.any(axis=1)
        first = np.argmax(above, axis=1)
        newly = need & has
        hit_pos[newly] = lo + first[newly]

    while True:
        # Commit this round's hits: selection, counts, refreshes (live).
        hit_trials = np.nonzero(active & (hit_pos >= 0))[0]
        miss_trials = np.nonzero(active & (hit_pos < 0))[0]
        active[miss_trials] = False  # no further hit under the current rho
        for t_idx in hit_trials:
            pos = int(hit_pos[t_idx])
            selection[t_idx, count[t_idx]] = pos
            count[t_idx] += 1
            if count[t_idx] >= c:
                processed[t_idx] = pos + 1
                halted[t_idx] = True
                active[t_idx] = False
            else:
                rho[t_idx] = float(
                    streams.gens[t_idx].laplace(scale=refresh_scale)
                )
                start[t_idx] = pos + 1
                if start[t_idx] >= n:
                    active[t_idx] = False
        if not active.any():
            break
        # Next round: per-trial replay from the tile containing its start.
        hit_pos[:] = -1
        for t_idx in np.nonzero(active)[0]:
            k0 = _tile_index(tiles, int(start[t_idx]))
            gen = streams.replayer(t_idx, tile_states[k0][t_idx])
            for k in range(k0, len(tiles)):
                lo, hi = tiles[k]
                w = hi - lo
                nu_row = gen.laplace(scale=draw_scale, size=w) * mult
                v = source.block(lo, hi)
                t = thrv(lo, hi)
                above = v + nu_row >= t + rho[t_idx]
                if k == k0 and start[t_idx] > lo:
                    above[: start[t_idx] - lo] = False
                hits = np.nonzero(above)[0]
                if hits.size:
                    hit_pos[t_idx] = lo + int(hits[0])
                    break
    return selection, processed, halted, count


# ---------------------------------------------------------------------------
# EM: running top-c merge over the tile grid.
# ---------------------------------------------------------------------------


def _fold_em(
    source: ScoreSource,
    tiles: Sequence[Tuple[int, int]],
    gumbel_iter,
    epsilon: float,
    c: int,
    delta: float,
    monotonic: bool,
    trials: int,
):
    """c-round EM selections via a streaming row-wise top-c merge.

    Keys are ``logits + gumbel`` exactly as the dense kernel computes them;
    the per-tile merge keeps each trial's c best ``(key, index)`` pairs in
    key-descending order (stable, so ties resolve to the lower index — the
    dense stable-argsort order).
    """
    from repro.mechanisms.exponential import _validate_eps, _validate_sensitivity

    n = source.n
    if n == 0:
        raise InvalidParameterError("values must be a non-empty (trials, n) matrix")
    c_eff = int(min(c, n))
    sensitivity = _validate_sensitivity(delta)
    per_round = _validate_eps(epsilon) / c_eff
    denom = sensitivity if monotonic else 2.0 * sensitivity
    scale = per_round / denom

    best_keys = np.empty((trials, 0), dtype=float)
    best_idx = np.empty((trials, 0), dtype=np.int64)
    for lo, hi in tiles:
        w = hi - lo
        gumbel = next(gumbel_iter)
        if w == 0:
            continue
        v = source.block(lo, hi)
        keys = scale * v[None, :] + gumbel
        idx = np.broadcast_to(np.arange(lo, hi, dtype=np.int64), (trials, w))
        all_keys = np.concatenate([best_keys, keys], axis=1)
        all_idx = np.concatenate([best_idx, idx], axis=1)
        order = np.argsort(-all_keys, axis=1, kind="stable")[:, :c_eff]
        best_keys = np.take_along_axis(all_keys, order, axis=1)
        best_idx = np.take_along_axis(all_idx, order, axis=1)
    return best_idx


# ---------------------------------------------------------------------------
# Retraversal: literal multi-pass rescans, tiles iterated per pass.
# ---------------------------------------------------------------------------


def _fold_retraversal(
    source: ScoreSource,
    thrv: _ThresholdView,
    tiles: Sequence[Tuple[int, int]],
    streams: TrialStreams,
    allocation: BudgetAllocation,
    c: int,
    delta: float,
    monotonic: bool,
    threshold_bump_d: float,
    max_passes: int,
):
    """SVT-ReTr with the n axis tiled inside each pass.

    Per pass and per tile, each still-active trial draws fresh Laplace noise
    for its *available* (not yet selected) positions in that tile — the
    sequence of per-tile draws concatenates to exactly the one
    available-width block the dense literal path draws per pass, so
    selection order, ``passes``, and ``examined`` match it bit for bit.
    Availability is reconstructed from the O(c) selected-position sets, not
    a (trials, n) mask.
    """
    from repro.engine.retraversal import _validate_retraversal

    _validate_retraversal(c, delta, threshold_bump_d, max_passes)
    trials = len(streams)
    n = source.n
    c_eff = int(min(c, n)) if n else int(c)
    factor = c_eff if monotonic else 2 * c_eff
    query_scale = factor * delta / allocation.eps2
    bump = threshold_bump_d * math.sqrt(2.0) * query_scale
    rho = streams.rho(delta / allocation.eps1)

    selection = np.full((trials, max(c_eff, 1)), -1, dtype=np.int64)
    count = np.zeros(trials, dtype=np.int64)
    passes = np.zeros(trials, dtype=np.int64)
    examined = np.zeros(trials, dtype=np.int64)
    picked_positions: List[List[int]] = [[] for _ in range(trials)]
    active = (
        np.ones(trials, dtype=bool)
        if n and c_eff > 0
        else np.zeros(trials, dtype=bool)
    )

    while active.any():
        idx = np.nonzero(active)[0]
        stopped = np.zeros(trials, dtype=bool)
        new_picks: List[List[int]] = [[] for _ in range(trials)]
        for lo, hi in tiles:
            w = hi - lo
            if w == 0:
                continue
            v = source.block(lo, hi)
            t = thrv(lo, hi)
            avail = np.ones((idx.size, w), dtype=bool)
            nu = np.zeros((idx.size, w), dtype=float)
            for row, t_idx in enumerate(idx):
                for p in picked_positions[t_idx]:
                    if lo <= p < hi:
                        avail[row, p - lo] = False
                m = int(avail[row].sum())
                if m:
                    # Drawn even for trials already stopped this pass: the
                    # dense path samples the whole pass's block up front.
                    nu[row, avail[row]] = streams.gens[t_idx].laplace(
                        scale=query_scale, size=m
                    )
            above = avail & (v[None, :] + nu >= t[None, :] + bump + rho[idx, None])
            cum = np.cumsum(above, axis=1)
            for row, t_idx in enumerate(idx):
                if stopped[t_idx]:
                    continue
                need = c_eff - count[t_idx] - len(new_picks[t_idx])
                row_above = above[row]
                row_cum = cum[row]
                hit_cols = np.nonzero(row_above & (row_cum == need))[0]
                if hit_cols.size:
                    stop_col = int(hit_cols[0])
                    stopped[t_idx] = True
                else:
                    stop_col = w - 1
                examined[t_idx] += int(avail[row, : stop_col + 1].sum())
                pick_cols = np.nonzero(row_above[: stop_col + 1])[0]
                new_picks[t_idx].extend(lo + int(p) for p in pick_cols)
        for t_idx in idx:
            for p in new_picks[t_idx]:
                selection[t_idx, count[t_idx]] = p
                count[t_idx] += 1
                picked_positions[t_idx].append(p)
            passes[t_idx] += 1
            active[t_idx] = (
                count[t_idx] < c_eff
                and passes[t_idx] < max_passes
                and count[t_idx] < n
            )
    return selection, passes, examined, count < c_eff, count, c_eff


# ---------------------------------------------------------------------------
# Cell assembly and the chunk entry point.
# ---------------------------------------------------------------------------


def _assemble(
    key: str,
    epsilon: float,
    c: int,
    trials: int,
    n: int,
    selection: np.ndarray,
    processed: np.ndarray,
    halted: np.ndarray,
    num_positives: np.ndarray,
    source: ScoreSource,
    topc: Optional[Tuple[float, float, int]],
    compute_metrics: bool,
    mask: Optional[np.ndarray],
    keep_mask: bool,
    passes: Optional[np.ndarray] = None,
    exhausted: Optional[np.ndarray] = None,
):
    from repro.engine.trials import TrialBatch

    if compute_metrics:
        if topc is None:
            topc = topc_stats(source, c)
        top_sum, boundary, slots_above = topc
        valid = selection >= 0
        picked = np.full(selection.shape, -np.inf)
        if valid.any():
            picked[valid] = source.take(selection[valid])
        ser, fnr = metrics_from_topc(picked, valid, c, top_sum, boundary, slots_above)
    else:
        ser = fnr = np.full(trials, np.nan)
    if mask is None and keep_mask:
        mask = _scatter_selection(selection, trials, n)
    return TrialBatch(
        variant=key,
        epsilon=float(epsilon),
        c=c,
        trials=trials,
        n=n,
        processed=processed,
        halted=halted,
        num_positives=num_positives,
        selection=selection,
        ser=ser,
        fnr=fnr,
        positives_mask=mask,
        passes=passes,
        exhausted=exhausted,
    )


def _tiled_cell(
    key: str,
    epsilon: float,
    *,
    source: ScoreSource,
    thrv: _ThresholdView,
    tiles: Sequence[Tuple[int, int]],
    streams: TrialStreams,
    c: int,
    delta: float,
    monotonic: bool,
    ratio,
    threshold_bump_d: float,
    max_passes: int,
    compute_metrics: bool,
    topc,
    keep_mask: bool,
    unit: Optional[_UnitTiles],
):
    trials = len(streams)
    n = source.n
    if key == "retraversal":
        allocation = BudgetAllocation.from_ratio(
            epsilon, c, ratio=ratio if ratio is not None else "1:1", monotonic=monotonic
        )
        selection, passes, examined, exhausted, count, _c_eff = _fold_retraversal(
            source, thrv, tiles, streams, allocation, c, delta, monotonic,
            threshold_bump_d, max_passes,
        )
        return _assemble(
            key, epsilon, c, trials, n, selection, examined, ~exhausted, count,
            source, topc, compute_metrics, None, keep_mask,
            passes=passes, exhausted=exhausted,
        )
    if key == "em":
        if unit is not None:
            gumbel_iter = _unit_replay_iter(streams, unit.states, tiles, "gumbel", 1.0)
        else:
            gumbel_iter = _live_iter(streams, tiles, "gumbel")
        selection = _fold_em(
            source, tiles, gumbel_iter, epsilon, c, delta, monotonic, trials
        )
        processed = np.full(trials, n, dtype=np.int64)
        halted = np.zeros(trials, dtype=bool)
        num_positives = (selection >= 0).sum(axis=1)
        return _assemble(
            key, epsilon, c, trials, n, selection, processed, halted, num_positives,
            source, topc, compute_metrics, None, keep_mask,
        )
    if key == "alg1":
        allocation = BudgetAllocation.from_ratio(
            epsilon, c, ratio=ratio if ratio is not None else "1:1", monotonic=monotonic
        )
        rho_scale, nu_scale = _svt_scales(allocation, c, delta, monotonic)
        refresh_scale = None
        cutoff = True
    else:
        plan = noise_plan(key, epsilon, c, delta)
        rho_scale, nu_scale = plan.rho_scale, plan.nu_scale
        refresh_scale = plan.refresh_scale
        cutoff = plan.cutoff

    rho = unit.rho * rho_scale if unit is not None else streams.rho(rho_scale)
    mask_out = (
        np.zeros((trials, n), dtype=bool) if (keep_mask and key in ("alg5", "alg6", "gptt")) else None
    )
    if key == "alg2":
        selection, processed, halted, count = _fold_dpbook(
            source, thrv, tiles, streams, rho, nu_scale, refresh_scale, c,
            unit.states if unit is not None else None,
        )
        return _assemble(
            key, epsilon, c, trials, n, selection, processed, halted, count,
            source, topc, compute_metrics, None, keep_mask,
        )
    if nu_scale is None:
        nu_iter = None
    elif unit is not None:
        nu_iter = _unit_replay_iter(streams, unit.states, tiles, "laplace", nu_scale)
    else:
        nu_iter = _live_iter(streams, tiles, "laplace", nu_scale)
    selection, processed, halted, count = _fold_single_pass(
        source, thrv, tiles, rho, nu_iter, c, cutoff, mask_out
    )
    return _assemble(
        key, epsilon, c, trials, n, selection, processed, halted, count,
        source, topc, compute_metrics, mask_out, keep_mask,
    )


def run_tiled_chunk(
    key: str,
    source: ScoreSource,
    epsilons: Union[float, Sequence[float]],
    c: int,
    trials: int,
    rngs: Sequence[np.random.Generator],
    tiles: Sequence[Tuple[int, int]],
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    ratio=None,
    threshold_bump_d: float = 0.0,
    max_passes: int = 100,
    compute_metrics: bool = True,
    share_noise: bool = True,
    topc: Optional[Tuple[float, float, int]] = None,
    keep_positives_mask: Optional[bool] = None,
):
    """Run one trial chunk of one variant over the two-axis tile grid.

    ``rngs`` must be per-trial generators (the execution layer's derived
    streams); ``tiles`` the ``[lo, hi)`` query ranges in scan order covering
    ``source``.  ``topc`` optionally carries a precomputed
    :func:`~repro.data.scores.topc_stats` triple so sharded chunks don't
    re-stream the reference.  ``keep_positives_mask=None`` materializes the
    (trials, n) mask only under :data:`MASK_MATERIALIZE_LIMIT`.

    Returns a :class:`~repro.engine.trials.TrialBatch` (or ``{epsilon:
    TrialBatch}`` for a grid) bit-identical to the dense per-trial-stream
    engine run with the same generators.
    """
    if len(rngs) != trials:
        raise InvalidParameterError(
            f"got {len(rngs)} per-trial generators for {trials} trials"
        )
    streams = TrialStreams(rngs)
    n = source.n
    thrv = _ThresholdView(thresholds, n)
    delta = float(sensitivity)
    keep_mask = (
        trials * n <= MASK_MATERIALIZE_LIMIT
        if keep_positives_mask is None
        else bool(keep_positives_mask)
    )
    cell_kwargs = dict(
        source=source, thrv=thrv, tiles=tiles, streams=streams, c=c, delta=delta,
        monotonic=monotonic, ratio=ratio, threshold_bump_d=threshold_bump_d,
        max_passes=max_passes, compute_metrics=compute_metrics, topc=topc,
        keep_mask=keep_mask,
    )
    if not np.isscalar(epsilons):
        eps_list = [float(eps) for eps in epsilons]
        if not share_noise:
            return {
                eps: _tiled_cell(key, eps, unit=None, **cell_kwargs)
                for eps in eps_list
            }
        unit = _draw_unit_tiles(key, streams, tiles)
        return {
            eps: _tiled_cell(key, eps, unit=unit, **cell_kwargs) for eps in eps_list
        }
    return _tiled_cell(key, float(epsilons), unit=None, **cell_kwargs)
