"""The vectorized batch execution engine.

One subsystem for running SVT variants over whole query arrays — and whole
Monte-Carlo trial batches — without a Python-level inner loop:

* :mod:`repro.engine.noise` — block samplers for threshold/query noise,
  with an optional per-trial-stream mode that stays bit-compatible with
  query-at-a-time loops;
* :mod:`repro.engine.kernels` — pure noise-in/transcript-out kernels, each
  with a streaming reference twin used by the equivalence test suite;
* :mod:`repro.engine.batch` — single-run ``run_*_batch`` counterparts of
  every :mod:`repro.variants` implementation;
* :mod:`repro.engine.retraversal` — the Section-5 kernels: multi-pass
  SVT-ReTr rescans and the Gumbel-max EM baseline, batched across trials;
* :mod:`repro.engine.trials` — the multi-trial layer: all trials of a
  (variant, epsilon, c) cell in one pass, with vectorized SER/FNR and
  shared-unit-noise epsilon grids;
* :mod:`repro.engine.plans` / :mod:`repro.engine.exec` — execution planning:
  ``max_bytes``-driven two-axis chunking (trials × query tiles, with
  ``"auto"`` budgets from live memory) and process-pool sharding;
* :mod:`repro.engine.tiled` — the out-of-core path: every variant folded
  across query-axis tiles over a lazy :class:`~repro.data.scores.ScoreSource`,
  bit-identical to the dense per-trial-stream engine.

The experiment harness (:mod:`repro.experiments`), the attack estimator
(:mod:`repro.attacks.estimator`), and the registry's
:meth:`~repro.variants.registry.VariantInfo.run_batch` dispatch all route
through here.
"""

from repro.engine.batch import (
    run_chen_batch,
    run_dpbook_batch,
    run_gptt_batch,
    run_lee_clifton_batch,
    run_roth_batch,
    run_stoddard_batch,
    run_svt_batch,
)
from repro.engine.exec import execute_trials, merge_batches, run_sharded
from repro.engine.gate import GateBlock, gate_block
from repro.engine.noise import TrialRngs, gumbel_matrix, laplace_matrix, laplace_vector
from repro.engine.plans import (
    BYTES_PER_CELL,
    TrialPlan,
    available_memory_bytes,
    bytes_per_cell,
    plan_trials,
)
from repro.engine.tiled import run_tiled_chunk
from repro.engine.retraversal import (
    RetraversalTrialBatch,
    em_selection_matrix,
    retraversal_trials,
)
from repro.engine.trials import (
    TrialBatch,
    cut_matrix,
    run_trials,
    selection_matrix,
    svt_selection_grid,
    svt_selection_matrix,
    transcript_sampler,
)

__all__ = [
    "TrialRngs",
    "laplace_matrix",
    "laplace_vector",
    "gumbel_matrix",
    "run_svt_batch",
    "run_dpbook_batch",
    "run_roth_batch",
    "run_lee_clifton_batch",
    "run_stoddard_batch",
    "run_chen_batch",
    "run_gptt_batch",
    "RetraversalTrialBatch",
    "retraversal_trials",
    "em_selection_matrix",
    "TrialBatch",
    "cut_matrix",
    "selection_matrix",
    "svt_selection_matrix",
    "svt_selection_grid",
    "run_trials",
    "transcript_sampler",
    "TrialPlan",
    "plan_trials",
    "available_memory_bytes",
    "run_tiled_chunk",
    "BYTES_PER_CELL",
    "bytes_per_cell",
    "execute_trials",
    "merge_batches",
    "run_sharded",
    "GateBlock",
    "gate_block",
]
