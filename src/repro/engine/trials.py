"""Multi-trial batch execution: every Monte-Carlo trial in one numpy pass.

The figure-level artifacts of the paper (Figures 2-5) average SER/FNR over
hundreds of trials per (variant, epsilon, c) cell.  Running each trial
through a Python-level mechanism call leaves an interpreter loop around the
hot path; this module removes it:

* the query noise for *all* trials is one ``(trials, n)`` Laplace block
  (:mod:`repro.engine.noise`), the threshold noise one ``(trials,)`` vector;
* the halt point of every trial falls out of one row-wise cumsum
  (:func:`cut_matrix`), and the first-c selections out of one masked
  scatter (:func:`selection_matrix`);
* SER/FNR for all trials come from the vectorized
  :func:`repro.metrics.utility.batch_selection_metrics`.

Alg. 2's threshold refresh makes its comparison row depend on the trial's
own history; :func:`_dpbook_above` handles it with segmented rescans — at
most c+1 rounds, each one vectorized across all still-active trials, with
the per-query noise still drawn as a single up-front block (each query is
examined at most once, so one draw per query is the correct semantics).
The Section-5 methods route through :mod:`repro.engine.retraversal`:
``"retraversal"`` runs segmented multi-pass rescans and ``"em"`` a row-wise
Gumbel-max, so *every* registry method now executes vectorized end to end.

**Epsilon grids.**  Passing a sequence of epsilons returns ``{epsilon:
TrialBatch}``.  By default (``share_noise=True``) the engine samples one
*unit* noise block per cell — ``Lap(1)`` threshold/query noise, standard
Gumbel for EM — and rescales it per epsilon, so a Figure 4/5 sweep pays for
its noise once instead of once per grid point.  Because a NumPy Laplace draw
is linear in ``scale`` for a fixed bit stream, the rescaled results are
bit-identical to re-running each epsilon with a freshly rewound generator —
paired-across-epsilon semantics, lower variance in cross-epsilon
differences.  Alg. 2's refresh draws and retraversal's per-pass blocks are
data-dependent and stay fresh per epsilon; ``share_noise=False`` restores
fully independent cells (one stream consumed sequentially).

**Memory & parallelism.**  ``max_bytes`` caps the engine's block footprint by
splitting the trial axis into chunks, and ``parallel="process"`` shards the
chunks across a process pool — see :mod:`repro.engine.exec`.  Both switch
the run onto per-trial derived streams so results are independent of the
chunk boundaries and worker count.

``rng`` may be a seed/Generator (fastest: one block draw) or a list of
per-trial Generators (bit-compatible with a per-trial loop — what the
experiment harness uses to keep its historical results reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.base import normalize_thresholds
from repro.data.scores import ScoreSource
from repro.engine.noise import (
    TrialRngs,
    gumbel_matrix,
    laplace_matrix,
    laplace_vector,
)
from repro.engine.plans import NoisePlan, noise_plan
from repro.engine.retraversal import em_selection_matrix, retraversal_trials
from repro.exceptions import InvalidParameterError
from repro.metrics.utility import batch_selection_metrics
from repro.rng import ensure_rng
from repro.variants._common import require_opt_in, validate_inputs

__all__ = [
    "TrialBatch",
    "cut_matrix",
    "selection_matrix",
    "svt_selection_matrix",
    "svt_selection_grid",
    "run_trials",
    "transcript_sampler",
]


def cut_matrix(above: np.ndarray, c: int) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise halt points: ``(processed, halted)`` for a (trials, n) run.

    The vectorized form of :func:`repro.engine.kernels.cut_at_cth_positive`:
    a trial halts right after its c-th positive comparison.
    """
    trials, n = above.shape
    cum = np.cumsum(above, axis=1)
    hit = (cum == c) & above
    halted = hit.any(axis=1)
    first = np.argmax(hit, axis=1)
    processed = np.where(halted, first + 1, n)
    return processed, halted


def selection_matrix(
    above: np.ndarray, c: int, processed: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-trial selected indices: the first c positives within the processed prefix.

    Returns ``(selection, counts)`` where ``selection`` is ``(trials, c)``
    right-padded with -1 (selection order preserved) and ``counts`` the
    number of selections per trial.
    """
    trials, n = above.shape
    cum = np.cumsum(above, axis=1)
    mask = above & (cum <= c)
    if processed is not None:
        mask &= np.arange(n)[None, :] < processed[:, None]
    rows, cols = np.nonzero(mask)
    ordinal = cum[rows, cols] - 1
    selection = np.full((trials, c), -1, dtype=np.int64)
    selection[rows, ordinal] = cols
    return selection, mask.sum(axis=1)


def _svt_scales(
    allocation: BudgetAllocation, c: int, delta: float, monotonic: bool
) -> Tuple[float, float]:
    """(rho_scale, nu_scale) of Alg. 7 under one allocation."""
    factor = c if monotonic else 2 * c
    return delta / allocation.eps1, factor * delta / allocation.eps2


def _svt_select(
    values: np.ndarray, thr: np.ndarray, rho: np.ndarray, nu: np.ndarray, c: int
) -> np.ndarray:
    """Compare/cut/select tail shared by the single- and grid-epsilon paths.

    One implementation keeps the grid's "cell == per-epsilon call" guarantee
    a statement about noise scaling alone.
    """
    above = values + nu >= thr[None, :] + rho[:, None]
    processed, _halted = cut_matrix(above, c)
    selection, _counts = selection_matrix(above, c, processed)
    return selection


def svt_selection_matrix(
    values: np.ndarray,
    thresholds: Union[float, Sequence[float]],
    allocation: BudgetAllocation,
    c: int,
    monotonic: bool = False,
    sensitivity: float = 1.0,
    rng: TrialRngs = None,
) -> np.ndarray:
    """Alg. 7 top-c selection for a whole (trials, n) matrix of answers.

    The batched form of calling :func:`repro.core.svt.run_svt_batch` once per
    row: per trial one rho draw then one length-n noise block, so with a list
    of per-trial generators the selections are bit-identical to the loop.
    Returns the padded ``(trials, c)`` selection matrix.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise InvalidParameterError("values must be a (trials, n) matrix")
    trials, n = values.shape
    thr = normalize_thresholds(thresholds, n)
    rho_scale, nu_scale = _svt_scales(allocation, c, float(sensitivity), monotonic)
    if not isinstance(rng, (list, tuple)):
        # Coerce once: the samplers below must continue ONE stream.  Passing
        # a raw seed to each would replay the same bit stream twice, leaving
        # rho and nu perfectly correlated.
        rng = ensure_rng(rng)
    rho = laplace_vector(rng, rho_scale, trials)
    nu = laplace_matrix(rng, nu_scale, trials, n)
    return _svt_select(values, thr, rho, nu, c)


def svt_selection_grid(
    values: np.ndarray,
    thresholds: Union[float, Sequence[float]],
    allocations: Dict[float, BudgetAllocation],
    c: int,
    monotonic: bool = False,
    sensitivity: float = 1.0,
    rng: TrialRngs = None,
) -> Dict[float, np.ndarray]:
    """Alg. 7 selections for a whole epsilon grid from one unit noise block.

    ``allocations`` maps each epsilon to its budget split.  One ``Lap(1)``
    rho vector and nu matrix are drawn and rescaled per epsilon, which (by
    linearity of the Laplace sampler in ``scale``) is bit-identical to
    calling :func:`svt_selection_matrix` per epsilon with a rewound
    generator — the old per-epsilon sweep behavior, at one draw's cost.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise InvalidParameterError("values must be a (trials, n) matrix")
    trials, n = values.shape
    thr = normalize_thresholds(thresholds, n)
    if not isinstance(rng, (list, tuple)):
        rng = ensure_rng(rng)
    rho_unit = laplace_vector(rng, 1.0, trials)
    nu_unit = laplace_matrix(rng, 1.0, trials, n)
    out: Dict[float, np.ndarray] = {}
    for epsilon, allocation in allocations.items():
        rho_scale, nu_scale = _svt_scales(allocation, c, float(sensitivity), monotonic)
        out[float(epsilon)] = _svt_select(
            values, thr, rho_unit * rho_scale, nu_unit * nu_scale, c
        )
    return out


@dataclass
class TrialBatch:
    """All trials of one (variant, epsilon, c) cell, computed in one pass.

    ``selection`` holds each trial's first-c positive indices (into the
    possibly shuffled query order that trial saw — already mapped back to
    original identities when ``shuffle=True``), right-padded with -1.
    ``ser``/``fnr`` are per-trial metrics against the true top-c of the
    answer multiset.

    For the retraversal method three extra per-trial arrays are populated:
    ``passes`` (full traversals), ``exhausted`` (pass limit hit before c
    selections), and ``processed`` counts total query *examinations* across
    passes (the :attr:`RetraversalResult.examined` accounting) rather than a
    one-pass prefix length.
    """

    variant: str
    epsilon: float
    c: int
    trials: int
    n: int
    processed: np.ndarray
    halted: np.ndarray
    num_positives: np.ndarray
    selection: np.ndarray
    ser: np.ndarray
    fnr: np.ndarray
    positives_mask: Optional[np.ndarray]
    passes: Optional[np.ndarray] = None
    exhausted: Optional[np.ndarray] = None

    def positives(self, trial: int) -> np.ndarray:
        """All positive indices of one trial (uncapped, unlike ``selection``).

        Runs through the execution layer whose merged ``(trials, n)`` mask
        would exceed the out-of-core size policy
        (:data:`repro.engine.tiled.MASK_MATERIALIZE_LIMIT`) carry no
        positives mask; use ``selection``/``num_positives``.
        """
        if self.positives_mask is None:
            raise InvalidParameterError(
                "this batch carries no positives mask: trials * n exceeds the "
                "out-of-core mask size policy; use selection/num_positives "
                "instead"
            )
        return np.nonzero(self.positives_mask[trial])[0]

    @property
    def examined(self) -> np.ndarray:
        """Per-trial query examinations (alias of ``processed``; total across
        passes for retraversal)."""
        return self.processed

    @property
    def ser_mean(self) -> float:
        return float(self.ser.mean())

    @property
    def ser_std(self) -> float:
        return float(self.ser.std(ddof=1)) if self.trials > 1 else 0.0

    @property
    def fnr_mean(self) -> float:
        return float(self.fnr.mean())

    @property
    def fnr_std(self) -> float:
        return float(self.fnr.std(ddof=1)) if self.trials > 1 else 0.0

    @property
    def positive_rate(self) -> float:
        """Mean number of positives per trial."""
        return float(self.num_positives.mean())


# ---------------------------------------------------------------------------
# Per-variant noise plans.
# ---------------------------------------------------------------------------

_OPT_IN = {
    "alg3": "Alg. 3 (Roth 2011 lecture notes)",
    "alg4": "Alg. 4 (Lee & Clifton 2014)",
    "alg5": "Alg. 5 (Stoddard et al. 2014)",
    "alg6": "Alg. 6 (Chen et al. 2015)",
    "gptt": "GPTT (Chen & Machanavajjhala 2015 model)",
}

_KNOWN = (
    "alg1", "alg2", "alg3", "alg4", "alg5", "alg6", "gptt", "retraversal", "em",
)


def _normalize_variant(variant) -> str:
    # The alias table is shared with registry.get_method so every entry
    # point accepts the same spellings (imported here, not at module level,
    # only to keep the package's engine-after-variants import order obvious).
    from repro.variants.registry import METHOD_ALIASES

    key = getattr(variant, "key", variant)
    normalized = str(key).strip().lower().replace(" ", "").replace(".", "")
    if normalized.isdigit():
        normalized = f"alg{normalized}"
    normalized = METHOD_ALIASES.get(normalized, normalized)
    if normalized not in _KNOWN:
        raise InvalidParameterError(f"unknown variant {key!r}; known: {sorted(_KNOWN)}")
    return normalized


@dataclass(frozen=True)
class _UnitNoise:
    """Pre-drawn unit noise for one epsilon grid (rescaled per epsilon)."""

    rho: Optional[np.ndarray] = None  # (trials,) Lap(1)
    nu: Optional[np.ndarray] = None  # (trials, n) Lap(1)
    gumbel: Optional[np.ndarray] = None  # (trials, n) standard Gumbel


def _draw_units(key: str, rng: TrialRngs, trials: int, n: int) -> Optional[_UnitNoise]:
    """Draw the sharable unit blocks of one variant, in its draw order.

    Returns ``None`` for retraversal, whose per-pass blocks are
    data-dependent (size = that trial's remaining queries) and cannot be
    pre-drawn; its grid cells sample fresh noise per epsilon.
    """
    if key == "retraversal":
        return None
    if key == "em":
        return _UnitNoise(gumbel=gumbel_matrix(rng, trials, n))
    if key == "alg5":
        return _UnitNoise(rho=laplace_vector(rng, 1.0, trials))
    return _UnitNoise(
        rho=laplace_vector(rng, 1.0, trials),
        nu=laplace_matrix(rng, 1.0, trials, n),
    )


def _above_for_variant(
    key: str,
    values: np.ndarray,
    thr: np.ndarray,
    epsilon: float,
    c: int,
    delta: float,
    monotonic: bool,
    ratio: Optional[Union[str, float]],
    rng: TrialRngs,
    trials: int,
    units: Optional[_UnitNoise] = None,
) -> Tuple[np.ndarray, bool]:
    """The (trials, n) comparison matrix plus whether the variant has a cutoff.

    With *units* the threshold/query noise comes from the pre-drawn unit
    blocks rescaled to this epsilon's scales instead of fresh draws.
    """
    n = values.shape[1]
    if key == "alg1":
        allocation = BudgetAllocation.from_ratio(
            epsilon, c, ratio=ratio if ratio is not None else "1:1", monotonic=monotonic
        )
        rho_scale, nu_scale = _svt_scales(allocation, c, delta, monotonic)
        if units is not None:
            rho = units.rho * rho_scale
            nu = units.nu * nu_scale
        else:
            rho = laplace_vector(rng, rho_scale, trials)
            nu = laplace_matrix(rng, nu_scale, trials, n)
        return values + nu >= thr[None, :] + rho[:, None], True
    plan = noise_plan(key, epsilon, c, delta)
    if key == "alg2":
        return _dpbook_above(values, thr, plan, c, rng, trials, units), True
    if units is not None:
        rho = units.rho * plan.rho_scale
    else:
        rho = laplace_vector(rng, plan.rho_scale, trials)
    if plan.nu_scale is None:
        return values >= thr[None, :] + rho[:, None], plan.cutoff
    if units is not None:
        nu = units.nu * plan.nu_scale
    else:
        nu = laplace_matrix(rng, plan.nu_scale, trials, n)
    return values + nu >= thr[None, :] + rho[:, None], plan.cutoff


def _dpbook_above(
    values: np.ndarray,
    thr: np.ndarray,
    plan: NoisePlan,
    c: int,
    rng: TrialRngs,
    trials: int,
    units: Optional[_UnitNoise] = None,
) -> np.ndarray:
    """Alg. 2 comparison matrix via segmented rescans across all trials.

    One up-front noise block covers every query (each is examined at most
    once); the refresh loop runs at most c+1 rounds, each vectorized over the
    still-active trials.  The returned matrix reports, for every (trial,
    query), whether that query's single examination succeeded under the rho
    in force when it was reached — columns past a trial's halt point are
    sliced away by :func:`cut_matrix` downstream.  In grid mode the initial
    rho and the nu block come from the shared unit noise; the
    outcome-dependent refresh draws stay fresh per epsilon.
    """
    n = values.shape[1]
    if units is not None:
        rho = units.rho * plan.rho_scale
        nu = units.nu * plan.nu_scale
    else:
        rho = laplace_vector(rng, plan.rho_scale, trials)
        nu = laplace_matrix(rng, plan.nu_scale, trials, n)
    rho = rho.copy()  # refreshed in place below; keep the units intact
    noisy = values + nu

    per_trial = isinstance(rng, (list, tuple))
    shared = None if per_trial else ensure_rng(rng)
    above = np.zeros((trials, n), dtype=bool)
    start = np.zeros(trials, dtype=np.int64)
    count = np.zeros(trials, dtype=np.int64)
    active = np.ones(trials, dtype=bool)
    cols = np.arange(n)
    while active.any():
        idx = np.nonzero(active)[0]
        sub = noisy[idx] >= thr[None, :] + rho[idx, None]
        sub &= cols[None, :] >= start[idx, None]
        has_hit = sub.any(axis=1)
        pos = np.argmax(sub, axis=1)
        # Trials with no further hit under the current rho are done.
        active[idx[~has_hit]] = False
        hit_trials = idx[has_hit]
        hit_pos = pos[has_hit]
        above[hit_trials, hit_pos] = True
        count[hit_trials] += 1
        start[hit_trials] = hit_pos + 1
        done = count[hit_trials] >= c
        active[hit_trials[done]] = False
        refresh = hit_trials[~done]
        if refresh.size:
            scale = plan.refresh_scale
            if per_trial:
                rho[refresh] = [float(rng[t].laplace(scale=scale)) for t in refresh]
            else:
                rho[refresh] = shared.laplace(scale=scale, size=refresh.size)
    return above


def _scatter_selection(selection: np.ndarray, trials: int, n: int) -> np.ndarray:
    """(trials, n) boolean mask of the selected indices."""
    mask = np.zeros((trials, n), dtype=bool)
    rows, cols = np.nonzero(selection >= 0)
    mask[rows, selection[rows, cols]] = True
    return mask


def run_trials(
    variant,
    answers: Sequence[float],
    epsilons: Union[float, Sequence[float]],
    c: int,
    trials: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: TrialRngs = None,
    shuffle: bool = False,
    monotonic: bool = False,
    ratio: Optional[Union[str, float]] = None,
    threshold_bump_d: float = 0.0,
    max_passes: int = 100,
    allow_non_private: bool = False,
    compute_metrics: bool = True,
    share_noise: bool = True,
    max_bytes: Union[int, str, None] = None,
    parallel: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_n: Optional[int] = None,
    memory_probe: Optional[Callable[[], int]] = None,
) -> Union[TrialBatch, Dict[float, TrialBatch]]:
    """Run *trials* Monte-Carlo repetitions of one variant in a single pass.

    Parameters
    ----------
    variant:
        A registry key (``"alg1"``..``"alg6"``, flexible spelling), a
        :class:`~repro.variants.registry.VariantInfo`, ``"gptt"`` (even eps
        split), ``"retraversal"`` (Section 5 SVT-ReTr; also ``"retr"``), or
        ``"em"`` (the c-round exponential-mechanism baseline).
    epsilons:
        A single budget or a sequence; a sequence returns ``{epsilon:
        TrialBatch}``.  With ``share_noise=True`` (default) the grid reuses
        one unit noise block rescaled per epsilon (see the module docstring);
        ``share_noise=False`` restores fully independent cells.
    shuffle:
        Randomize the query order independently per trial (the paper's
        experiment protocol); selections are mapped back to original
        identities.
    monotonic / ratio:
        Alg. 1 and retraversal: monotonic noise scales and the eps1:eps2
        split.  ``monotonic`` also selects the EM exponent.
    threshold_bump_d / max_passes:
        Retraversal only: the threshold increment in D units and the pass
        cap (see :func:`repro.core.retraversal.svt_retraversal`).
    rng:
        Seed/Generator, or a list of per-trial Generators for bit-exact
        agreement with a per-trial loop.
    max_bytes / parallel / workers / chunk_n:
        Execution knobs (see :mod:`repro.engine.exec`): ``max_bytes`` caps
        the working set (an int, or ``"auto"`` to target a fraction of the
        machine's available memory) by chunking the trial axis — and, when
        even one full-width trial row exceeds the budget, by tiling the
        query axis too (:mod:`repro.engine.tiled`); ``chunk_n`` forces a
        query-axis tile width explicitly.  ``parallel="process"`` runs the
        chunks on a ProcessPoolExecutor with *workers* processes.  With
        ``max_bytes="auto"`` on the serial backends the run re-plans
        between chunks from a live memory read (*memory_probe*, default the
        /proc/meminfo reader) instead of one planning-time sample.  Any of
        these knobs switches to per-trial derived streams, making results
        independent of chunking, tiling, and worker count.  *answers* may
        also be a lazy :class:`~repro.data.scores.ScoreSource` (e.g.
        ``GeneratorScores`` for the AOL-scale universe), which routes
        through the same execution layer; tiled runs do not support
        ``shuffle=True`` (a per-trial permutation is itself a dense
        (trials, n) object).

    SER/FNR treat *answers* as the scores being selected over (the
    selection-experiment reading); disable with ``compute_metrics=False``
    when the answers are not scores (e.g. attack transcripts).
    """
    key = _normalize_variant(variant)
    if key in _OPT_IN:
        require_opt_in(allow_non_private, _OPT_IN[key], "see repro.variants")
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    if (
        max_bytes is not None
        or parallel is not None
        or chunk_n is not None
        or isinstance(answers, ScoreSource)
    ):
        from repro.engine.exec import execute_trials

        return execute_trials(
            key, answers, epsilons, c, trials,
            thresholds=thresholds, sensitivity=sensitivity, rng=rng,
            shuffle=shuffle, monotonic=monotonic, ratio=ratio,
            threshold_bump_d=threshold_bump_d, max_passes=max_passes,
            allow_non_private=allow_non_private, compute_metrics=compute_metrics,
            share_noise=share_noise, max_bytes=max_bytes, parallel=parallel,
            workers=workers, chunk_n=chunk_n, memory_probe=memory_probe,
        )
    if not isinstance(rng, (list, tuple)):
        # One shared stream for shuffle + every noise draw (and across an
        # epsilon sweep).  Coercing the seed once here is load-bearing: the
        # samplers each accept RngLike, and handing the same raw seed to
        # rho-, nu-, and refresh-sampling would replay one bit stream,
        # correlating noises that must be independent.
        rng = ensure_rng(rng)

    base = np.asarray(answers, dtype=float)
    if base.ndim != 1:
        raise InvalidParameterError("answers must be a 1-D sequence")
    n = base.size
    thr = normalize_thresholds(thresholds, n)
    delta = float(sensitivity)

    cell_kwargs = dict(
        base=base, thr=thr, c=c, trials=trials, delta=delta, monotonic=monotonic,
        ratio=ratio, threshold_bump_d=threshold_bump_d, max_passes=max_passes,
        compute_metrics=compute_metrics, rng=rng,
    )

    if not np.isscalar(epsilons):
        eps_list = [float(eps) for eps in epsilons]
        for eps in eps_list:
            validate_inputs(eps, sensitivity, c)
        if not share_noise:
            return {
                eps: run_trials(
                    key, answers, eps, c, trials,
                    thresholds=thresholds, sensitivity=sensitivity, rng=rng,
                    shuffle=shuffle, monotonic=monotonic, ratio=ratio,
                    threshold_bump_d=threshold_bump_d, max_passes=max_passes,
                    allow_non_private=allow_non_private,
                    compute_metrics=compute_metrics, share_noise=False,
                )
                for eps in eps_list
            }
        perms, values = _shuffled_values(base, trials, n, rng, shuffle)
        units = _draw_units(key, rng, trials, n)
        return {
            eps: _run_cell(key, eps, values=values, perms=perms, units=units, **cell_kwargs)
            for eps in eps_list
        }

    epsilon = float(epsilons)
    validate_inputs(epsilon, sensitivity, c)
    perms, values = _shuffled_values(base, trials, n, rng, shuffle)
    return _run_cell(key, epsilon, values=values, perms=perms, units=None, **cell_kwargs)


def _shuffled_values(
    base: np.ndarray, trials: int, n: int, rng: TrialRngs, shuffle: bool
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Per-trial (possibly shuffled) score rows, plus the permutations used."""
    if not shuffle:
        return None, np.broadcast_to(base, (trials, n))
    if isinstance(rng, (list, tuple)):
        perms = np.stack([gen.permutation(n) for gen in rng])
    else:
        perms = np.argsort(rng.random((trials, n)), axis=1)
    return perms, base[perms]


def _run_cell(
    key: str,
    epsilon: float,
    *,
    base: np.ndarray,
    values: np.ndarray,
    perms: Optional[np.ndarray],
    thr: np.ndarray,
    c: int,
    trials: int,
    delta: float,
    monotonic: bool,
    ratio: Optional[Union[str, float]],
    threshold_bump_d: float,
    max_passes: int,
    compute_metrics: bool,
    rng: TrialRngs,
    units: Optional[_UnitNoise],
) -> TrialBatch:
    """One fully-vectorized (variant, epsilon, c) cell."""
    n = base.size
    passes = exhausted = None
    if key == "retraversal":
        allocation = BudgetAllocation.from_ratio(
            epsilon, c, ratio=ratio if ratio is not None else "1:1", monotonic=monotonic
        )
        retr = retraversal_trials(
            values, allocation, c,
            thresholds=thr, sensitivity=delta, monotonic=monotonic,
            threshold_bump_d=threshold_bump_d, max_passes=max_passes, rng=rng,
        )
        selection = retr.selection
        processed = retr.examined
        halted = ~retr.exhausted
        passes, exhausted = retr.passes, retr.exhausted
        positives_mask = _scatter_selection(selection, trials, n)
        num_positives = retr.num_selected
    elif key == "em":
        selection = em_selection_matrix(
            values, epsilon, c,
            sensitivity=delta, monotonic=monotonic, rng=rng,
            gumbel=units.gumbel if units is not None else None,
        )
        processed = np.full(trials, n, dtype=np.int64)
        halted = np.zeros(trials, dtype=bool)
        positives_mask = _scatter_selection(selection, trials, n)
        num_positives = (selection >= 0).sum(axis=1)
    else:
        above, has_cutoff = _above_for_variant(
            key, values, thr, epsilon, c, delta, monotonic, ratio, rng, trials, units
        )
        if has_cutoff:
            processed, halted = cut_matrix(above, c)
        else:
            processed = np.full(trials, n, dtype=np.int64)
            halted = np.zeros(trials, dtype=bool)
        prefix = np.arange(n)[None, :] < processed[:, None]
        positives_mask = above & prefix
        num_positives = positives_mask.sum(axis=1)
        selection, _counts = selection_matrix(above, c, processed)

    if compute_metrics:
        ser, fnr = batch_selection_metrics(values, selection, c, base_scores=base)
    else:
        ser = fnr = np.full(trials, np.nan)

    if perms is not None:
        valid = selection >= 0
        selection = np.where(
            valid, np.take_along_axis(perms, np.where(valid, selection, 0), axis=1), -1
        )
        # Re-express the positives mask over original identities too.
        original_mask = np.zeros_like(positives_mask)
        rows, cols = np.nonzero(positives_mask)
        original_mask[rows, perms[rows, cols]] = True
        positives_mask = original_mask
    return TrialBatch(
        variant=key,
        epsilon=epsilon,
        c=c,
        trials=trials,
        n=n,
        processed=processed,
        halted=halted,
        num_positives=num_positives,
        selection=selection,
        ser=ser,
        fnr=fnr,
        positives_mask=positives_mask,
        passes=passes,
        exhausted=exhausted,
    )


def transcript_sampler(
    variant,
    answers: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    allow_non_private: bool = False,
):
    """A vectorized mechanism for the Monte-Carlo privacy estimator.

    Returns a callable suitable for
    :func:`repro.attacks.estimator.event_frequency` with
    ``vectorized=True``: given the estimator's list of per-trial generators
    it runs *all* trials through the batch engine at once and yields one
    hashable transcript ``(processed, positives)`` per trial.
    """

    def sample(rngs: Sequence[np.random.Generator]) -> List[tuple]:
        batch = run_trials(
            variant,
            answers,
            epsilon,
            c,
            trials=len(rngs),
            thresholds=thresholds,
            sensitivity=sensitivity,
            rng=list(rngs),
            allow_non_private=allow_non_private,
            compute_metrics=False,
        )
        out = []
        for t in range(batch.trials):
            out.append(
                (int(batch.processed[t]), tuple(int(i) for i in batch.positives(t)))
            )
        return out

    return sample
