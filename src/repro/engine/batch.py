"""Single-run vectorized batch execution for every SVT variant.

These are the drop-in batch counterparts of the streaming implementations in
:mod:`repro.variants`: same signatures, same validation, same opt-in guard
for the non-private variants, but the whole query array is processed with
block noise draws and a cumsum halt-point instead of a Python loop.

Draw-order compatibility: each ``run_*_batch`` samples its noise in exactly
the order the streaming form does — one rho, then the query noise (a block
draw consumes a NumPy bit stream identically to the equivalent scalar
sequence).  For Alg. 3, 4, 5, 6 and GPTT this makes the batch form
*seed-identical* to the streaming one: same ``rng`` in, same
:class:`~repro.core.base.SVTResult` out, which the equivalence suite asserts
exactly.  (Alg. 2 interleaves refresh draws with query draws mid-stream, so
its batch form — :func:`repro.variants.dpbook.run_dpbook_batch`, re-exported
here — is distributionally rather than seed-wise equivalent; the kernel-level
tests pin its semantics instead.)
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.base import SVTResult, normalize_thresholds
from repro.core.svt import run_svt_batch
from repro.engine.kernels import nocut_kernel, threshold_kernel
from repro.engine.plans import noise_plan
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng
from repro.variants import chen as _chen
from repro.variants import lee_clifton as _lee_clifton
from repro.variants import roth as _roth
from repro.variants import stoddard as _stoddard
from repro.variants import gptt as _gptt
from repro.variants._common import require_opt_in, validate_inputs
from repro.variants.dpbook import run_dpbook_batch

__all__ = [
    "run_svt_batch",
    "run_dpbook_batch",
    "run_roth_batch",
    "run_lee_clifton_batch",
    "run_stoddard_batch",
    "run_chen_batch",
    "run_gptt_batch",
]


def run_roth_batch(
    answers: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Vectorized Alg. 3; seed-identical to :func:`repro.variants.roth.run_roth`."""
    require_opt_in(allow_non_private, "Alg. 3 (Roth 2011 lecture notes)", _roth._DEFECT)
    validate_inputs(epsilon, sensitivity, c)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    plan = noise_plan("alg3", epsilon, c, float(sensitivity))
    rho = float(gen.laplace(scale=plan.rho_scale))
    nu = gen.laplace(scale=plan.nu_scale, size=values.size)
    return threshold_kernel(values, thr, rho, nu, c, release_noisy=True)


def run_lee_clifton_batch(
    answers: Sequence[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Vectorized Alg. 4; seed-identical to :func:`repro.variants.lee_clifton.run_lee_clifton`."""
    require_opt_in(
        allow_non_private, "Alg. 4 (Lee & Clifton 2014)", _lee_clifton._DEFECT
    )
    validate_inputs(epsilon, sensitivity, c)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    plan = noise_plan("alg4", epsilon, c, float(sensitivity))
    rho = float(gen.laplace(scale=plan.rho_scale))
    nu = gen.laplace(scale=plan.nu_scale, size=values.size)
    return threshold_kernel(values, thr, rho, nu, c)


def run_stoddard_batch(
    answers: Sequence[float],
    epsilon: float,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Vectorized Alg. 5; seed-identical to :func:`repro.variants.stoddard.run_stoddard`."""
    require_opt_in(allow_non_private, "Alg. 5 (Stoddard et al. 2014)", _stoddard._DEFECT)
    validate_inputs(epsilon, sensitivity, None)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    plan = noise_plan("alg5", epsilon, 1, float(sensitivity))
    rho = float(gen.laplace(scale=plan.rho_scale))
    return nocut_kernel(values, thr, rho, nu=None)


def run_chen_batch(
    answers: Sequence[float],
    epsilon: float,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Vectorized Alg. 6; seed-identical to :func:`repro.variants.chen.run_chen`."""
    require_opt_in(allow_non_private, "Alg. 6 (Chen et al. 2015)", _chen._DEFECT)
    validate_inputs(epsilon, sensitivity, None)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    plan = noise_plan("alg6", epsilon, 1, float(sensitivity))
    rho = float(gen.laplace(scale=plan.rho_scale))
    nu = gen.laplace(scale=plan.nu_scale, size=values.size)
    return nocut_kernel(values, thr, rho, nu)


def run_gptt_batch(
    answers: Sequence[float],
    eps1: float,
    eps2: float,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    rng: RngLike = None,
    allow_non_private: bool = False,
) -> SVTResult:
    """Vectorized GPTT; seed-identical to :func:`repro.variants.gptt.run_gptt`."""
    require_opt_in(
        allow_non_private, "GPTT (Chen & Machanavajjhala 2015 model)", _gptt._DEFECT
    )
    if float(eps1) <= 0.0 or float(eps2) <= 0.0:
        raise InvalidParameterError("eps1 and eps2 must both be > 0")
    validate_inputs(eps1 + eps2, sensitivity, None)
    values = np.asarray(answers, dtype=float)
    thr = normalize_thresholds(thresholds, values.size)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    rho = float(gen.laplace(scale=delta / eps1))
    nu = gen.laplace(scale=delta / eps2, size=values.size)
    return nocut_kernel(values, thr, rho, nu)
