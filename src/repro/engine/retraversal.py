"""Vectorized Section-5 kernels: SVT with Retraversal and the EM baseline.

These close the last per-trial gap in the engine — the two non-interactive
methods of Figure 5 whose structure resisted the single-pass batch layer:

* :func:`retraversal_trials` runs every trial of
  :func:`repro.core.retraversal.svt_retraversal` — segmented multi-pass
  rescans: the noisy threshold is sampled once per trial, each pass draws
  fresh query noise for that trial's still-unselected queries, and the
  first-c selection accumulates across passes.
* :func:`em_selection_matrix` runs the c-round exponential mechanism for all
  trials as one Gumbel-max over a ``(trials, n)`` score matrix — the batched
  form of :func:`repro.mechanisms.exponential.select_top_c_em`'s
  Gumbel-top-c draw.

Both kernels honour the engine's two RNG modes.  A list of per-trial
generators consumes each trial's stream exactly as the streaming
implementation would — pass-by-pass Laplace blocks — making the results
bit-identical to a per-trial loop (the property the Figure 5 harness and the
equivalence suite rely on).  A shared generator takes the fast path:

**The geometric race.**  The multi-pass transcript consumes only the
*indicators* of ``q_i + nu_i >= T-hat_i``.  Given the (fixed) noisy
threshold, query i's crossing probability ``p_i`` is the same in every pass
— the gap does not change and the noise is fresh — so the pass in which i
first crosses is ``Geometric(p_i)``, and the whole multi-pass run is decided
by one race: order queries by (first-crossing pass, position) and select the
first c.  One uniform block and a log therefore replace *every* per-pass
Laplace block, and ``passes``/``examined`` follow in closed form
(:func:`race_outcome`).  The distribution over
(selection, passes, examined, exhausted) is exactly that of the literal
rescans — not an approximation — which a distributional test pins against
the streaming implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.base import normalize_thresholds
from repro.engine.noise import TrialRngs, gumbel_matrix, laplace_vector
from repro.exceptions import InvalidParameterError
from repro.mechanisms.exponential import _validate_eps, _validate_sensitivity
from repro.rng import ensure_rng

__all__ = [
    "RetraversalTrialBatch",
    "retraversal_trials",
    "race_outcome",
    "em_selection_matrix",
    "RETRAVERSAL_BYTES_PER_CELL",
    "EM_BYTES_PER_CELL",
]

#: Peak live bytes per (trial, query) cell of the multi-pass rescan path:
#: the threshold-kernel working set plus a fresh per-pass nu block, the
#: already-selected mask, and the still-active bookkeeping (see
#: repro.engine.kernels for how these models are counted).
RETRAVERSAL_BYTES_PER_CELL = 64

#: Row-wise Gumbel-max EM: values (8) + gumbel block (8) + logits (8) +
#: perturbed scores (8) + top-c partition workspace and slack.
EM_BYTES_PER_CELL = 40


@dataclass
class RetraversalTrialBatch:
    """All trials of one SVT-ReTr cell: selections plus the work accounting.

    ``selection`` is ``(trials, c)`` right-padded with -1, in selection order
    across passes.  ``passes`` counts full traversals per trial, ``examined``
    the total query examinations (the work the paper's Section 5 trades
    against accuracy), and ``exhausted`` marks trials that hit the pass limit
    before selecting c queries — field for field what a per-trial loop over
    :class:`repro.core.retraversal.RetraversalResult` would report.
    """

    selection: np.ndarray
    passes: np.ndarray
    examined: np.ndarray
    exhausted: np.ndarray

    @property
    def num_selected(self) -> np.ndarray:
        return (self.selection >= 0).sum(axis=1)


def _validate_retraversal(c, sensitivity: float, threshold_bump_d: float, max_passes: int):
    if float(sensitivity) <= 0.0 or not math.isfinite(float(sensitivity)):
        raise InvalidParameterError(
            f"sensitivity must be finite and > 0, got {sensitivity!r}"
        )
    if not isinstance(c, (int, np.integer)) or int(c) <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    if threshold_bump_d < 0.0:
        raise InvalidParameterError("threshold_bump_d must be >= 0")
    if max_passes < 1:
        raise InvalidParameterError("max_passes must be >= 1")


def retraversal_trials(
    values: np.ndarray,
    allocation: BudgetAllocation,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    threshold_bump_d: float = 0.0,
    max_passes: int = 100,
    rng: TrialRngs = None,
) -> RetraversalTrialBatch:
    """Run SVT-ReTr for a whole ``(trials, n)`` matrix of answers at once.

    The batched form of calling :func:`repro.core.retraversal.svt_retraversal`
    once per row.  With a list of per-trial generators the draws per trial are
    exactly the streaming ones — one rho, then one fresh-noise block per pass
    sized to that trial's remaining queries — so ``selection``/``passes``/
    ``examined``/``exhausted`` are bit-identical to the loop.  With a shared
    generator the run takes the geometric-race fast path instead: identical
    in distribution, but it consumes one uniform block rather than the
    streaming path's per-pass Laplace draws.
    """
    _validate_retraversal(c, sensitivity, threshold_bump_d, max_passes)
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise InvalidParameterError("values must be a (trials, n) matrix")
    trials, n = values.shape
    c = int(min(c, n)) if n else int(c)
    thr = normalize_thresholds(thresholds, n)

    delta = float(sensitivity)
    factor = c if monotonic else 2 * c
    query_scale = factor * delta / allocation.eps2
    bump = threshold_bump_d * math.sqrt(2.0) * query_scale

    per_trial = isinstance(rng, (list, tuple))
    shared = None if per_trial else ensure_rng(rng)
    # One rho per trial for the entire multi-pass run (matching the streaming
    # draw order: rho before any query noise).
    rho = laplace_vector(rng if per_trial else shared, delta / allocation.eps1, trials)
    effective_thr = thr[None, :] + bump + rho[:, None]

    if not per_trial and n:
        return _geometric_retraversal(
            values, effective_thr, query_scale, c, max_passes, trials, n, shared
        )
    return _literal_retraversal(
        values, effective_thr, query_scale, c, max_passes, trials, n, rng
    )


def _literal_retraversal(
    values: np.ndarray,
    effective_thr: np.ndarray,
    query_scale: float,
    c: int,
    max_passes: int,
    trials: int,
    n: int,
    rng: Sequence[np.random.Generator],
) -> RetraversalTrialBatch:
    """Pass-by-pass rescans, each pass vectorized over all active trials.

    The per-trial-generator mode runs through here so each trial's draws —
    one fresh-noise block per pass, sized to its remaining queries — land on
    the exact stream positions the streaming loop uses (bit-compatibility).
    (Shared-generator runs with a non-empty universe take the geometric fast
    path; with ``n == 0`` the loop below never starts and rng is unused.)
    """
    available = np.ones((trials, n), dtype=bool)
    count = np.zeros(trials, dtype=np.int64)
    passes = np.zeros(trials, dtype=np.int64)
    examined = np.zeros(trials, dtype=np.int64)
    selection = np.full((trials, max(c, 1)), -1, dtype=np.int64)
    active = available.any(axis=1) & (count < c)
    cols = np.arange(n)

    while active.any():
        idx = np.nonzero(active)[0]
        avail = available[idx]
        nu = np.zeros((idx.size, n), dtype=float)
        for row, t in enumerate(idx):
            mask = avail[row]
            nu[row, mask] = rng[t].laplace(scale=query_scale, size=int(mask.sum()))
        above = avail & (values[idx] + nu >= effective_thr[idx])
        cum = np.cumsum(above, axis=1)
        need = c - count[idx]
        hit = (cum == need[:, None]) & above
        halted = hit.any(axis=1)
        first = np.argmax(hit, axis=1)
        # The pass scans the remaining queries in order and stops right after
        # the need-th positive (or runs them all): queries at available
        # positions within that prefix are the ones examined.
        stop_col = np.where(halted, first, n - 1)
        in_prefix = cols[None, :] <= stop_col[:, None]
        examined[idx] += (avail & in_prefix).sum(axis=1)
        picked = above & in_prefix
        rows, sel_cols = np.nonzero(picked)
        ordinal = count[idx][rows] + cum[rows, sel_cols] - 1
        selection[idx[rows], ordinal] = sel_cols
        count[idx] += picked.sum(axis=1)
        available[idx] &= ~picked
        passes[idx] += 1
        active[idx] = (
            (count[idx] < c)
            & (passes[idx] < max_passes)
            & available[idx].any(axis=1)
        )

    return RetraversalTrialBatch(
        selection=selection,
        passes=passes,
        examined=examined,
        exhausted=count < c,
    )


def _geometric_retraversal(
    values: np.ndarray,
    effective_thr: np.ndarray,
    query_scale: float,
    c: int,
    max_passes: int,
    trials: int,
    n: int,
    shared: np.random.Generator,
) -> RetraversalTrialBatch:
    """The shared-generator fast path: sample first-crossing passes directly.

    ``P[q_i + nu_i >= T-hat_i] = SF_Lap(gap_i / scale)`` is constant across
    passes, so the first-crossing pass of each (trial, query) is geometric
    with that success probability: ``G = ceil(ln U / ln(1 - p))``.  One
    uniform block replaces every per-pass Laplace block; the run's outcome is
    then pure bookkeeping over G (:func:`race_outcome`).

    ``ln(1 - p)`` is computed branch-wise from the Laplace survival function
    so neither tail cancels: for gap < 0, ``1 - p = exp(gap/scale)/2``
    exactly; for gap >= 0, ``log1p(-exp(-gap/scale)/2)``.
    """
    z = (effective_thr - values) / query_scale
    log_one_minus_p = np.where(
        z < 0.0,
        z - math.log(2.0),
        np.log1p(-0.5 * np.exp(-np.abs(z))),
    )
    u = shared.random((trials, n))
    with np.errstate(divide="ignore", invalid="ignore"):
        first_cross = np.ceil(np.log(u) / log_one_minus_p)
    # p == 1 gives ln(1-p) = -inf and a 0/0 or x/-inf ratio: first pass.
    first_cross = np.maximum(np.nan_to_num(first_cross, nan=1.0, posinf=np.inf), 1.0)
    return race_outcome(first_cross, c, max_passes)


def race_outcome(first_cross: np.ndarray, c: int, max_passes: int) -> RetraversalTrialBatch:
    """Resolve a multi-pass run from each query's first-crossing pass.

    ``first_cross`` is ``(trials, n)`` with entry (t, i) the pass in which
    query i of trial t first crosses the noisy threshold (``inf`` = never).
    Chronological selection order is exactly the lexicographic order of
    ``(first_cross, position)``: pass g's hits are reached in position order,
    and earlier passes come first.  Hence, with ``G(k)`` the k-th smallest
    ``first_cross`` in that order:

    * the selected queries are the first ``c`` — truncated to those with
      ``first_cross <= max_passes`` when the run exhausts its pass budget;
    * ``passes`` is ``G(c)`` when the c-th selection happens (the run stops
      mid-pass right there), else ``max_passes``;
    * ``examined`` counts, per pass, the still-unselected queries up to that
      pass's stop point: a query is scanned once per pass until it is
      selected, so it contributes ``min(first_cross, passes - 1)``
      examinations from complete passes, plus one more in the final pass if
      it is still unselected there and precedes the stop point.

    Exposed separately so the accounting identities can be tested against a
    literal pass-by-pass simulation of the same ``first_cross`` matrix.
    """
    trials, n = first_cross.shape
    c = int(min(c, n))
    if n == 0 or c <= 0:
        # Nothing to traverse (c is clamped to n): zero passes, nothing
        # selected, and num_selected < c is vacuously false.
        return RetraversalTrialBatch(
            selection=np.full((trials, max(c, 1)), -1, dtype=np.int64),
            passes=np.zeros(trials, dtype=np.int64),
            examined=np.zeros(trials, dtype=np.int64),
            exhausted=np.zeros(trials, dtype=bool),
        )
    order = np.argsort(first_cross, axis=1, kind="stable")
    head = order[:, :c]
    head_cross = np.take_along_axis(first_cross, head, axis=1)
    valid = head_cross <= max_passes
    reached = valid[:, c - 1]  # all first c valid <=> the c-th selection happens
    selection = np.where(valid, head, -1)

    passes = np.where(reached, head_cross[:, c - 1], float(max_passes))
    # Complete passes contribute one examination per still-unselected query.
    full_passes = np.where(reached, passes - 1.0, float(max_passes))
    examined = np.minimum(first_cross, full_passes[:, None]).sum(axis=1)
    # The stopping pass scans up to the c-th selection's position.
    stop_pos = head[:, c - 1]
    cols = np.arange(n)
    in_final = (cols[None, :] <= stop_pos[:, None]) & (
        first_cross >= passes[:, None]
    )
    examined += np.where(reached, in_final.sum(axis=1), 0)
    return RetraversalTrialBatch(
        selection=selection,
        passes=passes.astype(np.int64),
        examined=examined.astype(np.int64),
        exhausted=~reached,
    )


def em_selection_matrix(
    values: np.ndarray,
    epsilon: float,
    c: int,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    rng: TrialRngs = None,
    per_round_epsilon: Optional[float] = None,
    gumbel: Optional[np.ndarray] = None,
) -> np.ndarray:
    """c-round EM selections for a whole ``(trials, n)`` matrix of qualities.

    The batched form of :func:`repro.mechanisms.exponential.select_top_c_em`:
    one Gumbel block over the trial matrix, then a row-wise top-c (NumPy's
    row-wise argpartition/argsort equals the per-row calls element for
    element, so per-trial generators again give bit-identical selections).
    ``gumbel`` may carry a pre-drawn standard-Gumbel block — the epsilon-grid
    path draws it once and reuses it across the grid, since the budget enters
    only through the logits.  Returns the ``(trials, min(c, n))`` selection
    matrix in selection order.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.shape[1] == 0:
        raise InvalidParameterError("values must be a non-empty (trials, n) matrix")
    if not isinstance(c, (int, np.integer)) or c <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    trials, n = values.shape
    c = int(min(c, n))
    sensitivity = _validate_sensitivity(sensitivity)
    if per_round_epsilon is None:
        per_round_epsilon = _validate_eps(epsilon) / c
    else:
        per_round_epsilon = _validate_eps(per_round_epsilon)
    denom = sensitivity if monotonic else 2.0 * sensitivity
    logits = (per_round_epsilon / denom) * values
    if gumbel is None:
        gumbel = gumbel_matrix(rng, trials, n)
    elif gumbel.shape != (trials, n):
        raise InvalidParameterError(
            f"pre-drawn gumbel block has shape {gumbel.shape}, need {(trials, n)}"
        )
    keys = logits + gumbel
    if c >= n:
        return np.argsort(-keys, axis=1, kind="stable")
    head = np.argpartition(-keys, c, axis=1)[:, :c]
    order = np.argsort(np.take_along_axis(-keys, head, axis=1), axis=1, kind="stable")
    return np.take_along_axis(head, order, axis=1)
