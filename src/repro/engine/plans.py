"""Per-variant noise plans: the one place the engine encodes Figure 1's scales.

The streaming modules under :mod:`repro.variants` deliberately restate their
scales inline — each is a literal transliteration of its Figure 1 listing —
and the seedwise equivalence tests pin the engine to them.  Within the
engine, however, both the single-run batch entry points
(:mod:`repro.engine.batch`) and the multi-trial layer
(:mod:`repro.engine.trials`) need the same numbers; this table keeps them
from drifting apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import InvalidParameterError

__all__ = ["NoisePlan", "noise_plan"]


@dataclass(frozen=True)
class NoisePlan:
    """Laplace scales and structure of one variant at (epsilon, c, Delta).

    ``nu_scale=None`` means no query noise (Alg. 5); ``refresh_scale`` is
    set only for Alg. 2's threshold refresh; ``cutoff`` says whether the run
    halts at the c-th positive.
    """

    rho_scale: float
    nu_scale: Optional[float]
    refresh_scale: Optional[float]
    cutoff: bool


def noise_plan(
    key: str, epsilon: float, c: int, delta: float = 1.0, monotonic: bool = False
) -> NoisePlan:
    """The Figure 1 noise scales for one variant key.

    Alg. 1 is not served here: its split is caller-chosen via
    :class:`~repro.core.allocation.BudgetAllocation` (ratio/monotonic), not
    fixed by a listing.  GPTT with an explicit (eps1, eps2) split likewise
    stays with its entry point; ``key="gptt"`` gives the even split (= Alg. 6).
    """
    if key == "alg2":
        eps1 = epsilon / 2.0
        eps2 = epsilon - eps1
        return NoisePlan(
            rho_scale=c * delta / eps1,
            nu_scale=2 * c * delta / eps1,  # the listing scales nu with eps1
            refresh_scale=c * delta / eps2,
            cutoff=True,
        )
    if key == "alg3":
        eps1 = epsilon / 2.0
        return NoisePlan(delta / eps1, c * delta / (epsilon - eps1), None, True)
    if key == "alg4":
        eps1 = epsilon / 4.0
        return NoisePlan(delta / eps1, delta / (epsilon - eps1), None, True)
    if key == "alg5":
        return NoisePlan(delta / (epsilon / 2.0), None, None, False)
    if key in ("alg6", "gptt"):
        eps1 = epsilon / 2.0
        return NoisePlan(delta / eps1, delta / (epsilon - eps1), None, False)
    raise InvalidParameterError(f"no fixed noise plan for variant {key!r}")
