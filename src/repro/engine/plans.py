"""Per-variant noise plans and trial-chunking plans.

The streaming modules under :mod:`repro.variants` deliberately restate their
scales inline — each is a literal transliteration of its Figure 1 listing —
and the seedwise equivalence tests pin the engine to them.  Within the
engine, however, both the single-run batch entry points
(:mod:`repro.engine.batch`) and the multi-trial layer
(:mod:`repro.engine.trials`) need the same numbers; this table keeps them
from drifting apart.

:class:`TrialPlan` is the execution-side plan: given a ``max_bytes`` budget
it decides how many trials fit in one block of the engine's ``(trials, n)``
working set, so :mod:`repro.engine.exec` can split (and optionally shard)
the trial axis without any block exceeding the budget.  Since the two-axis
refactor the plan covers *both* axes: when even a single trial's full-width
row would blow the budget (the AOL-scale regime, n ≈ 2.3M) — or when the
caller asks for it explicitly via ``chunk_n`` — the query axis is tiled too
(``chunk_trials × chunk_n`` tiles), and :mod:`repro.engine.tiled` folds the
running kernel state across the n-tiles.  ``max_bytes="auto"`` sizes the
budget from the machine's available memory instead of a static number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.exceptions import InvalidParameterError

__all__ = [
    "NoisePlan",
    "noise_plan",
    "TrialPlan",
    "plan_trials",
    "available_memory_bytes",
    "MemoryProbe",
    "BYTES_PER_CELL",
    "bytes_per_cell",
    "DEFAULT_MEMORY_FRACTION",
]


@dataclass(frozen=True)
class NoisePlan:
    """Laplace scales and structure of one variant at (epsilon, c, Delta).

    ``nu_scale=None`` means no query noise (Alg. 5); ``refresh_scale`` is
    set only for Alg. 2's threshold refresh; ``cutoff`` says whether the run
    halts at the c-th positive.
    """

    rho_scale: float
    nu_scale: Optional[float]
    refresh_scale: Optional[float]
    cutoff: bool


def noise_plan(
    key: str, epsilon: float, c: int, delta: float = 1.0, monotonic: bool = False
) -> NoisePlan:
    """The Figure 1 noise scales for one variant key.

    Alg. 1 is not served here: its split is caller-chosen via
    :class:`~repro.core.allocation.BudgetAllocation` (ratio/monotonic), not
    fixed by a listing.  GPTT with an explicit (eps1, eps2) split likewise
    stays with its entry point; ``key="gptt"`` gives the even split (= Alg. 6).
    """
    if key == "alg2":
        eps1 = epsilon / 2.0
        eps2 = epsilon - eps1
        return NoisePlan(
            rho_scale=c * delta / eps1,
            nu_scale=2 * c * delta / eps1,  # the listing scales nu with eps1
            refresh_scale=c * delta / eps2,
            cutoff=True,
        )
    if key == "alg3":
        eps1 = epsilon / 2.0
        return NoisePlan(delta / eps1, c * delta / (epsilon - eps1), None, True)
    if key == "alg4":
        eps1 = epsilon / 4.0
        return NoisePlan(delta / eps1, delta / (epsilon - eps1), None, True)
    if key == "alg5":
        return NoisePlan(delta / (epsilon / 2.0), None, None, False)
    if key in ("alg6", "gptt"):
        eps1 = epsilon / 2.0
        return NoisePlan(delta / eps1, delta / (epsilon - eps1), None, False)
    raise InvalidParameterError(f"no fixed noise plan for variant {key!r}")


#: The variant-agnostic fallback: the threshold-kernel working set (the
#: most common shape), used when the caller doesn't say which kernel runs.
BYTES_PER_CELL = 48


def bytes_per_cell(variant: Optional[str] = None) -> int:
    """Peak working-set bytes per (trial, query) cell of one variant.

    Each kernel module exposes its own measured model (see
    :mod:`repro.engine.kernels` / :mod:`repro.engine.retraversal`); this
    resolves a registry key to the right one.  ``None`` (or an unknown key)
    falls back to the conservative :data:`BYTES_PER_CELL` default.
    """
    if variant is None:
        return BYTES_PER_CELL
    # Imported lazily: kernels/retraversal sit above plans in the package's
    # import order for the trial layer.
    from repro.engine.kernels import (
        DPBOOK_BYTES_PER_CELL,
        NOCUT_BYTES_PER_CELL,
        NOCUT_NONOISE_BYTES_PER_CELL,
        THRESHOLD_BYTES_PER_CELL,
    )
    from repro.engine.retraversal import EM_BYTES_PER_CELL, RETRAVERSAL_BYTES_PER_CELL

    table = {
        "alg1": THRESHOLD_BYTES_PER_CELL,
        "alg2": DPBOOK_BYTES_PER_CELL,
        "alg3": THRESHOLD_BYTES_PER_CELL,
        "alg4": THRESHOLD_BYTES_PER_CELL,
        "alg5": NOCUT_NONOISE_BYTES_PER_CELL,
        "alg6": NOCUT_BYTES_PER_CELL,
        "gptt": NOCUT_BYTES_PER_CELL,
        "retraversal": RETRAVERSAL_BYTES_PER_CELL,
        "em": EM_BYTES_PER_CELL,
    }
    return table.get(str(variant), BYTES_PER_CELL)


#: Fraction of the machine's available memory targeted by ``max_bytes="auto"``.
DEFAULT_MEMORY_FRACTION = 0.5

#: Conservative fallback when neither /proc/meminfo nor psutil is available.
_FALLBACK_AVAILABLE_BYTES = 1 << 30


def available_memory_bytes() -> int:
    """The memory currently available to this process, in bytes.

    Reads ``MemAvailable`` from ``/proc/meminfo`` (Linux); falls back to
    :func:`psutil.virtual_memory` when present, then to a conservative 1 GiB
    so ``max_bytes="auto"`` degrades to a small static budget rather than
    failing on exotic platforms.
    """
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        pass
    try:  # pragma: no cover - psutil is not a declared dependency
        import psutil

        return int(psutil.virtual_memory().available)
    except Exception:  # pragma: no cover
        return _FALLBACK_AVAILABLE_BYTES
    return _FALLBACK_AVAILABLE_BYTES  # pragma: no cover


#: A live available-memory read: no arguments, bytes back.  The default is
#: :func:`available_memory_bytes`; the runtime's
#: :class:`~repro.service.runtime.metrics.RssSampler` provides a gauge-backed
#: one so re-planning shows up in the metrics endpoint.
MemoryProbe = Callable[[], int]


def _resolve_budget(
    max_bytes,
    memory_fraction: float,
    memory_probe: Optional[MemoryProbe] = None,
) -> Optional[int]:
    """Turn the ``max_bytes`` argument (int / None / "auto") into bytes.

    ``"auto"`` asks *memory_probe* (default: a fresh
    :func:`available_memory_bytes` read) — callers that re-plan between
    chunks call this again with a live probe, so the budget tracks the
    machine's actual headroom mid-run rather than one planning-time sample.
    """
    if max_bytes is None:
        return None
    if isinstance(max_bytes, str):
        if max_bytes != "auto":
            raise InvalidParameterError(
                f'max_bytes must be a positive int, None, or "auto"; got {max_bytes!r}'
            )
        if not 0.0 < memory_fraction <= 1.0:
            raise InvalidParameterError("memory_fraction must be in (0, 1]")
        probe = memory_probe if memory_probe is not None else available_memory_bytes
        return max(1, int(probe() * memory_fraction))
    if max_bytes <= 0:
        raise InvalidParameterError("max_bytes must be > 0")
    return int(max_bytes)


@dataclass(frozen=True)
class TrialPlan:
    """How one multi-trial run is split along the trial and query axes.

    ``chunk_trials`` is the largest trial count whose working set fits the
    ``max_bytes`` budget (never below one trial: a single trial's row is the
    irreducible unit of work).  ``max_bytes=None`` means one chunk.
    ``cell_bytes`` is the per-cell model the plan was sized with — the
    variant's own estimate when :func:`plan_trials` was told the variant.

    ``chunk_n`` is the query-axis tile width: ``None`` means the full row
    (the classic one-axis plan, bit-identical to the pre-tiling engine);
    an integer switches the chunk onto the two-axis tiled execution path
    (:mod:`repro.engine.tiled`), whose working set is ``chunk_trials ×
    chunk_n`` cells regardless of n.
    """

    trials: int
    n: int
    chunk_trials: int
    max_bytes: Optional[int] = None
    cell_bytes: int = BYTES_PER_CELL
    chunk_n: Optional[int] = None

    @property
    def num_chunks(self) -> int:
        return -(-self.trials // self.chunk_trials)

    @property
    def tiled(self) -> bool:
        """Whether the query axis is tiled (two-axis execution)."""
        return self.chunk_n is not None

    @property
    def num_tiles(self) -> int:
        """Query-axis tiles per trial chunk (1 when untiled)."""
        if self.chunk_n is None or self.n == 0:
            return 1
        return -(-self.n // self.chunk_n)

    @property
    def chunk_bytes(self) -> int:
        """Estimated peak working set of one chunk."""
        width = self.n if self.chunk_n is None else min(self.chunk_n, self.n)
        return self.chunk_trials * width * self.cell_bytes

    def bounds(self) -> List[Tuple[int, int]]:
        """The [start, stop) trial ranges of every chunk, in order."""
        return [
            (start, min(start + self.chunk_trials, self.trials))
            for start in range(0, self.trials, self.chunk_trials)
        ]

    def tile_bounds(self) -> List[Tuple[int, int]]:
        """The [lo, hi) query ranges of every n-tile, in scan order."""
        if self.chunk_n is None:
            return [(0, self.n)]
        return [
            (lo, min(lo + self.chunk_n, self.n))
            for lo in range(0, max(self.n, 1), self.chunk_n)
        ]


def plan_trials(
    trials: int,
    n: int,
    max_bytes: Union[int, str, None] = None,
    variant: Optional[str] = None,
    chunk_n: Optional[int] = None,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    memory_probe: Optional[MemoryProbe] = None,
) -> TrialPlan:
    """Plan the chunking of a ``(trials, n)`` engine run over both axes.

    With *variant* the chunk size is computed from that kernel's own
    bytes-per-cell estimate (Alg. 5's noise-free scan packs half again as
    many trials per chunk as a retraversal run under the same budget).

    ``max_bytes`` may be ``"auto"``: the budget becomes ``memory_fraction``
    of the machine's currently available memory, read through
    *memory_probe* (default :func:`available_memory_bytes`) at call time —
    :mod:`repro.engine.exec` calls back here between chunks, so an auto run
    re-plans against *live* memory instead of one planning-time sample.

    The query axis is tiled only when asked (*chunk_n*) or forced: if even a
    single full-width trial row exceeds the budget, the plan falls back to
    ``chunk_trials=1`` with ``chunk_n = max_bytes // cell`` — the regime the
    full AOL universe (n ≈ 2.3M) lives in.  Otherwise ``chunk_n=None`` and
    the plan is bit-identical to the classic trial-axis-only plan.
    """
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    cell = bytes_per_cell(variant)
    budget = _resolve_budget(max_bytes, memory_fraction, memory_probe)
    if chunk_n is not None:
        if chunk_n <= 0:
            raise InvalidParameterError("chunk_n must be > 0")
        chunk_n = int(min(chunk_n, max(n, 1)))
        if budget is None:
            chunk_trials = trials
        else:
            chunk_trials = max(1, min(int(budget // (chunk_n * cell)), trials))
        return TrialPlan(
            trials=trials, n=n, chunk_trials=chunk_trials, max_bytes=budget,
            cell_bytes=cell, chunk_n=chunk_n,
        )
    if budget is None:
        return TrialPlan(
            trials=trials, n=n, chunk_trials=trials, max_bytes=None, cell_bytes=cell
        )
    per_trial = max(n, 1) * cell
    chunk = int(budget // per_trial)
    if chunk < 1:
        # One full-width row does not fit: tile the query axis instead of
        # silently overshooting the budget (the pre-tiling clamp-to-one-trial
        # behavior is preserved for n so small the tile would equal the row).
        width = max(1, min(int(budget // cell), max(n, 1)))
        if width < max(n, 1):
            return TrialPlan(
                trials=trials, n=n, chunk_trials=1, max_bytes=budget,
                cell_bytes=cell, chunk_n=width,
            )
        chunk = 1
    return TrialPlan(
        trials=trials,
        n=n,
        chunk_trials=max(1, min(chunk, trials)),
        max_bytes=budget,
        cell_bytes=cell,
    )
