"""Per-variant noise plans and trial-chunking plans.

The streaming modules under :mod:`repro.variants` deliberately restate their
scales inline — each is a literal transliteration of its Figure 1 listing —
and the seedwise equivalence tests pin the engine to them.  Within the
engine, however, both the single-run batch entry points
(:mod:`repro.engine.batch`) and the multi-trial layer
(:mod:`repro.engine.trials`) need the same numbers; this table keeps them
from drifting apart.

:class:`TrialPlan` is the execution-side plan: given a ``max_bytes`` budget
it decides how many trials fit in one block of the engine's ``(trials, n)``
working set, so :mod:`repro.engine.exec` can split (and optionally shard)
the trial axis without any block exceeding the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import InvalidParameterError

__all__ = [
    "NoisePlan",
    "noise_plan",
    "TrialPlan",
    "plan_trials",
    "BYTES_PER_CELL",
    "bytes_per_cell",
]


@dataclass(frozen=True)
class NoisePlan:
    """Laplace scales and structure of one variant at (epsilon, c, Delta).

    ``nu_scale=None`` means no query noise (Alg. 5); ``refresh_scale`` is
    set only for Alg. 2's threshold refresh; ``cutoff`` says whether the run
    halts at the c-th positive.
    """

    rho_scale: float
    nu_scale: Optional[float]
    refresh_scale: Optional[float]
    cutoff: bool


def noise_plan(
    key: str, epsilon: float, c: int, delta: float = 1.0, monotonic: bool = False
) -> NoisePlan:
    """The Figure 1 noise scales for one variant key.

    Alg. 1 is not served here: its split is caller-chosen via
    :class:`~repro.core.allocation.BudgetAllocation` (ratio/monotonic), not
    fixed by a listing.  GPTT with an explicit (eps1, eps2) split likewise
    stays with its entry point; ``key="gptt"`` gives the even split (= Alg. 6).
    """
    if key == "alg2":
        eps1 = epsilon / 2.0
        eps2 = epsilon - eps1
        return NoisePlan(
            rho_scale=c * delta / eps1,
            nu_scale=2 * c * delta / eps1,  # the listing scales nu with eps1
            refresh_scale=c * delta / eps2,
            cutoff=True,
        )
    if key == "alg3":
        eps1 = epsilon / 2.0
        return NoisePlan(delta / eps1, c * delta / (epsilon - eps1), None, True)
    if key == "alg4":
        eps1 = epsilon / 4.0
        return NoisePlan(delta / eps1, delta / (epsilon - eps1), None, True)
    if key == "alg5":
        return NoisePlan(delta / (epsilon / 2.0), None, None, False)
    if key in ("alg6", "gptt"):
        eps1 = epsilon / 2.0
        return NoisePlan(delta / eps1, delta / (epsilon - eps1), None, False)
    raise InvalidParameterError(f"no fixed noise plan for variant {key!r}")


#: The variant-agnostic fallback: the threshold-kernel working set (the
#: most common shape), used when the caller doesn't say which kernel runs.
BYTES_PER_CELL = 48


def bytes_per_cell(variant: Optional[str] = None) -> int:
    """Peak working-set bytes per (trial, query) cell of one variant.

    Each kernel module exposes its own measured model (see
    :mod:`repro.engine.kernels` / :mod:`repro.engine.retraversal`); this
    resolves a registry key to the right one.  ``None`` (or an unknown key)
    falls back to the conservative :data:`BYTES_PER_CELL` default.
    """
    if variant is None:
        return BYTES_PER_CELL
    # Imported lazily: kernels/retraversal sit above plans in the package's
    # import order for the trial layer.
    from repro.engine.kernels import (
        DPBOOK_BYTES_PER_CELL,
        NOCUT_BYTES_PER_CELL,
        NOCUT_NONOISE_BYTES_PER_CELL,
        THRESHOLD_BYTES_PER_CELL,
    )
    from repro.engine.retraversal import EM_BYTES_PER_CELL, RETRAVERSAL_BYTES_PER_CELL

    table = {
        "alg1": THRESHOLD_BYTES_PER_CELL,
        "alg2": DPBOOK_BYTES_PER_CELL,
        "alg3": THRESHOLD_BYTES_PER_CELL,
        "alg4": THRESHOLD_BYTES_PER_CELL,
        "alg5": NOCUT_NONOISE_BYTES_PER_CELL,
        "alg6": NOCUT_BYTES_PER_CELL,
        "gptt": NOCUT_BYTES_PER_CELL,
        "retraversal": RETRAVERSAL_BYTES_PER_CELL,
        "em": EM_BYTES_PER_CELL,
    }
    return table.get(str(variant), BYTES_PER_CELL)


@dataclass(frozen=True)
class TrialPlan:
    """How one multi-trial run is split along the trial axis.

    ``chunk_trials`` is the largest trial count whose working set fits the
    ``max_bytes`` budget (never below one trial: a single trial's row is the
    irreducible unit of work).  ``max_bytes=None`` means one chunk.
    ``cell_bytes`` is the per-cell model the plan was sized with — the
    variant's own estimate when :func:`plan_trials` was told the variant.
    """

    trials: int
    n: int
    chunk_trials: int
    max_bytes: Optional[int] = None
    cell_bytes: int = BYTES_PER_CELL

    @property
    def num_chunks(self) -> int:
        return -(-self.trials // self.chunk_trials)

    @property
    def chunk_bytes(self) -> int:
        """Estimated peak working set of one chunk."""
        return self.chunk_trials * self.n * self.cell_bytes

    def bounds(self) -> List[Tuple[int, int]]:
        """The [start, stop) trial ranges of every chunk, in order."""
        return [
            (start, min(start + self.chunk_trials, self.trials))
            for start in range(0, self.trials, self.chunk_trials)
        ]


def plan_trials(
    trials: int,
    n: int,
    max_bytes: Optional[int] = None,
    variant: Optional[str] = None,
) -> TrialPlan:
    """Plan the trial chunking for a ``(trials, n)`` engine run.

    With *variant* the chunk size is computed from that kernel's own
    bytes-per-cell estimate (Alg. 5's noise-free scan packs half again as
    many trials per chunk as a retraversal run under the same budget).
    """
    if trials <= 0:
        raise InvalidParameterError("trials must be > 0")
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    cell = bytes_per_cell(variant)
    if max_bytes is None:
        return TrialPlan(
            trials=trials, n=n, chunk_trials=trials, max_bytes=None, cell_bytes=cell
        )
    if max_bytes <= 0:
        raise InvalidParameterError("max_bytes must be > 0")
    per_trial = max(n, 1) * cell
    chunk = int(max_bytes // per_trial)
    return TrialPlan(
        trials=trials,
        n=n,
        chunk_trials=max(1, min(chunk, trials)),
        max_bytes=int(max_bytes),
        cell_bytes=cell,
    )
