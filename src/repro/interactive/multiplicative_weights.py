"""Private multiplicative weights with an SVT gate (Hardt–Rothblum [12] style).

The substrate behind the paper's interactive motivation: maintain a synthetic
histogram ``x_hat`` over a data domain; answer each linear query from
``x_hat``; use SVT to detect (cheaply) when ``x_hat``'s answer is too wrong;
on detection, pay for a noisy true answer and fold it back into ``x_hat``
with a multiplicative-weights update.  Only "update rounds" — at most c of
them — consume query-answer budget.

Linear queries are vectors ``w in [0, 1]^N`` over the N domain bins; the
answer on a histogram ``h`` (counts, summing to the number of records n) is
``<w, h>``, with sensitivity 1 under add/remove-one-record neighbors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.accounting.budget import BudgetLedger
from repro.core.allocation import BudgetAllocation
from repro.core.base import BELOW
from repro.core.svt import StandardSVT
from repro.exceptions import InvalidParameterError, PrivacyError
from repro.rng import RngLike, ensure_rng

__all__ = ["MWState", "PrivateMultiplicativeWeights"]


@dataclass
class MWState:
    """Bookkeeping of one PMW run (exposed for inspection and tests)."""

    queries_answered: int = 0
    update_rounds: int = 0
    answers: List[float] = field(default_factory=list)
    from_synthetic: List[bool] = field(default_factory=list)


class PrivateMultiplicativeWeights:
    """Answer linear queries over a histogram with PMW + SVT gating.

    Parameters
    ----------
    histogram:
        True counts per domain bin (non-negative; n = sum).
    epsilon:
        Total budget for the session.
    error_threshold:
        SVT threshold T on the absolute error of the synthetic answer.
        A natural scale is a small multiple of sqrt(n).
    c:
        Maximum update rounds.
    learning_rate:
        MW step size eta; the classical analysis uses values around
        ``error_threshold / (2n)``.  Defaults to that when None.
    """

    def __init__(
        self,
        histogram: Sequence[float],
        epsilon: float,
        error_threshold: float,
        c: int,
        learning_rate: Optional[float] = None,
        svt_fraction: float = 0.5,
        rng: RngLike = None,
    ) -> None:
        hist = np.asarray(histogram, dtype=float)
        if hist.ndim != 1 or hist.size < 2:
            raise InvalidParameterError("histogram must be 1-D with at least 2 bins")
        if np.any(hist < 0) or hist.sum() <= 0:
            raise InvalidParameterError("histogram must be non-negative with positive total")
        if error_threshold <= 0:
            raise InvalidParameterError("error_threshold must be > 0")
        if not 0.0 < svt_fraction < 1.0:
            raise InvalidParameterError("svt_fraction must be in (0, 1)")
        self._hist = hist
        self._n = float(hist.sum())
        self._threshold = float(error_threshold)
        self._c = int(c)
        self._rng = ensure_rng(rng)
        self._eta = (
            float(learning_rate)
            if learning_rate is not None
            else self._threshold / (2.0 * self._n)
        )
        if self._eta <= 0:
            raise InvalidParameterError("learning_rate must be > 0")

        # Synthetic histogram starts uniform with the right total mass.
        self._synthetic = np.full(hist.size, self._n / hist.size)

        self.ledger = BudgetLedger.with_total(epsilon)
        eps_svt = epsilon * svt_fraction
        eps_answers = epsilon - eps_svt
        allocation = BudgetAllocation.from_ratio(eps_svt, self._c, ratio="optimal")
        self._svt = StandardSVT(allocation, sensitivity=1.0, c=self._c, rng=self._rng)
        self.ledger.charge("svt-gate", eps_svt, note="PMW error tests")
        self._eps_per_update = eps_answers / self._c
        self.state = MWState()

    # ------------------------------------------------------------------
    @property
    def synthetic_histogram(self) -> np.ndarray:
        """The current public synthetic histogram (safe to release)."""
        return self._synthetic.copy()

    @property
    def exhausted(self) -> bool:
        return self._svt.halted

    @property
    def update_rounds(self) -> int:
        return self.state.update_rounds

    # ------------------------------------------------------------------
    def _check_query(self, weights: Sequence[float]) -> np.ndarray:
        w = np.asarray(weights, dtype=float)
        if w.shape != self._hist.shape:
            raise InvalidParameterError(
                f"query has {w.size} weights for {self._hist.size} bins"
            )
        if np.any((w < 0.0) | (w > 1.0)):
            raise InvalidParameterError("linear query weights must lie in [0, 1]")
        return w

    def answer(self, weights: Sequence[float]) -> float:
        """Answer one linear query ``<w, histogram>``.

        Returns the synthetic answer when it passes the SVT error test, else
        a fresh Laplace answer (which also updates the synthetic histogram).
        """
        if self.exhausted:
            raise PrivacyError(
                "PMW session exhausted: all c update rounds consumed"
            )
        w = self._check_query(weights)
        synthetic_answer = float(w @ self._synthetic)
        true_answer = float(w @ self._hist)
        error = abs(synthetic_answer - true_answer)
        outcome = self._svt.process(error, threshold=self._threshold)
        self.state.queries_answered += 1
        if outcome is BELOW:
            self.state.answers.append(synthetic_answer)
            self.state.from_synthetic.append(True)
            return synthetic_answer
        noisy_true = true_answer + float(
            self._rng.laplace(scale=1.0 / self._eps_per_update)
        )
        self.ledger.charge(
            "laplace-update",
            self._eps_per_update,
            note=f"update round {self.state.update_rounds}",
        )
        self._update(w, noisy_true, synthetic_answer)
        self.state.update_rounds += 1
        self.state.answers.append(noisy_true)
        self.state.from_synthetic.append(False)
        return noisy_true

    def _update(self, w: np.ndarray, noisy_true: float, synthetic_answer: float) -> None:
        """One multiplicative-weights step toward the noisy true answer.

        If the synthetic answer was too low, up-weight the bins the query
        touches; if too high, down-weight them.  Mass is renormalized to n.
        """
        direction = 1.0 if noisy_true > synthetic_answer else -1.0
        self._synthetic = self._synthetic * np.exp(direction * self._eta * w)
        self._synthetic *= self._n / self._synthetic.sum()

    def max_error_on(self, queries: Sequence[Sequence[float]]) -> float:
        """Max |synthetic - true| over a set of queries (evaluation helper).

        Uses the private histogram, so this is for offline evaluation of the
        reproduction, not something to release.
        """
        worst = 0.0
        for weights in queries:
            w = self._check_query(weights)
            worst = max(worst, abs(float(w @ self._synthetic) - float(w @ self._hist)))
        return worst
