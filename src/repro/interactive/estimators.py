"""Pluggable history estimators for the online query answerer.

The iterative-construction pattern lives or dies by how well answers can be
*derived* from history: the better the estimator, the more queries clear the
SVT gate for free.  :class:`~repro.interactive.online.OnlineQueryAnswerer`
accepts any callable ``(query, history) -> float``; this module provides the
standard strategies:

* :class:`ExactRepeatEstimator` — replay the last release for an identical
  query, else a fixed prior (the default behaviour of the answerer).
* :class:`MeanEstimator` — the running mean of all releases (a one-number
  model; surprisingly strong for concentrated workloads).
* :class:`NearestSupportEstimator` — for itemset-support queries: the
  smallest released support among supersets is an upper bound, the largest
  among subsets a lower bound (anti-monotonicity of support); estimates by
  the midpoint of the implied interval.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.queries.base import Query
from repro.queries.counting import ItemsetSupportQuery

__all__ = ["ExactRepeatEstimator", "MeanEstimator", "NearestSupportEstimator"]

History = List[Tuple[Query, float]]


class ExactRepeatEstimator:
    """Replay the most recent release of an identical query, else the prior."""

    def __init__(self, prior: float = 0.0) -> None:
        self.prior = float(prior)

    def __call__(self, query: Query, history: History) -> float:
        for past_query, past_answer in reversed(history):
            if repr(past_query) == repr(query):
                return past_answer
        return self.prior


class MeanEstimator:
    """The running mean of all released answers (prior when history is empty)."""

    def __init__(self, prior: float = 0.0) -> None:
        self.prior = float(prior)

    def __call__(self, query: Query, history: History) -> float:
        if not history:
            return self.prior
        return sum(answer for _, answer in history) / len(history)


class NearestSupportEstimator:
    """Interval estimator for itemset supports using anti-monotonicity.

    support(S) <= support(T) whenever T ⊆ S, so released supports of
    supersets/subsets of the queried itemset bracket its true value.  The
    estimate is the interval midpoint; with no related history it falls back
    to *prior* (e.g. a public guess like ``num_records / 2``).

    Only :class:`ItemsetSupportQuery` instances get the interval treatment;
    other query types fall back to exact-repeat behaviour.
    """

    def __init__(self, prior: float = 0.0, ceiling: Optional[float] = None) -> None:
        self.prior = float(prior)
        self.ceiling = None if ceiling is None else float(ceiling)

    def __call__(self, query: Query, history: History) -> float:
        if not isinstance(query, ItemsetSupportQuery):
            return ExactRepeatEstimator(self.prior)(query, history)
        target = set(query.itemset)
        upper = self.ceiling
        lower = 0.0
        exact: Optional[float] = None
        for past_query, past_answer in history:
            if not isinstance(past_query, ItemsetSupportQuery):
                continue
            past_set = set(past_query.itemset)
            if past_set == target:
                exact = past_answer
            elif past_set < target:
                # Subset: its support upper-bounds ours.
                upper = past_answer if upper is None else min(upper, past_answer)
            elif past_set > target:
                # Superset: its support lower-bounds ours.
                lower = max(lower, past_answer)
        if exact is not None:
            return exact
        if upper is None:
            return max(self.prior, lower)
        return (max(lower, 0.0) + max(upper, lower, 0.0)) / 2.0
