"""The interactive setting: where SVT genuinely earns its keep.

Section 1 of the paper recalls why SVT matters interactively: lower bounds
forbid answering linearly-many queries with small noise, but the iterative
construction approach of [11, 12, 16] bypasses them by answering most queries
from *history* and using SVT to detect — nearly for free — the few queries
whose derived answers are too wrong.

* :mod:`repro.interactive.online` — an online query-answering server with the
  history-first pattern, using the **corrected** error check from Section 3.4
  (``|q~ - q(D)| + nu >= T + rho``, noise *outside* the absolute value).
* :mod:`repro.interactive.multiplicative_weights` — private multiplicative
  weights over a histogram domain (the Hardt–Rothblum [12] substrate), with
  the SVT gate deciding when to spend budget on a real answer.
"""

from repro.interactive.estimators import (
    ExactRepeatEstimator,
    MeanEstimator,
    NearestSupportEstimator,
)
from repro.interactive.online import OnlineAnswer, OnlineQueryAnswerer
from repro.interactive.multiplicative_weights import (
    MWState,
    PrivateMultiplicativeWeights,
)

__all__ = [
    "OnlineQueryAnswerer",
    "OnlineAnswer",
    "PrivateMultiplicativeWeights",
    "MWState",
    "ExactRepeatEstimator",
    "MeanEstimator",
    "NearestSupportEstimator",
]
