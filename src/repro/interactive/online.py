"""Online query answering with an SVT gate (the iterative-construction pattern).

The server keeps a history of (query, released answer) pairs.  For each new
query it derives an estimate from history; SVT then tests — without spending
per-query budget — whether the estimate's error exceeds a threshold.  Only
when the test fires does the server touch the database with the Laplace
mechanism, at real budget cost.  With at most c firings allowed, the whole
run costs ``eps_svt + c * eps_answer`` regardless of how many queries were
asked: the "answer many queries for a constant budget" trick.

Crucially, the error check is the **corrected** one from Section 3.4.  The
versions in [12, 16] tested ``|q~ - q(D) + nu| >= T + rho`` (noise inside the
absolute value), whose left side is always >= 0 — so any ⊤ reveals
``rho >= -T``, leaking the threshold noise just like Alg. 3's numeric
outputs.  The fix is to treat ``r_i = |q~ - q(D)|`` as the query and add the
noise outside: ``r_i + nu >= T + rho``.

Since the multi-tenant service landed, the gate/ledger/estimator machinery
lives in :class:`repro.service.session.Session`; this class is the historical
single-session facade over exactly one such session.  A serving deployment
that wants cross-session batching opens sessions through
:class:`repro.service.SVTQueryService` instead — the session semantics (and,
per seed, the released bits) are identical.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import InvalidParameterError
from repro.queries.base import Query
from repro.rng import RngLike
from repro.service.session import EstimatorFn, OnlineAnswer, Session

__all__ = ["OnlineAnswer", "OnlineQueryAnswerer"]


class OnlineQueryAnswerer:
    """Answer an adaptive stream of queries under a fixed total budget.

    A thin wrapper over one :class:`~repro.service.session.Session` — see
    that class for the gate, ledger, and estimator details.

    Parameters
    ----------
    dataset:
        The private dataset, passed to ``query.evaluate``.
    epsilon:
        Total privacy budget for the whole interactive session.
    error_threshold:
        The T of the SVT test on the derived answer's error: estimates with
        (noisy) error below T are served from history.
    c:
        Maximum number of database accesses (SVT positives).
    svt_fraction:
        Fraction of *epsilon* funding the SVT gate; the rest is split evenly
        across the c Laplace answers.
    """

    def __init__(
        self,
        dataset,
        epsilon: float,
        error_threshold: float,
        c: int,
        svt_fraction: float = 0.5,
        sensitivity: float = 1.0,
        estimator: Optional[EstimatorFn] = None,
        rng: RngLike = None,
    ) -> None:
        self._session = Session(
            dataset,
            epsilon=epsilon,
            error_threshold=error_threshold,
            c=c,
            svt_fraction=svt_fraction,
            sensitivity=sensitivity,
            estimator=estimator,
            rng=rng,
            tenant="online",
        )

    @property
    def session(self) -> Session:
        """The underlying service session (gate state, ledger, audit log)."""
        return self._session

    @property
    def ledger(self):
        return self._session.ledger

    @property
    def history(self) -> List[tuple]:
        return self._session.history

    @property
    def exhausted(self) -> bool:
        """True when the c database accesses are used up — the session is over."""
        return self._session.exhausted

    @property
    def database_accesses(self) -> int:
        return self._session.database_accesses

    def answer(self, query: Query) -> OnlineAnswer:
        """Serve one query: history if the SVT gate allows, else the database."""
        if not isinstance(query, Query):
            raise InvalidParameterError("answer() expects a Query instance")
        return self._session.answer(query)
