"""Online query answering with an SVT gate (the iterative-construction pattern).

The server keeps a history of (query, released answer) pairs.  For each new
query it derives an estimate from history; SVT then tests — without spending
per-query budget — whether the estimate's error exceeds a threshold.  Only
when the test fires does the server touch the database with the Laplace
mechanism, at real budget cost.  With at most c firings allowed, the whole
run costs ``eps_svt + c * eps_answer`` regardless of how many queries were
asked: the "answer many queries for a constant budget" trick.

Crucially, the error check is the **corrected** one from Section 3.4.  The
versions in [12, 16] tested ``|q~ - q(D) + nu| >= T + rho`` (noise inside the
absolute value), whose left side is always >= 0 — so any ⊤ reveals
``rho >= -T``, leaking the threshold noise just like Alg. 3's numeric
outputs.  The fix is to treat ``r_i = |q~ - q(D)|`` as the query and add the
noise outside: ``r_i + nu >= T + rho``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.accounting.budget import BudgetLedger
from repro.core.allocation import BudgetAllocation
from repro.core.base import BELOW
from repro.core.svt import StandardSVT
from repro.exceptions import InvalidParameterError, PrivacyError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.queries.base import Query
from repro.rng import RngLike, ensure_rng

__all__ = ["OnlineAnswer", "OnlineQueryAnswerer"]

#: Derives an estimate for a query from the answer history.  Receives the
#: query and the history list of (query, answer) pairs; returns the estimate.
EstimatorFn = Callable[[Query, List[tuple]], float]


def _default_estimator(query: Query, history: List[tuple]) -> float:
    """Answer from history: exact past answer if the query repeats, else the mean.

    Deliberately simple — the contract is "any function of *released* data is
    free", and repeated/correlated query streams are where it shines.  The MW
    substrate provides a much stronger estimator for linear queries.
    """
    for past_query, past_answer in reversed(history):
        if repr(past_query) == repr(query):
            return past_answer
    if history:
        return sum(ans for _, ans in history) / len(history)
    return 0.0


@dataclass(frozen=True)
class OnlineAnswer:
    """One served answer and how it was produced.

    ``from_history`` is True when the SVT gate said the derived answer was
    good enough (no budget spent on this query beyond the shared SVT charge).
    """

    value: float
    from_history: bool
    query_index: int


class OnlineQueryAnswerer:
    """Answer an adaptive stream of queries under a fixed total budget.

    Parameters
    ----------
    dataset:
        The private dataset, passed to ``query.evaluate``.
    epsilon:
        Total privacy budget for the whole interactive session.
    error_threshold:
        The T of the SVT test on the derived answer's error: estimates with
        (noisy) error below T are served from history.
    c:
        Maximum number of database accesses (SVT positives).
    svt_fraction:
        Fraction of *epsilon* funding the SVT gate; the rest is split evenly
        across the c Laplace answers.
    """

    def __init__(
        self,
        dataset,
        epsilon: float,
        error_threshold: float,
        c: int,
        svt_fraction: float = 0.5,
        sensitivity: float = 1.0,
        estimator: Optional[EstimatorFn] = None,
        rng: RngLike = None,
    ) -> None:
        if not 0.0 < svt_fraction < 1.0:
            raise InvalidParameterError("svt_fraction must be in (0, 1)")
        if error_threshold < 0.0:
            raise InvalidParameterError("error_threshold must be >= 0")
        self._dataset = dataset
        self._rng = ensure_rng(rng)
        self._estimator = estimator or _default_estimator
        self._sensitivity = float(sensitivity)
        self._c = int(c)
        self._threshold = float(error_threshold)

        self.ledger = BudgetLedger.with_total(epsilon)
        eps_svt = epsilon * svt_fraction
        eps_answers = epsilon - eps_svt
        # The error query r = |q~ - q(D)| has the same sensitivity as q
        # (|r(D) - r(D')| <= |q(D) - q(D')| by the reverse triangle
        # inequality), and is generally NOT monotonic even for monotonic q.
        allocation = BudgetAllocation.from_ratio(eps_svt, self._c, ratio="optimal")
        self._svt = StandardSVT(
            allocation, sensitivity=self._sensitivity, c=self._c, rng=self._rng
        )
        self.ledger.charge("svt-gate", eps_svt, note="threshold test for all queries")
        self._eps_per_answer = eps_answers / self._c
        self._laplace = LaplaceMechanism(self._eps_per_answer, self._sensitivity)
        self.history: List[tuple] = []
        self._served = 0

    @property
    def exhausted(self) -> bool:
        """True when the c database accesses are used up — the session is over."""
        return self._svt.halted

    @property
    def database_accesses(self) -> int:
        return self._svt.count

    def answer(self, query: Query) -> OnlineAnswer:
        """Serve one query: history if the SVT gate allows, else the database."""
        if not isinstance(query, Query):
            raise InvalidParameterError("answer() expects a Query instance")
        if self.exhausted:
            raise PrivacyError(
                "interactive session exhausted: c database accesses used; "
                "further queries would exceed the privacy budget"
            )
        if query.sensitivity > self._sensitivity:
            raise PrivacyError(
                f"query sensitivity {query.sensitivity} exceeds the session bound "
                f"{self._sensitivity}"
            )
        estimate = float(self._estimator(query, self.history))
        true_answer = float(query.evaluate(self._dataset))
        # Corrected Section-3.4 check: the error |q~ - q(D)| is the SVT query.
        error = abs(estimate - true_answer)
        outcome = self._svt.process(error, threshold=self._threshold)
        index = self._served
        self._served += 1
        if outcome is BELOW:
            served = OnlineAnswer(value=estimate, from_history=True, query_index=index)
        else:
            noisy = float(self._laplace.release(true_answer, rng=self._rng))
            self.ledger.charge(
                "laplace-answer", self._eps_per_answer, note=f"query #{index}"
            )
            self.history.append((query, noisy))
            served = OnlineAnswer(value=noisy, from_history=False, query_index=index)
        return served
