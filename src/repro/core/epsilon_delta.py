"""(eps, delta)-DP SVT via advanced composition (the Section 3.4 direction).

The paper restricts its analysis to pure eps-DP but notes (Section 3.4) that
some SVT usages target (eps, delta)-DP by exploiting the advanced
composition theorem [9]: k eps_0-DP mechanisms compose to

    eps' = sqrt(2 k ln(1/delta)) eps_0 + k eps_0 (e^{eps_0} - 1),   delta.

Applied to SVT, the c positive outcomes are the composed sub-mechanisms: for
a target (eps2, delta) one can find the largest per-positive budget eps_0
whose c-fold advanced composition stays within eps2, and add query noise
``Lap(2*Delta/eps_0)`` instead of ``Lap(2c*Delta/eps2)``.  For large c this
shrinks the query noise from Theta(c) to Theta(sqrt(c * ln(1/delta))) — the
asymptotic win that motivates (eps, delta) variants.

This module provides the scale computation and a batch runner mirroring
:func:`repro.core.svt.run_svt_batch`.  The privacy argument is: the
threshold perturbation is eps1-DP (Lemma 1 handles all negatives), each
positive outcome is an eps_0-DP event by the Theorem-2 argument applied with
c = 1, and the at-most-c positives compose advancedly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.base import SVTResult, normalize_thresholds
from repro.core.base import ABOVE, BELOW
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = ["EpsilonDeltaAllocation", "per_positive_epsilon", "run_svt_epsilon_delta"]


def per_positive_epsilon(
    eps2: float, delta: float, c: int, tolerance: float = 1e-12
) -> float:
    """Largest eps_0 with ``advanced_composition(eps_0, c, delta) <= eps2``.

    Monotone in eps_0, solved by bisection.  For c = 1 this returns a value
    close to (but below) eps2 — the advanced-composition overhead means the
    pure-DP scale is better for small c, which callers can check via
    :meth:`EpsilonDeltaAllocation.beats_pure_dp`.
    """
    eps2 = float(eps2)
    delta = float(delta)
    if eps2 <= 0.0 or not math.isfinite(eps2):
        raise InvalidParameterError(f"eps2 must be finite and > 0, got {eps2!r}")
    if not 0.0 < delta < 1.0:
        raise InvalidParameterError(f"delta must be in (0, 1), got {delta!r}")
    if not isinstance(c, (int, np.integer)) or int(c) <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")

    def composed(eps_0: float) -> float:
        return math.sqrt(2.0 * c * math.log(1.0 / delta)) * eps_0 + c * eps_0 * (
            math.exp(eps_0) - 1.0
        )

    lo, hi = 0.0, eps2
    while composed(hi) <= eps2:  # pragma: no cover - eps2 tiny enough already
        lo, hi = hi, hi * 2.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if composed(mid) <= eps2:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    if lo <= 0.0:
        raise InvalidParameterError(
            "no positive per-round epsilon satisfies the composition target; "
            "increase eps2 or delta"
        )
    return lo


@dataclass(frozen=True)
class EpsilonDeltaAllocation:
    """Budget split for (eps1 + eps2, delta)-DP SVT.

    ``eps1`` funds the threshold noise exactly as in Alg. 7; ``eps2`` and
    ``delta`` fund the positives through advanced composition.
    """

    eps1: float
    eps2: float
    delta: float
    c: int

    def __post_init__(self) -> None:
        if self.eps1 <= 0.0 or self.eps2 <= 0.0:
            raise InvalidParameterError("eps1 and eps2 must both be > 0")
        if not 0.0 < self.delta < 1.0:
            raise InvalidParameterError("delta must be in (0, 1)")
        if self.c <= 0:
            raise InvalidParameterError("c must be a positive integer")

    @property
    def per_positive(self) -> float:
        return per_positive_epsilon(self.eps2, self.delta, self.c)

    def query_noise_scale(self, sensitivity: float = 1.0, monotonic: bool = False) -> float:
        """``2*Delta/eps_0`` per query (``Delta/eps_0`` for monotonic queries)."""
        factor = 1.0 if monotonic else 2.0
        return factor * float(sensitivity) / self.per_positive

    def pure_dp_scale(self, sensitivity: float = 1.0, monotonic: bool = False) -> float:
        """The Theorem-2 pure-DP scale for the same eps2, for comparison."""
        factor = self.c if monotonic else 2 * self.c
        return factor * float(sensitivity) / self.eps2

    def beats_pure_dp(self, monotonic: bool = False) -> bool:
        """True when the (eps, delta) route adds *less* query noise.

        Happens for large c: the advanced-composition scale grows like
        sqrt(c ln(1/delta)) while the pure scale grows like c.
        """
        return self.query_noise_scale(monotonic=monotonic) < self.pure_dp_scale(
            monotonic=monotonic
        )


def run_svt_epsilon_delta(
    answers: Sequence[float],
    allocation: EpsilonDeltaAllocation,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    rng: RngLike = None,
) -> SVTResult:
    """Vectorized (eps1 + eps2, delta)-DP SVT run.

    Identical control flow to :func:`repro.core.svt.run_svt_batch`; only the
    query-noise scale differs (advanced-composition scale instead of the
    c-scaled pure-DP scale).
    """
    values = np.asarray(answers, dtype=float)
    if values.ndim != 1:
        raise InvalidParameterError("answers must be a 1-D sequence")
    if float(sensitivity) <= 0.0 or not math.isfinite(float(sensitivity)):
        raise InvalidParameterError(f"sensitivity must be finite and > 0, got {sensitivity!r}")
    n = values.size
    thr = normalize_thresholds(thresholds, n)
    gen = ensure_rng(rng)

    delta_q = float(sensitivity)
    rho = float(gen.laplace(scale=delta_q / allocation.eps1))
    nu = gen.laplace(scale=allocation.query_noise_scale(delta_q, monotonic), size=n)

    above = values + nu >= thr + rho
    cum = np.cumsum(above)
    hit = np.nonzero(cum == allocation.c)[0]
    if hit.size:
        processed = int(hit[0]) + 1
        halted = True
    else:
        processed = n
        halted = False
    positives = np.nonzero(above[:processed])[0]
    above_set = set(positives.tolist())
    return SVTResult(
        answers=[ABOVE if i in above_set else BELOW for i in range(processed)],
        positives=[int(i) for i in positives],
        processed=processed,
        halted=halted,
        noisy_threshold_trace=[rho],
    )
