"""The paper's proposed SVT: Alg. 1 and the generalized Alg. 7.

Two implementations are provided on purpose:

* :class:`StandardSVT` — an exact, query-at-a-time transliteration of Alg. 7
  (Figure 1).  This is the form usable in the *interactive* setting, where
  queries arrive one by one and the mechanism must answer before seeing the
  next.  Alg. 1 is the instantiation ``eps1 = eps/2, eps3 = 0`` (see
  :func:`svt_alg1`).
* :func:`run_svt_batch` — a vectorized run over a whole query-answer array,
  used by the experiment harness where a single trial may traverse millions
  of queries.  It samples the very same random variables (one rho, one nu per
  examined query) and therefore has exactly the same output distribution as
  the streaming form; a distributional test enforces this.

Privacy (Theorems 2, 4, 5):  the full mechanism is
``(eps1 + eps2 + eps3)``-DP; with ``monotonic=True`` the query-noise scale
drops from ``2c*Delta/eps2`` to ``c*Delta/eps2``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.base import ABOVE, BELOW, Answer, Response, SVTResult, normalize_thresholds
from repro.exceptions import InvalidParameterError, PrivacyError
from repro.rng import RngLike, ensure_rng

__all__ = ["StandardSVT", "svt_alg1", "run_svt", "run_svt_batch"]


def _validate_common(sensitivity: float, c: int) -> None:
    if float(sensitivity) <= 0.0 or not math.isfinite(float(sensitivity)):
        raise InvalidParameterError(
            f"sensitivity must be finite and > 0, got {sensitivity!r}"
        )
    if not isinstance(c, (int, np.integer)) or int(c) <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")


class StandardSVT:
    """Alg. 7 — "Our Proposed Standard SVT" — as an interactive object.

    Parameters
    ----------
    allocation:
        The ``(eps1, eps2, eps3)`` split.  Use
        :meth:`repro.core.allocation.BudgetAllocation.from_ratio` to build one
        from a total budget and a named ratio.
    sensitivity:
        Global sensitivity ``Delta`` shared by all queries.
    c:
        Cutoff: the run halts after c positive outcomes.
    monotonic:
        When True, all queries are promised to be monotonic (Section 4.3) and
        the query noise scale is ``c*Delta/eps2`` instead of ``2c*Delta/eps2``
        (Theorem 5).  The numeric phase keeps scale ``c*Delta/eps3``.
    rng:
        Seed or generator for all noise in this run.

    Examples
    --------
    >>> alloc = BudgetAllocation.from_ratio(epsilon=1.0, c=2, ratio="1:1")
    >>> svt = StandardSVT(alloc, sensitivity=1.0, c=2, rng=7)
    >>> out = [svt.process(v, threshold=10.0) for v in [0.0, 3.0, 250.0]]
    >>> out[2]
    ⊤
    """

    def __init__(
        self,
        allocation: BudgetAllocation,
        sensitivity: float = 1.0,
        c: int = 1,
        monotonic: bool = False,
        rng: RngLike = None,
    ) -> None:
        if not isinstance(allocation, BudgetAllocation):
            raise InvalidParameterError(
                "allocation must be a BudgetAllocation; build one with "
                "BudgetAllocation.from_ratio(...)"
            )
        _validate_common(sensitivity, c)
        self.allocation = allocation
        self.sensitivity = float(sensitivity)
        self.c = int(c)
        self.monotonic = bool(monotonic)
        self._rng = ensure_rng(rng)
        # Line 1 of Alg. 7: perturb the threshold once for the whole run.
        self._rho = float(self._rng.laplace(scale=self.threshold_noise_scale))
        self._count = 0
        self._halted = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Noise scales (the heart of the Figure 2 comparison).
    # ------------------------------------------------------------------
    @property
    def threshold_noise_scale(self) -> float:
        """``Delta/eps1`` — crucially *without* the factor c of Alg. 2."""
        return self.sensitivity / self.allocation.eps1

    @property
    def query_noise_scale(self) -> float:
        """``2c*Delta/eps2`` in general, ``c*Delta/eps2`` for monotonic queries."""
        factor = self.c if self.monotonic else 2 * self.c
        return factor * self.sensitivity / self.allocation.eps2

    @property
    def numeric_noise_scale(self) -> Optional[float]:
        """``c*Delta/eps3`` when the numeric phase is enabled, else None."""
        if self.allocation.eps3 <= 0.0:
            return None
        return self.c * self.sensitivity / self.allocation.eps3

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        """True once c positive outcomes have been produced (Line 9 abort)."""
        return self._halted

    @property
    def count(self) -> int:
        """Positive outcomes so far."""
        return self._count

    @property
    def processed(self) -> int:
        """Queries answered so far."""
        return self._processed

    @property
    def remaining_positives(self) -> int:
        return self.c - self._count

    def _noisy_threshold(self, threshold: float) -> float:
        return float(threshold) + self._rho

    # ------------------------------------------------------------------
    # The algorithm.
    # ------------------------------------------------------------------
    def process(self, true_answer: float, threshold: float = 0.0) -> Answer:
        """Answer one query (Lines 2-11 of Alg. 7).

        *true_answer* is ``q_i(D)`` — the caller evaluates the query on the
        private data; this object only ever sees the numeric answer, which
        keeps it usable with any data substrate.

        Raises :class:`PrivacyError` when called after the cutoff: answering
        more queries after c positives would exceed the stated budget.
        """
        if self._halted:
            raise PrivacyError(
                "SVT has halted: the cutoff of c positive outcomes was reached; "
                "answering further queries would exceed the privacy budget"
            )
        value = float(true_answer)
        nu = float(self._rng.laplace(scale=self.query_noise_scale))
        self._processed += 1
        if value + nu >= self._noisy_threshold(threshold):
            self._count += 1
            if self._count >= self.c:
                self._halted = True
            numeric_scale = self.numeric_noise_scale
            if numeric_scale is not None:
                return value + float(self._rng.laplace(scale=numeric_scale))
            return ABOVE
        return BELOW

    def run(
        self,
        answers: Iterable[float],
        thresholds: Union[float, Sequence[float]] = 0.0,
    ) -> SVTResult:
        """Consume a stream of true answers until cutoff or stream end."""
        result = SVTResult(noisy_threshold_trace=[self._rho])
        thresholds_arr: Optional[np.ndarray] = None
        if not np.isscalar(thresholds):
            thresholds_arr = np.asarray(thresholds, dtype=float)
        for i, value in enumerate(answers):
            if self._halted:
                break
            threshold = (
                float(thresholds)
                if thresholds_arr is None
                else float(thresholds_arr[min(i, thresholds_arr.size - 1)])
            )
            answer = self.process(value, threshold)
            result.answers.append(answer)
            if answer is not BELOW:
                result.positives.append(i)
        result.processed = len(result.answers)
        result.halted = self._halted
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        a = self.allocation
        return (
            f"StandardSVT(eps1={a.eps1:g}, eps2={a.eps2:g}, eps3={a.eps3:g}, "
            f"Delta={self.sensitivity:g}, c={self.c}, monotonic={self.monotonic})"
        )


def svt_alg1(
    epsilon: float,
    sensitivity: float = 1.0,
    c: int = 1,
    rng: RngLike = None,
) -> StandardSVT:
    """Alg. 1 — the paper's headline instantiation: eps1 = eps/2, eps3 = 0."""
    epsilon = float(epsilon)
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    allocation = BudgetAllocation(eps1=epsilon / 2.0, eps2=epsilon / 2.0, eps3=0.0)
    return StandardSVT(allocation, sensitivity=sensitivity, c=c, monotonic=False, rng=rng)


def run_svt(
    answers: Iterable[float],
    epsilon: float,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    ratio: Union[str, float] = "1:1",
    monotonic: bool = False,
    numeric_fraction: float = 0.0,
    rng: RngLike = None,
) -> SVTResult:
    """One-shot convenience wrapper: build a :class:`StandardSVT` and run it."""
    allocation = BudgetAllocation.from_ratio(
        epsilon, c, ratio=ratio, monotonic=monotonic, numeric_fraction=numeric_fraction
    )
    svt = StandardSVT(allocation, sensitivity=sensitivity, c=c, monotonic=monotonic, rng=rng)
    return svt.run(answers, thresholds)


def run_svt_batch(
    answers: Sequence[float],
    allocation: BudgetAllocation,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    rng: RngLike = None,
) -> SVTResult:
    """Vectorized Alg. 7 over a fixed array of true answers.

    Semantically identical to ``StandardSVT(...).run(answers, thresholds)``:
    one threshold noise draw, independent query noise per examined query, halt
    at the c-th positive.  Noise for queries after the halt point is sampled
    but discarded, which does not change the output distribution (the
    discarded variates are independent of everything released).

    Returns an :class:`SVTResult`; numeric answers are produced when
    ``allocation.eps3 > 0``.
    """
    _validate_common(sensitivity, c)
    values = np.asarray(answers, dtype=float)
    if values.ndim != 1:
        raise InvalidParameterError("answers must be a 1-D sequence")
    n = values.size
    thr = normalize_thresholds(thresholds, n)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    rho = float(gen.laplace(scale=delta / allocation.eps1))
    factor = c if monotonic else 2 * c
    nu = gen.laplace(scale=factor * delta / allocation.eps2, size=n)

    above = values + nu >= thr + rho
    cum = np.cumsum(above)
    # Index of the c-th positive, if any: the run halts right after it.
    hit = np.nonzero(cum == c)[0]
    if hit.size and above[hit[0]]:
        processed = int(hit[0]) + 1
        halted = True
    else:
        processed = n
        halted = False

    positives = np.nonzero(above[:processed])[0]
    result = SVTResult(
        processed=processed,
        halted=halted,
        positives=[int(i) for i in positives],
        noisy_threshold_trace=[rho],
    )
    if allocation.eps3 > 0.0:
        numeric_scale = c * delta / allocation.eps3
        noisy_vals = values[positives] + gen.laplace(scale=numeric_scale, size=positives.size)
        numeric = dict(zip(positives.tolist(), noisy_vals.tolist()))
        result.answers = [
            (numeric[i] if i in numeric else BELOW) for i in range(processed)
        ]
    else:
        above_set = set(positives.tolist())
        result.answers = [ABOVE if i in above_set else BELOW for i in range(processed)]
    return result
