"""Privacy-budget allocation between threshold noise and query noise (Sec. 4.2).

Alg. 7 splits its indicator-phase budget into ``eps1`` (threshold noise
``rho = Lap(Delta/eps1)``) and ``eps2`` (query noise ``nu = Lap(2c*Delta/eps2)``,
or ``Lap(c*Delta/eps2)`` in the monotonic case).  The accuracy of each
comparison ``q_i + nu_i >= T_i + rho`` is governed by the variance of
``rho - nu_i``:

    Var = 2*(Delta/eps1)^2 + 2*(2c*Delta/eps2)^2        (general)
    Var = 2*(Delta/eps1)^2 + 2*(c*Delta/eps2)^2          (monotonic)

Minimizing subject to ``eps1 + eps2 = eps`` gives (paper Eq. (12))

    eps1 : eps2 = 1 : (2c)^(2/3)        (general)
    eps1 : eps2 = 1 : c^(2/3)            (monotonic)

This module provides the named ratios evaluated in Section 6 ("1:1", "1:3",
"1:c", "1:c^(2/3)") plus the general-case optimum, the variance model, and a
grid-search helper used by tests to confirm the closed-form optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

from repro.exceptions import InvalidParameterError

__all__ = [
    "BudgetAllocation",
    "allocate",
    "comparison_variance",
    "comparison_std",
    "optimal_ratio_exponent_weight",
    "grid_search_allocation",
    "RATIO_NAMES",
]

#: Named eps1:eps2 ratios from the paper's evaluation (Figure 4 legends).
RATIO_NAMES = ("1:1", "1:3", "1:c", "1:c^(2/3)", "1:(2c)^(2/3)")


def _query_noise_factor(c: int, monotonic: bool) -> float:
    """The multiplier on ``Delta/eps2`` in the query-noise scale."""
    return float(c) if monotonic else 2.0 * float(c)


def _validate(epsilon: float, c: int) -> Tuple[float, int]:
    epsilon = float(epsilon)
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    if not isinstance(c, (int,)) or c <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    return epsilon, c


def optimal_ratio_exponent_weight(c: int, monotonic: bool = False) -> float:
    """The eps2-side weight of the optimal ratio: ``(2c)^(2/3)`` or ``c^(2/3)``."""
    if c <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    base = float(c) if monotonic else 2.0 * float(c)
    return base ** (2.0 / 3.0)


def _ratio_weight(ratio: Union[str, float], c: int, monotonic: bool) -> float:
    """Resolve a ratio spec to the weight w in ``eps1:eps2 = 1:w``."""
    if isinstance(ratio, str):
        name = ratio.strip().lower().replace(" ", "")
        if name == "1:1":
            return 1.0
        if name == "1:3":
            return 3.0
        if name == "1:c":
            return float(c)
        if name in ("1:c^(2/3)", "1:c^(2⁄3)", "1:c23", "1:c^2/3"):
            return float(c) ** (2.0 / 3.0)
        if name in ("1:(2c)^(2/3)", "1:(2c)23", "1:(2c)^2/3"):
            return (2.0 * float(c)) ** (2.0 / 3.0)
        if name in ("optimal", "opt"):
            return optimal_ratio_exponent_weight(c, monotonic)
        raise InvalidParameterError(
            f"unknown ratio {ratio!r}; known: {RATIO_NAMES + ('optimal',)}"
        )
    weight = float(ratio)
    if weight <= 0.0 or not math.isfinite(weight):
        raise InvalidParameterError(f"ratio weight must be finite and > 0, got {ratio!r}")
    return weight


def allocate(
    epsilon: float,
    c: int,
    ratio: Union[str, float] = "optimal",
    monotonic: bool = False,
) -> Tuple[float, float]:
    """Split *epsilon* into ``(eps1, eps2)`` according to *ratio*.

    *ratio* may be one of the paper's named ratios, the string ``"optimal"``
    (Section 4.2's closed form, respecting *monotonic*), or a positive float
    ``w`` meaning ``eps1:eps2 = 1:w``.
    """
    epsilon, c = _validate(epsilon, c)
    weight = _ratio_weight(ratio, c, monotonic)
    eps1 = epsilon / (1.0 + weight)
    return eps1, epsilon - eps1


def comparison_variance(
    eps1: float,
    eps2: float,
    c: int,
    sensitivity: float = 1.0,
    monotonic: bool = False,
) -> float:
    """Variance of ``Lap(Delta/eps1) - Lap(k*c*Delta/eps2)`` for the given split."""
    if eps1 <= 0.0 or eps2 <= 0.0:
        raise InvalidParameterError("eps1 and eps2 must both be > 0")
    if c <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    delta = float(sensitivity)
    if delta <= 0.0 or not math.isfinite(delta):
        raise InvalidParameterError(f"sensitivity must be finite and > 0, got {delta!r}")
    factor = _query_noise_factor(c, monotonic)
    return 2.0 * (delta / eps1) ** 2 + 2.0 * (factor * delta / eps2) ** 2


def comparison_std(
    eps1: float,
    eps2: float,
    c: int,
    sensitivity: float = 1.0,
    monotonic: bool = False,
) -> float:
    """Standard deviation of the comparison noise (square root of the above)."""
    return math.sqrt(comparison_variance(eps1, eps2, c, sensitivity, monotonic))


def grid_search_allocation(
    epsilon: float,
    c: int,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    num_points: int = 10_000,
) -> Tuple[float, float]:
    """Numerically minimize the comparison variance over eps1 in (0, eps).

    Exists to validate the closed-form optimum; tests assert it agrees with
    :func:`allocate(..., ratio="optimal")` to fine tolerance.
    """
    epsilon, c = _validate(epsilon, c)
    if num_points < 3:
        raise InvalidParameterError("num_points must be at least 3")
    best: Tuple[float, float] = (math.inf, epsilon / 2.0)
    for i in range(1, num_points):
        eps1 = epsilon * i / num_points
        var = comparison_variance(eps1, epsilon - eps1, c, sensitivity, monotonic)
        if var < best[0]:
            best = (var, eps1)
    eps1 = best[1]
    return eps1, epsilon - eps1


@dataclass(frozen=True)
class BudgetAllocation:
    """A resolved three-way split ``(eps1, eps2, eps3)`` for Alg. 7.

    ``eps1 + eps2`` funds the indicator vector and ``eps3`` the optional
    numeric answers; :meth:`total` is the overall privacy cost (Theorem 4).
    """

    eps1: float
    eps2: float
    eps3: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("eps1", self.eps1), ("eps2", self.eps2), ("eps3", self.eps3)):
            value = float(value)
            if not math.isfinite(value) or value < 0.0:
                raise InvalidParameterError(f"{name} must be finite and >= 0, got {value!r}")
        if self.eps1 <= 0.0 or self.eps2 <= 0.0:
            raise InvalidParameterError("eps1 and eps2 must both be > 0")

    @property
    def total(self) -> float:
        return self.eps1 + self.eps2 + self.eps3

    @classmethod
    def from_ratio(
        cls,
        epsilon: float,
        c: int,
        ratio: Union[str, float] = "optimal",
        monotonic: bool = False,
        numeric_fraction: float = 0.0,
    ) -> "BudgetAllocation":
        """Build a split from a total budget.

        *numeric_fraction* of *epsilon* is reserved for the numeric phase
        (eps3); the rest is divided between eps1 and eps2 by *ratio*.
        """
        epsilon = float(epsilon)
        if not 0.0 <= numeric_fraction < 1.0:
            raise InvalidParameterError("numeric_fraction must be in [0, 1)")
        eps3 = epsilon * numeric_fraction
        eps1, eps2 = allocate(epsilon - eps3, c, ratio=ratio, monotonic=monotonic)
        return cls(eps1=eps1, eps2=eps2, eps3=eps3)
