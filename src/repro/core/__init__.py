"""The paper's primary contribution: a correct, better-utility SVT.

* :mod:`repro.core.base` — response symbols, run results, threshold handling.
* :mod:`repro.core.svt` — Alg. 1 and the generalized Alg. 7 (streaming and
  vectorized batch forms, monotonic mode, optional numeric-output phase).
* :mod:`repro.core.allocation` — Section 4.2 privacy-budget allocation.
* :mod:`repro.core.retraversal` — Section 5 "SVT with Retraversal".
* :mod:`repro.core.selection` — one facade for private top-c selection.
"""

from repro.core.base import (
    ABOVE,
    BELOW,
    Response,
    SVTResult,
    normalize_thresholds,
)
from repro.core.allocation import (
    BudgetAllocation,
    allocate,
    comparison_std,
    comparison_variance,
    optimal_ratio_exponent_weight,
)
from repro.core.svt import StandardSVT, svt_alg1, run_svt, run_svt_batch
from repro.core.epsilon_delta import (
    EpsilonDeltaAllocation,
    per_positive_epsilon,
    run_svt_epsilon_delta,
)
from repro.core.retraversal import RetraversalResult, svt_retraversal
from repro.core.selection import select_top_c

__all__ = [
    "ABOVE",
    "BELOW",
    "Response",
    "SVTResult",
    "normalize_thresholds",
    "BudgetAllocation",
    "allocate",
    "comparison_variance",
    "comparison_std",
    "optimal_ratio_exponent_weight",
    "StandardSVT",
    "svt_alg1",
    "run_svt",
    "run_svt_batch",
    "svt_retraversal",
    "RetraversalResult",
    "select_top_c",
    "EpsilonDeltaAllocation",
    "per_positive_epsilon",
    "run_svt_epsilon_delta",
]
