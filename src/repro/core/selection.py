"""One facade for private top-c selection.

Downstream code (the applications, the experiment harness, and users who just
want "give me the c largest answers privately") goes through
:func:`select_top_c`, choosing a method:

* ``"em"`` — Exponential Mechanism, c rounds (the paper's recommendation for
  the non-interactive setting, Section 5).
* ``"svt"`` — Standard SVT (Alg. 7), vectorized batch run.
* ``"svt-retraversal"`` — SVT-ReTr with a threshold bump in D units.
* ``"noisy-max"`` — report-noisy-max baseline (cross-check, not in the paper's
  evaluation).

All methods cost *epsilon* in total and return selected indices.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.retraversal import svt_retraversal
from repro.core.svt import run_svt_batch
from repro.exceptions import InvalidParameterError
from repro.mechanisms.exponential import select_top_c_em
from repro.mechanisms.noisy_max import report_noisy_max_top_c
from repro.rng import RngLike

__all__ = ["select_top_c", "SELECTION_METHODS"]

SELECTION_METHODS = ("em", "svt", "svt-retraversal", "noisy-max")


def select_top_c(
    scores: Sequence[float],
    epsilon: float,
    c: int,
    method: str = "em",
    sensitivity: float = 1.0,
    monotonic: bool = False,
    threshold: Union[float, Sequence[float], None] = None,
    ratio: Union[str, float] = "optimal",
    threshold_bump_d: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Privately select (up to) c of the highest-scoring candidates.

    Parameters
    ----------
    scores:
        True candidate scores (query answers); the caller is responsible for
        their sensitivity being at most *sensitivity*.
    threshold:
        Required for the SVT methods (they are threshold-testing algorithms at
        heart).  Ignored by ``"em"`` and ``"noisy-max"``.
    ratio:
        eps1:eps2 allocation for the SVT methods (Section 4.2); default is the
        paper's optimal ratio.
    threshold_bump_d:
        SVT-ReTr threshold increment in D units.

    Returns
    -------
    numpy.ndarray
        Selected indices.  EM and noisy-max always return exactly c; plain SVT
        may return fewer (it stops when the list is exhausted), which is
        precisely the deficiency retraversal addresses.
    """
    method = method.strip().lower()
    if method not in SELECTION_METHODS:
        raise InvalidParameterError(
            f"unknown selection method {method!r}; choose from {SELECTION_METHODS}"
        )
    if method == "em":
        return select_top_c_em(
            scores, epsilon, c, sensitivity=sensitivity, monotonic=monotonic, rng=rng
        )
    if method == "noisy-max":
        return report_noisy_max_top_c(
            scores, epsilon, c, sensitivity=sensitivity, monotonic=monotonic, rng=rng
        )
    if threshold is None:
        raise InvalidParameterError(f"method {method!r} requires a threshold")
    allocation = BudgetAllocation.from_ratio(epsilon, c, ratio=ratio, monotonic=monotonic)
    if method == "svt":
        result = run_svt_batch(
            scores,
            allocation,
            c,
            thresholds=threshold,
            sensitivity=sensitivity,
            monotonic=monotonic,
            rng=rng,
        )
        return np.asarray(result.positives, dtype=np.int64)
    result = svt_retraversal(
        scores,
        allocation,
        c,
        thresholds=threshold,
        sensitivity=sensitivity,
        monotonic=monotonic,
        threshold_bump_d=threshold_bump_d,
        rng=rng,
    )
    return np.asarray(result.selected, dtype=np.int64)
