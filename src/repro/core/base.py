"""Shared SVT vocabulary: response symbols, results, threshold handling.

The paper's algorithms output a stream over ``{⊤, ⊥} ∪ R`` — "above",
"below", or (for Alg. 3 and Alg. 7 with eps3 > 0) a numeric answer.  We model
⊤/⊥ with the :class:`Response` enum and keep numeric answers as floats, so a
transcript is a list of ``Response | float``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Union

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["Response", "ABOVE", "BELOW", "Answer", "SVTResult", "normalize_thresholds"]


class Response(enum.Enum):
    """The two indicator outputs of an SVT: ⊤ (above) and ⊥ (below)."""

    ABOVE = "⊤"
    BELOW = "⊥"

    def __repr__(self) -> str:
        return self.value

    def __str__(self) -> str:
        return self.value

    @property
    def is_positive(self) -> bool:
        return self is Response.ABOVE


ABOVE = Response.ABOVE
BELOW = Response.BELOW

#: One SVT output: an indicator or (Alg. 3 / Alg. 7 with eps3>0) a noisy answer.
Answer = Union[Response, float]


@dataclass
class SVTResult:
    """The transcript of one SVT run.

    Attributes
    ----------
    answers:
        The output stream, one entry per *processed* query, in query order.
        Entries are :data:`ABOVE`, :data:`BELOW`, or a float (numeric phase).
    positives:
        Indices (into the processed prefix) that produced a positive outcome.
    processed:
        Number of queries consumed before the algorithm halted (or the stream
        ended).  ``processed == len(answers)``.
    halted:
        True when the run stopped because the cutoff c was reached, False when
        the input stream was exhausted first.
    noisy_threshold_trace:
        The noisy-threshold value(s) used.  A single entry for algorithms that
        never refresh rho; one entry per refresh for Alg. 2.  Exposed for the
        analysis tooling, never released by the mechanism itself.
    """

    answers: List[Answer] = field(default_factory=list)
    positives: List[int] = field(default_factory=list)
    processed: int = 0
    halted: bool = False
    noisy_threshold_trace: List[float] = field(default_factory=list)

    @property
    def num_positives(self) -> int:
        return len(self.positives)

    def indicator_vector(self) -> np.ndarray:
        """Boolean vector over processed queries: True where the outcome was positive.

        Numeric answers count as positive (they are only produced above the
        threshold).
        """
        out = np.zeros(self.processed, dtype=bool)
        out[self.positives] = True
        return out

    def __len__(self) -> int:
        return self.processed


def normalize_thresholds(
    thresholds: Union[float, Sequence[float], np.ndarray],
    n: int,
) -> np.ndarray:
    """Expand a scalar or per-query threshold spec to a length-*n* float array.

    The paper (Figure 1 footnote) notes that per-query thresholds are
    syntactic sugar: subtracting ``T_i`` from ``q_i`` and thresholding at 0 is
    equivalent.  We keep explicit thresholds for fidelity to the listed
    algorithms, normalizing both forms here.
    """
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    arr = np.asarray(thresholds, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.ndim != 1:
        raise InvalidParameterError("thresholds must be a scalar or a 1-D sequence")
    if arr.size < n:
        raise InvalidParameterError(
            f"got {arr.size} thresholds for {n} queries; need at least one per query"
        )
    return arr[:n].astype(float, copy=False)
