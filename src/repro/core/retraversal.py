"""SVT with Retraversal (Section 5, "SVT with Retraversal"; evaluated in Fig. 5).

In the non-interactive setting all queries are known, so when a run of SVT
exhausts the query list having produced fewer than c positives, the remaining
budget need not be wasted: raise the threshold and *retraverse* the not-yet-
selected queries until c are selected.

The threshold increment is expressed in "D" units: 1D means one standard
deviation of the per-query Laplace noise, i.e. ``sqrt(2) * scale(nu)``.  The
paper evaluates increments of 1D..5D with the monotonic 1:c^(2/3) allocation.

Privacy: the noisy threshold is sampled once and reused across passes, each
examined query draws fresh noise, and at most c positives are ever produced,
so the Theorem 4/5 argument applies verbatim — the negatives (however many
passes they span) are charged only through eps1, the at-most-c positives
through eps2.  Total cost: ``eps1 + eps2 (+ eps3)``.

This is the single-run reference implementation.  Whole Monte-Carlo cells run
through :func:`repro.engine.retraversal.retraversal_trials`, which is
bit-identical to calling this once per trial under per-trial derived streams
(selection, ``passes``, ``examined``, ``exhausted`` — pinned by
``tests/engine/test_engine_retraversal.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Union

import numpy as np

from repro.core.allocation import BudgetAllocation
from repro.core.base import normalize_thresholds
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = ["RetraversalResult", "svt_retraversal"]


@dataclass
class RetraversalResult:
    """Outcome of an SVT-ReTr run.

    Attributes
    ----------
    selected:
        Indices of selected queries, in selection order (across passes).
    passes:
        Number of full traversals performed.
    exhausted:
        True when the pass limit was hit before selecting c queries.
    examined:
        Total number of query examinations across all passes (the work done).
    """

    selected: List[int] = field(default_factory=list)
    passes: int = 0
    exhausted: bool = False
    examined: int = 0

    @property
    def num_selected(self) -> int:
        return len(self.selected)


def svt_retraversal(
    answers: Sequence[float],
    allocation: BudgetAllocation,
    c: int,
    thresholds: Union[float, Sequence[float]] = 0.0,
    sensitivity: float = 1.0,
    monotonic: bool = False,
    threshold_bump_d: float = 0.0,
    max_passes: int = 100,
    rng: RngLike = None,
) -> RetraversalResult:
    """Run SVT with threshold raising and retraversal until c selections.

    Parameters
    ----------
    answers:
        True query answers, in traversal order (shuffle beforehand if the
        order should be random, as the paper's harness does).
    threshold_bump_d:
        The increment in D units (multiples of the query-noise standard
        deviation) added to every threshold.  0 reproduces plain SVT behaviour
        plus retraversal; the paper sweeps 1..5.
    max_passes:
        Safety cap; with an aggressive bump and an unlucky noisy threshold the
        expected number of passes is finite but unbounded, so we stop after
        this many traversals and report ``exhausted=True``.
    """
    if float(sensitivity) <= 0.0 or not math.isfinite(float(sensitivity)):
        raise InvalidParameterError(f"sensitivity must be finite and > 0, got {sensitivity!r}")
    if not isinstance(c, (int, np.integer)) or int(c) <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    if threshold_bump_d < 0.0:
        raise InvalidParameterError("threshold_bump_d must be >= 0")
    if max_passes < 1:
        raise InvalidParameterError("max_passes must be >= 1")

    values = np.asarray(answers, dtype=float)
    if values.ndim != 1:
        raise InvalidParameterError("answers must be a 1-D sequence")
    n = values.size
    c = int(min(c, n))
    thr = normalize_thresholds(thresholds, n)
    gen = ensure_rng(rng)

    delta = float(sensitivity)
    factor = c if monotonic else 2 * c
    query_scale = factor * delta / allocation.eps2
    bump = threshold_bump_d * math.sqrt(2.0) * query_scale

    # One rho for the entire multi-pass run (refreshing would require the
    # Alg. 2 style c-scaled threshold noise).
    rho = float(gen.laplace(scale=delta / allocation.eps1))
    effective_thr = thr + bump + rho

    remaining = np.arange(n)
    result = RetraversalResult()
    while result.num_selected < c and result.passes < max_passes and remaining.size:
        result.passes += 1
        nu = gen.laplace(scale=query_scale, size=remaining.size)
        above = values[remaining] + nu >= effective_thr[remaining]
        cum = np.cumsum(above)
        need = c - result.num_selected
        hit = np.nonzero(cum == need)[0]
        stop = int(hit[0]) + 1 if hit.size else remaining.size
        result.examined += stop
        chosen = remaining[:stop][above[:stop]]
        result.selected.extend(int(i) for i in chosen)
        keep_mask = np.ones(remaining.size, dtype=bool)
        keep_mask[np.nonzero(above[:stop])[0]] = False
        remaining = remaining[keep_mask]
    result.exhausted = result.num_selected < c
    return result
