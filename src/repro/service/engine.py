"""Cross-session batched execution, the service facade, and the sync client.

The throughput problem: a query-at-a-time ``Session.answer`` loop spends
microseconds of interpreter overhead per request — scalar Laplace draws,
attribute lookups, dataclass construction — which caps a multi-tenant server
at a few hundred thousand requests per second per core no matter how cheap
the math is.  The engine removes the loop the same way
:mod:`repro.engine.trials` removed it for Monte-Carlo trials: collect the
pending queries of *many* sessions, group them into cohorts (sessions with
identical ``(epsilon, threshold, c, svt_fraction, sensitivity, monotonic)``
configuration), and answer each cohort with block noise draws and one
vectorized comparison via :func:`repro.engine.gate.gate_block`.  Per-request
Python survives only where the data is irreducibly scalar: gate firings
(at most c per session, ever) and rejections.

Two execution modes, mirroring the trial engine's shared/per-trial split:

* ``mode="shared"`` (default, the throughput path) — one service-level
  generator supplies all noise.  Each cohort is answered in *speculative
  passes*: every pending request is gated at once under the current session
  states; because a session's state only changes when its gate **fires**,
  almost every row commits on the first pass, and only the rows queued
  *behind* a firing are re-gated under the updated history (their
  speculative draws are discarded — discarded independent noise does not
  change the output distribution, the same argument
  :func:`repro.core.svt.run_svt_batch` makes for post-halt draws).  This is
  the segmented-rescan idiom of the Alg. 2 / SVT-ReTr kernels applied to
  sessions instead of trials.  Estimates for the whole pass come from one
  composite-key lookup (``session * n + item`` against the <= c released
  answers per session) plus a per-session running mean — no per-row
  estimator calls.
* ``mode="per-session"`` — every session draws from its own stream, one
  head-of-queue row per session per round.  This is **bit-identical** to
  driving each session's streaming loop independently (enforced by the
  service test suite): same draws in the same per-session order, same
  ledger, same audit trail, same served values.

The :class:`SVTQueryService` facade wires manager + batcher + engine
together; :class:`ServiceClient` is the synchronous per-tenant view whose
``ask`` is exactly the single-session streaming loop.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.scores import ScoreSource
from repro.engine.gate import gate_block
from repro.exceptions import InvalidParameterError, ReproError
from repro.rng import RngLike, derive_rng, ensure_rng
from repro.service.audit import AuditLog
from repro.service.batcher import BlockRequest, DrainBatch, RequestBatcher
from repro.service.manager import SessionManager
from repro.service.session import (
    EXHAUSTED_MESSAGE as _EXHAUSTED_MSG,
    OnlineAnswer,
    QueryLike,
    Session,
)

__all__ = ["DrainResult", "ServiceEngine", "SVTQueryService", "ServiceClient"]

_MODES = ("shared", "per-session")


@dataclass
class DrainResult:
    """Columnar outcome of one drain, aligned with expansion (ticket) order.

    Rejected requests (exhausted session, over-sensitive query, unknown
    item) have ``ok=False``, a NaN value, and their error message in
    ``errors``; everything else mirrors :class:`OnlineAnswer` fields.
    ``block_rows`` records the width of every vectorized gate call — the
    batch-occupancy signal the load harness reports.
    """

    tickets: np.ndarray
    values: np.ndarray
    from_history: np.ndarray
    query_index: np.ndarray
    ok: np.ndarray
    errors: List[Optional[str]]
    passes: int = 0
    block_rows: List[int] = field(default_factory=list)
    #: Wall time spent inside the vectorized gate kernels for this drain —
    #: the ``gate_kernel_ms`` sub-span the request tracer reports under
    #: ``gate_exec``.
    gate_ms: float = 0.0

    def __len__(self) -> int:
        return int(self.tickets.size)

    @property
    def mean_block_rows(self) -> float:
        """Mean rows per vectorized gate call (batch occupancy)."""
        return float(np.mean(self.block_rows)) if self.block_rows else 0.0

    def answers(self) -> List[Optional[OnlineAnswer]]:
        """Per-request :class:`OnlineAnswer` objects (None where rejected)."""
        out: List[Optional[OnlineAnswer]] = []
        for i in range(len(self)):
            if self.ok[i]:
                out.append(
                    OnlineAnswer(
                        value=float(self.values[i]),
                        from_history=bool(self.from_history[i]),
                        query_index=int(self.query_index[i]),
                    )
                )
            else:
                out.append(None)
        return out


class _Out:
    """Mutable response columns shared by the execution strategies."""

    def __init__(self, size: int) -> None:
        self.tickets = np.empty(size, dtype=np.int64)
        self.values = np.full(size, np.nan)
        self.from_history = np.zeros(size, dtype=bool)
        self.query_index = np.full(size, -1, dtype=np.int64)
        self.ok = np.zeros(size, dtype=bool)
        self.errors: List[Optional[str]] = [None] * size
        self.passes = 0
        self.block_rows: List[int] = []
        self.gate_ms = 0.0

    def reject(self, row: int, message: str) -> None:
        self.errors[row] = message

    def result(self) -> DrainResult:
        return DrainResult(
            tickets=self.tickets,
            values=self.values,
            from_history=self.from_history,
            query_index=self.query_index,
            ok=self.ok,
            errors=self.errors,
            passes=self.passes,
            block_rows=self.block_rows,
            gate_ms=self.gate_ms,
        )


class _SessPending:
    """One session's pending queries for a drain, in submission order.

    ``pieces`` interleaves block segments and scalar runs; :meth:`finalize`
    decides fast (pure item arrays, default estimator, shared supports) vs
    generic (anything else) and produces the corresponding representation.
    """

    __slots__ = ("session", "pieces", "fast_eligible")

    def __init__(self, session: Session, fast_eligible: bool) -> None:
        self.session = session
        self.pieces: List[tuple] = []  # ("block", row0, items) | ("scalar", row, query)
        self.fast_eligible = fast_eligible

    def finalize(self):
        """``(rows, items)`` arrays for fast sessions, else a scalar list."""
        if self.fast_eligible and len(self.pieces) == 1 and self.pieces[0][0] == "block":
            _kind, row0, items = self.pieces[0]
            return np.arange(row0, row0 + items.size, dtype=np.int64), items, None
        if self.fast_eligible and all(
            kind == "block" or isinstance(payload2, (int, np.integer))
            for kind, _payload1, payload2 in self.pieces
        ):
            rows_parts: List[np.ndarray] = []
            items_parts: List[np.ndarray] = []
            scalar_rows: List[int] = []
            scalar_items: List[int] = []

            def flush_scalars():
                if scalar_rows:
                    rows_parts.append(np.asarray(scalar_rows, dtype=np.int64))
                    items_parts.append(np.asarray(scalar_items, dtype=np.int64))
                    scalar_rows.clear()
                    scalar_items.clear()

            for kind, a, b in self.pieces:
                if kind == "block":
                    flush_scalars()
                    rows_parts.append(np.arange(a, a + b.size, dtype=np.int64))
                    items_parts.append(b)
                else:
                    scalar_rows.append(a)
                    scalar_items.append(int(b))
            flush_scalars()
            return (
                np.concatenate(rows_parts) if len(rows_parts) != 1 else rows_parts[0],
                np.concatenate(items_parts) if len(items_parts) != 1 else items_parts[0],
                None,
            )
        generic: List[Tuple[int, QueryLike]] = []
        for kind, a, b in self.pieces:
            if kind == "block":
                generic.extend((a + off, int(item)) for off, item in enumerate(b))
            else:
                generic.append((a, b))
        return None, None, generic


def _backend_size(backend) -> int:
    """Item count of a session backend (dense vector or lazy source)."""
    if backend is None:
        return 0
    if isinstance(backend, ScoreSource):
        return int(backend.n)
    return int(backend.size)


def _backend_gather(backend, items: np.ndarray) -> np.ndarray:
    """True supports at *items* — fancy-indexed dense, or block-grouped
    :meth:`~repro.data.scores.ScoreSource.take` for a lazy backend (no
    per-cohort dense copy of a 2.3M-item universe is ever pinned)."""
    if isinstance(backend, ScoreSource):
        return backend.take(items)
    return backend[items]


def _cumcount(group_ids: np.ndarray, num_groups: int):
    """Per-row ordinal within its group plus per-group counts (stable order)."""
    counts = np.bincount(group_ids, minlength=num_groups)
    order = np.argsort(group_ids, kind="stable")
    nonzero = counts > 0
    starts = np.cumsum(counts) - counts
    ordinal_sorted = np.arange(group_ids.size) - np.repeat(starts[nonzero], counts[nonzero])
    ordinal = np.empty(group_ids.size, dtype=np.int64)
    ordinal[order] = ordinal_sorted
    return ordinal, counts


class ServiceEngine:
    """Executes drained request batches against their sessions."""

    def __init__(self, rng: RngLike = None, mode: str = "shared") -> None:
        if mode not in _MODES:
            raise InvalidParameterError(f"unknown mode {mode!r}; known: {_MODES}")
        self.mode = mode
        self._rng = ensure_rng(rng)

    @property
    def rng(self) -> np.random.Generator:
        """The shared-mode noise source (persisted by the durable store)."""
        return self._rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value

    def execute(self, batch: DrainBatch) -> DrainResult:
        """Answer every request of *batch*; columns follow expansion order."""
        out = _Out(batch.size)
        if batch.size:
            if self.mode == "shared":
                self._execute_shared(batch, out)
            else:
                self._execute_per_session(batch, out)
        return out.result()

    # ------------------------------------------------------------------
    # Entry normalization (shared by both modes).
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(batch: DrainBatch):
        """Per-session pending queues (submission order), the ticket column,
        and the shared support vector fast rows are eligible against.

        Batcher entries arrive in ticket order over a dense range, so the
        ticket column is one arange and row index == ticket - base.
        """
        tickets = np.arange(
            batch.base_ticket, batch.base_ticket + batch.size, dtype=np.int64
        )
        per_session: Dict[int, _SessPending] = {}
        order: List[_SessPending] = []
        cursor = 0
        # The shared support backend (dense vector or lazy ScoreSource):
        # sessions on any other backend (or with a custom estimator) take
        # the generic path.
        shared_supports = None
        for entry in batch.entries:
            backend = entry.session._backend
            if backend is not None:
                shared_supports = backend
                break
        for entry in batch.entries:
            s = entry.session
            record = per_session.get(id(s))
            if record is None:
                record = _SessPending(
                    s,
                    fast_eligible=(
                        s._estimator is None
                        and shared_supports is not None
                        and s._backend is shared_supports
                    ),
                )
                per_session[id(s)] = record
                order.append(record)
            if isinstance(entry, BlockRequest):
                record.pieces.append(("block", cursor, entry.queries))
                cursor += len(entry)
            else:
                record.pieces.append(("scalar", cursor, entry.query))
                if not isinstance(entry.query, (int, np.integer)):
                    record.fast_eligible = False
                cursor += 1
        return order, tickets, shared_supports

    # ------------------------------------------------------------------
    # Shared mode: speculative cohort passes.
    # ------------------------------------------------------------------
    def _execute_shared(self, batch: DrainBatch, out: _Out) -> None:
        records, tickets, shared_supports = self._normalize(batch)
        out.tickets = tickets
        cohorts: Dict[tuple, List[_SessPending]] = {}
        for record in records:
            cohorts.setdefault(record.session.cohort_key, []).append(record)
        for members in cohorts.values():
            self._run_cohort_shared(members, shared_supports, out)

    def _run_cohort_shared(
        self,
        members: List[_SessPending],
        supports: Optional[np.ndarray],
        out: _Out,
    ) -> None:
        sessions = [m.session for m in members]
        first = sessions[0]
        threshold = first.threshold
        nu_scale = first.nu_scale
        answer_scale = first.answer_scale
        num_sess = len(sessions)
        rho_by_sess = np.fromiter((s.rho for s in sessions), dtype=float, count=num_sess)
        # *supports* is the backend fast eligibility was decided against in
        # _normalize: every fast session satisfies ``_backend is supports``,
        # so gathering truths from it can never read another backend's data.
        n_items = _backend_size(supports)

        # Fast rows: concatenated per-session arrays (session-contiguous,
        # submission order within each session — the only order the
        # speculative cut needs).  Generic rows: per-row (row, query) lists.
        # Session/row columns come from two np.repeat/np.arange passes over
        # the per-part lengths rather than per-session array constructions.
        rows_parts: List[np.ndarray] = []
        items_parts: List[np.ndarray] = []
        part_sidx: List[int] = []
        part_len: List[int] = []
        generic: List[Tuple[int, int, QueryLike]] = []  # (row, sess_idx, query)
        for sidx, member in enumerate(members):
            rows_arr, items_arr, generic_list = member.finalize()
            if generic_list is None:
                rows_parts.append(rows_arr)
                items_parts.append(items_arr)
                part_sidx.append(sidx)
                part_len.append(items_arr.size)
            else:
                generic.extend((row, sidx, q) for row, q in generic_list)
        if rows_parts:
            f_rows = np.concatenate(rows_parts)
            f_items = np.concatenate(items_parts)
            f_sess = np.repeat(
                np.asarray(part_sidx, dtype=np.int64), np.asarray(part_len)
            )
            # Out-of-range items are *poison* rows: they ride the speculative
            # cut (forced ⊥, no commit) and are rejected only once reached,
            # so a session that exhausts first reports exhaustion for them —
            # the same error precedence as the streaming loop.
            f_poison = (f_items < 0) | (f_items >= n_items)
            safe_items = np.where(f_poison, 0, f_items)
            f_truths = np.where(f_poison, 0.0, _backend_gather(supports, safe_items))
            f_codes = f_sess * n_items + safe_items
        else:
            f_rows = f_sess = f_items = np.empty(0, dtype=np.int64)
            f_poison = np.empty(0, dtype=bool)
            f_truths = np.empty(0)
            f_codes = np.empty(0, dtype=np.int64)

        f_pend = np.arange(f_rows.size)
        while f_pend.size or generic:
            out.passes += 1
            # Only sessions with still-pending rows pay any per-pass cost:
            # later passes touch just the few sessions behind a firing.
            sess_of = f_sess[f_pend]
            active = np.unique(sess_of)
            # Exhausted sessions reject their remaining rows up front.
            halted_active = [int(i) for i in active if sessions[i]._halted]
            if halted_active or any(sessions[sidx]._halted for _r, sidx, _q in generic):
                halted_by_sess = np.zeros(num_sess, dtype=bool)
                halted_by_sess[halted_active] = True
                halted_rows = halted_by_sess[sess_of]
                for p in f_pend[halted_rows]:
                    out.reject(int(f_rows[p]), _EXHAUSTED_MSG)
                f_pend = f_pend[~halted_rows]
                sess_of = f_sess[f_pend]
                active = np.unique(sess_of)
                kept_generic = []
                for row, sidx, q in generic:
                    if sessions[sidx]._halted:
                        out.reject(row, _EXHAUSTED_MSG)
                    else:
                        kept_generic.append((row, sidx, q))
                generic = kept_generic

            # Fast estimates in one composite-key pass: the <= c released
            # answers per session override the session's running mean.
            means = np.zeros(num_sess)
            rel_codes: List[int] = []
            rel_vals: List[float] = []
            for sidx in active:
                s = sessions[sidx]
                if s.history:
                    means[sidx] = s._release_sum / len(s.history)
                    base_code = int(sidx) * n_items
                    for key, val in s._last_release.items():
                        if isinstance(key, int):
                            rel_codes.append(base_code + key)
                            rel_vals.append(val)
            est = means[sess_of]
            if rel_codes:
                rel_codes_arr = np.asarray(rel_codes, dtype=np.int64)
                rel_order = np.argsort(rel_codes_arr)
                rel_codes_arr = rel_codes_arr[rel_order]
                rel_vals_arr = np.asarray(rel_vals)[rel_order]
                codes = f_codes[f_pend]
                pos = np.searchsorted(rel_codes_arr, codes)
                pos_clip = np.minimum(pos, rel_codes_arr.size - 1)
                hit = rel_codes_arr[pos_clip] == codes
                est = np.where(hit, rel_vals_arr[pos_clip], est)
            tru = f_truths[f_pend]

            # Generic rows resolve one by one (Query objects, custom
            # estimators) — the price of generality, paid only by those rows.
            # Resolve failures become poison rows too: rejected only when
            # the cut reaches them, with the resolve error as the message.
            g_rows: List[int] = []
            g_sess: List[int] = []
            g_est: List[float] = []
            g_tru: List[float] = []
            g_meta: List[Optional[Tuple[object, QueryLike]]] = []
            g_msgs: List[Optional[str]] = []
            for row, sidx, q in generic:
                s = sessions[sidx]
                g_rows.append(row)
                g_sess.append(sidx)
                try:
                    key, truth = s.resolve(q)
                except ReproError as exc:
                    g_est.append(0.0)
                    g_tru.append(0.0)
                    g_meta.append(None)
                    g_msgs.append(str(exc))
                    continue
                g_est.append(s.estimate(key, q))
                g_tru.append(truth)
                g_meta.append((key, q))
                g_msgs.append(None)

            total = f_pend.size + len(g_rows)
            if total == 0:
                break
            poison = np.concatenate(
                [
                    f_poison[f_pend],
                    np.asarray([m is not None for m in g_msgs], dtype=bool),
                ]
            ) if g_rows else f_poison[f_pend]
            if g_rows:
                sess_of = np.concatenate([sess_of, np.asarray(g_sess, dtype=np.int64)])
                est = np.concatenate([est, np.asarray(g_est)])
                tru = np.concatenate([tru, np.asarray(g_tru)])
                all_rows = np.concatenate([f_rows[f_pend], np.asarray(g_rows, dtype=np.int64)])
            else:
                all_rows = f_rows[f_pend]

            t_gate = time.perf_counter()
            block = gate_block(
                np.abs(est - tru),
                threshold,
                rho_by_sess[sess_of],
                nu_scale,
                answer_scale,
                tru,
                rng=self._rng,
                fault=sessions[0].gate_fault if sessions else None,
            )
            out.gate_ms += (time.perf_counter() - t_gate) * 1e3
            out.block_rows.append(total)

            # Sequential-consistency cut: within each session accept rows up
            # to and including its first firing; everything behind a firing
            # re-runs next pass under the updated history.  (Positions are
            # session-contiguous and submission-ordered per session, so the
            # within-session comparison is sound; different sessions never
            # interact.)  Poison rows never fire or commit.
            above = block.above & ~poison
            positions = np.arange(total)
            first_fire = np.full(num_sess, total, dtype=np.int64)
            np.minimum.at(first_fire, sess_of[above], positions[above])
            accepted = positions <= first_fire[sess_of]
            acc_poison = accepted & poison
            if acc_poison.any():
                nf_now = f_pend.size
                for p in positions[acc_poison]:
                    if p < nf_now:
                        item = int(f_items[f_pend[p]])
                        out.reject(
                            int(all_rows[p]),
                            f"item {item} outside the backend's {n_items} items",
                        )
                    else:
                        out.reject(int(all_rows[p]), g_msgs[p - nf_now])
                accepted_commit = accepted & ~poison
            else:
                accepted_commit = accepted

            acc_sess = sess_of[accepted_commit]
            ordinal, counts = _cumcount(acc_sess, num_sess)
            with_rows = np.nonzero(counts)[0]
            served = np.zeros(num_sess, dtype=np.int64)
            for sidx in with_rows:
                served[sidx] = sessions[sidx]._served
            acc_rows = all_rows[accepted_commit]
            out.query_index[acc_rows] = served[acc_sess] + ordinal
            out.ok[acc_rows] = True
            for sidx in with_rows:
                sessions[sidx]._served += int(counts[sidx])

            above_acc = above[accepted_commit]
            below_rows = acc_rows[~above_acc]
            out.values[below_rows] = est[accepted_commit][~above_acc]
            out.from_history[below_rows] = True

            nf = f_pend.size
            for p in positions[accepted_commit][above_acc]:
                row = int(all_rows[p])
                s = sessions[sess_of[p]]
                if p < nf:
                    key: object = int(f_items[f_pend[p]])
                    query: QueryLike = key
                else:
                    key, query = g_meta[p - nf]
                s.commit_release(
                    key, query, float(tru[p]), float(block.released[p]),
                    index=int(out.query_index[row]),
                )
                out.values[row] = block.released[p]
                out.from_history[row] = False

            f_pend = f_pend[~accepted[:nf]]
            # generic aligns 1:1 with the tail of the block.
            generic = [g for g, acc in zip(generic, accepted[nf:]) if not acc]

    # ------------------------------------------------------------------
    # Per-session mode: head-of-queue rounds, bit-identical to streaming.
    # ------------------------------------------------------------------
    def _execute_per_session(self, batch: DrainBatch, out: _Out) -> None:
        records, tickets, _supports = self._normalize(batch)
        out.tickets = tickets
        queues: List[deque] = []
        for record in records:
            queue: deque = deque()
            for kind, a, b in record.pieces:
                if kind == "block":
                    queue.extend((a + off, int(item)) for off, item in enumerate(b))
                else:
                    queue.append((a, b))
            queues.append(queue)
        sessions = [record.session for record in records]

        while True:
            round_rows: List[tuple] = []
            for s, queue in zip(sessions, queues):
                while queue:
                    if s._halted:
                        row, _query = queue.popleft()
                        out.reject(row, _EXHAUSTED_MSG)
                        continue
                    row, query = queue[0]
                    try:
                        key, truth = s.resolve(query)
                    except ReproError as exc:
                        out.reject(row, str(exc))
                        queue.popleft()
                        continue
                    estimate = s.estimate(key, query)
                    round_rows.append((row, s, key, query, truth, estimate, queue))
                    break
            if not round_rows:
                break
            out.passes += 1
            k = len(round_rows)
            truths = np.fromiter((r[4] for r in round_rows), dtype=float, count=k)
            ests = np.fromiter((r[5] for r in round_rows), dtype=float, count=k)
            t_gate = time.perf_counter()
            block = gate_block(
                np.abs(ests - truths),
                np.fromiter((r[1].threshold for r in round_rows), dtype=float, count=k),
                np.fromiter((r[1].rho for r in round_rows), dtype=float, count=k),
                np.fromiter((r[1].nu_scale for r in round_rows), dtype=float, count=k),
                np.fromiter((r[1].answer_scale for r in round_rows), dtype=float, count=k),
                truths,
                rng=[r[1].rng for r in round_rows],
                fault=round_rows[0][1].gate_fault,
            )
            out.gate_ms += (time.perf_counter() - t_gate) * 1e3
            out.block_rows.append(k)
            for p, (row, s, key, query, truth, estimate, queue) in enumerate(round_rows):
                index = s.next_index()
                if block.above[p]:
                    noisy = float(block.released[p])
                    s.commit_release(key, query, truth, noisy, index=index)
                    out.values[row] = noisy
                    out.from_history[row] = False
                else:
                    out.values[row] = estimate
                    out.from_history[row] = True
                out.query_index[row] = index
                out.ok[row] = True
                queue.popleft()


class SVTQueryService:
    """The full service: session manager + request batcher + batch engine."""

    def __init__(
        self,
        dataset,
        seed: RngLike = None,
        mode: str = "shared",
        audit: Optional[AuditLog] = None,
        gate_fault: Optional[str] = None,
    ) -> None:
        self.manager = SessionManager(
            dataset, seed=seed, audit=audit, gate_fault=gate_fault
        )
        self.batcher = RequestBatcher()
        self.engine = ServiceEngine(rng=derive_rng(seed, "service-noise"), mode=mode)

    @property
    def audit(self) -> AuditLog:
        return self.manager.audit

    def open_session(self, tenant: str, **config) -> Session:
        return self.manager.open_session(tenant, **config)

    def evict(self, tenant: str) -> float:
        """Close one tenant's session, releasing its unspent budget."""
        return self.manager.evict(tenant)

    def expire(self, now=None):
        """Evict every TTL-elapsed session; returns the evicted tenants."""
        return self.manager.expire(now)

    def submit(self, tenant: str, query: QueryLike) -> int:
        """Queue one query for the next drain; returns its ticket."""
        return self.batcher.submit(self.manager.session(tenant), query)

    def submit_many(self, tenant: str, queries) -> np.ndarray:
        """Queue an array of item-index queries; returns their tickets."""
        return self.batcher.submit_array(self.manager.session(tenant), queries)

    def drain(self) -> DrainResult:
        """Answer every pending request in one cross-session batch."""
        return self.engine.execute(self.batcher.drain())

    def answer(self, tenant: str, query: QueryLike) -> OnlineAnswer:
        """The synchronous path: serve one query through the streaming loop."""
        return self.manager.session(tenant).answer(query)

    def client(self, tenant: str) -> "ServiceClient":
        return ServiceClient(self, tenant)

    def sessions(self) -> Iterator[Session]:
        return iter(self.manager)


class ServiceClient:
    """A tenant's synchronous view of the service.

    ``ask`` answers immediately through the session's streaming loop —
    exactly the :class:`~repro.interactive.online.OnlineQueryAnswerer`
    semantics; ``submit`` queues for the next batched drain instead.
    """

    def __init__(self, service: SVTQueryService, tenant: str) -> None:
        self._service = service
        self.tenant = str(tenant)

    @property
    def session(self) -> Session:
        return self._service.manager.session(self.tenant)

    def ask(self, query: QueryLike) -> OnlineAnswer:
        return self._service.answer(self.tenant, query)

    def submit(self, query: QueryLike) -> int:
        return self._service.submit(self.tenant, query)
