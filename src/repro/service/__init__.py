"""Multi-tenant SVT query service.

The paper's Section-3.4 online-answering pattern — "answer many queries for
``eps_svt + c * eps_answer``" — scaled from one session to many tenants:

* :mod:`repro.service.session` — one tenant's interactive session: the
  corrected-SVT gate state (threshold noise, firing count), a
  :class:`~repro.accounting.budget.BudgetLedger`, and the answer-history
  estimator;
* :mod:`repro.service.manager` — :class:`SessionManager`: opens, indexes,
  and seeds sessions per tenant over one shared private dataset;
* :mod:`repro.service.audit` — the append-only audit log of every budget
  spend and database release, plus post-hoc verification (accounting replay
  and an exact :mod:`repro.analysis.verifier` bridge);
* :mod:`repro.service.batcher` — :class:`RequestBatcher`: FIFO queueing and
  (epsilon, threshold, c, variant) cohort grouping of pending queries;
* :mod:`repro.service.engine` — :class:`ServiceEngine` /
  :class:`SVTQueryService` / :class:`ServiceClient`: cross-session batched
  execution through :func:`repro.engine.gate.gate_block`, with a
  ``per-session`` stream mode that is bit-identical to driving every
  session's streaming loop independently;
* :mod:`repro.service.workload` — the closed-loop Zipf workload generator
  and throughput/latency harness behind ``repro load-test`` and the
  enforced service benchmark;
* :mod:`repro.service.runtime` — the concurrent runtime: the asyncio JSONL
  ingestion server (TCP + stdio, bounded-queue backpressure with typed
  ``overloaded`` shedding) and the live metrics/adaptive-drain subsystem;
* :mod:`repro.service.store` — crash-safe durability: the crc-framed
  JSONL write-ahead log + SQLite snapshot store beneath the manager,
  ledgers, and audit log, with replay-on-boot recovery
  (:func:`restore_service`) and a :class:`FaultInjector` crash harness.
"""

from repro.service.audit import AuditLog, AuditRecord, gate_mechanism_spec, verify_audit
from repro.service.batcher import QueuedRequest, RequestBatcher
from repro.service.engine import DrainResult, ServiceClient, ServiceEngine, SVTQueryService
from repro.service.manager import SessionManager
from repro.service.session import LaneAnswer, OnlineAnswer, Session
from repro.service.store import (
    DurableStore,
    FaultInjector,
    RecoveryInfo,
    StoreConfig,
    restore_service,
)
from repro.service.workload import LoadStats, Workload, WorkloadSpec, generate_workload

__all__ = [
    "LaneAnswer",
    "AuditLog",
    "AuditRecord",
    "gate_mechanism_spec",
    "verify_audit",
    "QueuedRequest",
    "RequestBatcher",
    "DrainResult",
    "ServiceClient",
    "ServiceEngine",
    "SVTQueryService",
    "SessionManager",
    "OnlineAnswer",
    "Session",
    "LoadStats",
    "Workload",
    "WorkloadSpec",
    "generate_workload",
    "DurableStore",
    "StoreConfig",
    "FaultInjector",
    "RecoveryInfo",
    "restore_service",
]
