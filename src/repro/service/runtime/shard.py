"""The sharded multi-process runtime: per-core drain loops behind a
consistent-hash ingress router.

The single-process :class:`~repro.service.runtime.server.RuntimeServer` tops
out where one core does: its asyncio ingress, drain loop, and NumPy gate
kernels share a GIL and a CPU, and the traced 8-client bench shows the
client p50 is almost entirely ``ingress_wait`` — the engine is starved
behind one queue, not slow.  This module partitions for scale, the core
idiom of the LSST/Qserv design (PAPERS.md): tenants are consistent-hashed
onto N **worker processes**, each owning a complete single-shard stack —
its own :class:`RequestBatcher`, drain loop, :class:`AdaptiveDrainPolicy`,
:class:`MetricsRegistry`, and (with ``state_dir``) a private
:class:`DurableStore`/:class:`AuditLog` under ``state_dir/shard-K/`` — so
the hot path of every shard runs exactly the battle-tested single-process
code on its own core.

**Topology.**  A thin asyncio **ingress router** (:class:`ShardedServer`)
accepts client TCP/stdio connections, parses each JSONL line just far
enough to learn ``(op, tenant)``, and forwards the raw line bytes verbatim
over a per-client Unix-domain-socket channel to the owning shard; worker
responses pump back whole-line-atomically onto the client socket.  The
router holds **no admission queue**: backpressure and shedding happen only
at each worker's :class:`IngressQueue`, so an overloaded request is counted
(and answered ``overloaded``) exactly once, never once per hop.

**Why the semantics survive sharding.**  A tenant's derived noise streams
are a pure function of ``(seed, tenant, epoch)`` — independent of which
process evaluates them or what other tenants share its cohort (in
``per-session`` mode) — and every op of a tenant lands on one shard over
one ordered channel.  Per-tenant responses are therefore **bit-identical**
to the single-process runtime, modulo one process-local diagnostic: the
``ticket`` admission sequence number, which is the serving worker's, not a
global one (a router-coordinated ticket would serialize every shard on a
shared counter).  Enforced in ``tests/service/test_sharding.py``.
``shared`` mode keeps its documented cohort-composition dependence:
identical semantics, different draws.

**Operations.**  The admin plane mounts unchanged on the router: it merges
every worker's view — summed counters, bucket-merged histograms with
re-interpolated quantiles, ``shard="K"``-labeled series next to unlabeled
aggregates, seq-merged audit records, tenant-sorted session listings — via
the same view-method names the single-process server implements
synchronously.  Readiness gates on **all** shards ready; recovery stays
per-shard (each worker replays its own ``shard-K`` state on boot); a dead
worker degrades its tenants to typed ``unavailable`` responses while every
other shard keeps serving, until :meth:`ShardedServer.restart_shard`
replays it back.  :meth:`ShardedServer.decommission` is shard-aware
eviction: close the shard's sessions (releasing unspent budget), drop it
from the hash ring, stop the worker — its tenants rehash onto the
survivors while every other tenant's placement is untouched (an exact
property of consistent hashing, tested).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import shutil
import sys
import tempfile
import threading
import time
from bisect import bisect_right
from dataclasses import replace
from hashlib import blake2b
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.service.observability.httpadmin import AdminPlane
from repro.service.runtime.metrics import (
    MetricsRegistry,
    RssSampler,
    metric_key,
    parse_metric_key,
)
from repro.service.runtime.server import (
    _READLINE_LIMIT,
    PROTOCOL,
    RuntimeServer,
    ServerConfig,
    _Connection,
    fold_audit_report,
    parse_request_line,
)

__all__ = [
    "HashRing",
    "ShardedServer",
    "ShardWorker",
    "merge_snapshots",
    "merge_histogram_snapshots",
]

#: Virtual nodes per shard on the hash ring.  64 points per shard keeps the
#: max/min tenant-share ratio under ~1.6 at 4 shards while the ring stays
#: small enough to rebuild on every membership change.
RING_REPLICAS = 64

#: How long a graceful worker start may take before boot fails loudly
#: (recovery replay of a large shard-K state dominates this).
WORKER_READY_TIMEOUT_S = 120.0

#: Ops the router answers itself, by merging every worker's view.  A
#: tenant-less op that is *not* in this set is routed to a deterministic
#: shard so the worker's canonical error response comes back unchanged.
ROUTER_OPS = frozenset({"metrics", "drain", "status", "sessions", "audit",
                        "trace", "audit_report"})


class HashRing:
    """Consistent tenant->shard placement with virtual nodes.

    Hashing is :func:`hashlib.blake2b` (not Python's salted ``hash``), so
    placement is identical across processes, runs, and interpreter
    restarts — the property that lets a rebooted router route straight to
    the shard whose durable state holds each tenant.  Removing a shard
    (:meth:`without`) moves **only** that shard's tenants: every surviving
    ring point keeps its position, so a tenant whose successor point
    survives keeps its placement exactly (tested, not just asserted).
    """

    def __init__(self, shards, replicas: int = RING_REPLICAS) -> None:
        self.replicas = int(replicas)
        self.shards: Tuple[int, ...] = tuple(sorted(int(s) for s in shards))
        if not self.shards:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError("duplicate shard ids on the ring")
        points = []
        for shard in self.shards:
            for replica in range(self.replicas):
                points.append((self._hash(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(blake2b(text.encode(), digest_size=8).digest(), "big")

    def shard_for(self, tenant: str) -> int:
        """The shard owning *tenant*: the first ring point clockwise."""
        index = bisect_right(self._hashes, self._hash(str(tenant)))
        return self._owners[index % len(self._owners)]

    def without(self, shard: int) -> "HashRing":
        survivors = [s for s in self.shards if s != int(shard)]
        if not survivors:
            raise ValueError("cannot remove the last shard from the ring")
        return HashRing(survivors, replicas=self.replicas)

    def __len__(self) -> int:
        return len(self.shards)


# ----------------------------------------------------------------------
# The worker process: one full single-shard stack on a Unix socket.
# ----------------------------------------------------------------------
def _shard_worker_main(shard: int, supports, config: ServerConfig,
                       socket_path: str, conn) -> None:
    """Spawn target: run one shard's RuntimeServer until told to stop.

    *conn* is the control pipe to the router: the worker sends one ready
    message (with its pid and recovery summary) after it is listening, then
    blocks on commands.  Pipe EOF means the router died — the worker shuts
    down gracefully rather than orphaning itself.
    """
    import signal

    # The router owns Ctrl-C: a terminal SIGINT reaches the whole process
    # group, and racing KeyboardInterrupt tracebacks in workers would tear
    # connections the router is still draining.  Workers exit on command.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(_shard_worker_async(shard, supports, config, socket_path, conn))
    except KeyboardInterrupt:  # pragma: no cover - masked above
        pass


async def _shard_worker_async(shard: int, supports, config: ServerConfig,
                              socket_path: str, conn) -> None:
    server = RuntimeServer(supports, config)
    await server.serve_unix(socket_path)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def watch() -> None:
        try:
            conn.recv()  # any command (or router death) means: stop
        except (EOFError, OSError):
            pass
        loop.call_soon_threadsafe(stop.set)

    threading.Thread(target=watch, daemon=True, name=f"shard-{shard}-ctl").start()
    ready: Dict[str, Any] = {"ready": True, "shard": shard, "pid": os.getpid()}
    if server.recovery is not None:
        ready["recovered_sessions"] = server.recovery.sessions
        ready["recovery_summary"] = server.recovery.summary()
    conn.send(ready)
    await stop.wait()
    await server.shutdown()
    try:
        conn.send({"stopped": True, "shard": shard})
    except (BrokenPipeError, OSError):  # pragma: no cover - router gone
        pass


class ShardWorker:
    """Router-side handle on one worker: process, control pipe, socket."""

    def __init__(self, shard: int, supports, config: ServerConfig,
                 socket_path: str, ctx) -> None:
        self.shard = int(shard)
        self.supports = supports
        self.config = config
        self.socket_path = socket_path
        self._ctx = ctx
        self.process = None
        self.conn = None
        self.ready_info: Optional[dict] = None
        self.down = True
        self.stopping = False

    def spawn(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        parent, child = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=_shard_worker_main,
            args=(self.shard, self.supports, self.config, self.socket_path, child),
            daemon=True,
            name=f"repro-shard-{self.shard}",
        )
        self.stopping = False
        self.process.start()
        child.close()
        self.conn = parent

    def wait_ready(self, timeout: float = WORKER_READY_TIMEOUT_S) -> dict:
        """Block until the worker reports ready (call from an executor)."""
        assert self.conn is not None, "spawn() first"
        if not self.conn.poll(timeout):
            raise TimeoutError(
                f"shard {self.shard} did not become ready within {timeout:g}s"
            )
        info = self.conn.recv()
        if not isinstance(info, dict) or not info.get("ready"):
            raise RuntimeError(f"shard {self.shard} failed to start: {info!r}")
        self.ready_info = info
        self.down = False
        return info

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    def request_stop(self) -> None:
        self.stopping = True
        if self.conn is None:
            return
        try:
            self.conn.send("shutdown")
        except (BrokenPipeError, OSError):
            pass

    def join(self, timeout: float = 15.0) -> None:
        """Wait for exit; escalate to SIGKILL if the grace period lapses."""
        if self.process is None:
            return
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.kill()
            self.process.join(5.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None


# ----------------------------------------------------------------------
# Merging per-shard views into one plane.
# ----------------------------------------------------------------------
def merge_histogram_snapshots(snaps: List[dict]) -> dict:
    """Sum histogram snapshots that share one bucket layout.

    Buckets, counts, and sums add; the quantiles are re-interpolated from
    the merged buckets with the same linear-within-bucket scheme
    :class:`~repro.service.runtime.metrics.Histogram` uses, so an
    aggregated p99 means the same thing as a per-shard one (up to bucket
    resolution — quantiles of sums are not sums of quantiles).
    """
    snaps = [s for s in snaps if s]
    if not snaps:
        return {"count": 0, "sum": 0.0, "mean": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0, "buckets": {}}
    merged: Dict[str, int] = {str(b): 0 for b in snaps[0].get("buckets", {})}
    count = 0
    total = 0.0
    for snap in snaps:
        count += int(snap.get("count", 0))
        total += float(snap.get("sum", 0.0))
        for bound, n in snap.get("buckets", {}).items():
            merged[str(bound)] = merged.get(str(bound), 0) + int(n)

    def quantile(q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0.0
        prev = 0.0
        for bound, n in merged.items():
            hi = prev if bound == "+inf" else float(bound)
            if n and seen + n >= rank:
                frac = min(max((rank - seen) / n, 0.0), 1.0)
                return prev + (hi - prev) * frac
            seen += n
            if bound != "+inf":
                prev = float(bound)
        return prev

    return {
        "count": count,
        "sum": round(total, 6),
        "mean": round(total / count, 6) if count else 0.0,
        "p50": round(quantile(0.50), 6),
        "p90": round(quantile(0.90), 6),
        "p99": round(quantile(0.99), 6),
        "buckets": merged,
    }


def merge_snapshots(per_shard: Dict[int, dict],
                    router_snapshot: Optional[dict] = None) -> dict:
    """One metrics view from N worker snapshots plus the router's own.

    Every worker series appears twice: relabeled with ``shard="K"`` (the
    per-shard ``shed_total{shard="0"}`` drill-down) and folded into an
    unlabeled aggregate under its original key — counters and histogram
    buckets sum, gauges sum too (meaningful for the additive ones: RSS,
    queue depth, open sessions, connections; per-shard values remain the
    authority for the rest, e.g. ``drain_window``).  The router's own
    ``router_*`` series merge in unrelabeled — there is exactly one router.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    hist_parts: Dict[str, List[dict]] = {}
    for shard in sorted(per_shard):
        snap = per_shard[shard]
        tag = str(shard)
        for key, value in snap.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            counters[metric_key(name, {**labels, "shard": tag})] = value
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            name, labels = parse_metric_key(key)
            gauges[metric_key(name, {**labels, "shard": tag})] = value
            gauges[key] = gauges.get(key, 0) + value
        for key, hist in snap.get("histograms", {}).items():
            name, labels = parse_metric_key(key)
            histograms[metric_key(name, {**labels, "shard": tag})] = hist
            hist_parts.setdefault(key, []).append(hist)
    for key, parts in hist_parts.items():
        histograms[key] = merge_histogram_snapshots(parts)
    if router_snapshot is not None:
        for section, dest in (("counters", counters), ("gauges", gauges),
                              ("histograms", histograms)):
            for key, value in router_snapshot.get(section, {}).items():
                dest[key] = value
    snap = {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
    requests = snap["counters"].get("requests_total", 0)
    shed = snap["counters"].get("shed_total", 0)
    snap["shed_rate"] = round(shed / requests, 6) if requests else 0.0
    return snap


# ----------------------------------------------------------------------
# The router.
# ----------------------------------------------------------------------
class _ControlChannel:
    """One serialized request/response lane to a worker, for router ops.

    Control traffic (metrics, drain, status, listings) rides its own Unix
    connection per shard so it can never interleave with — or be stalled
    behind — a client's data channel.  A lock serializes calls because the
    protocol pairs one response line to one request line.
    """

    def __init__(self, reader: asyncio.StreamReader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def call(self, payload: dict) -> dict:
        async with self.lock:
            self.writer.write(
                (json.dumps(payload, separators=(",", ":")) + "\n").encode()
            )
            await self.writer.drain()
            line = await self.reader.readline()
        if not line:
            self.closed = True
            raise ConnectionError("control channel closed")
        return json.loads(line)

    def close(self) -> None:
        self.closed = True
        try:
            self.writer.close()
        except RuntimeError:  # pragma: no cover - loop already gone
            pass


class _Upstream:
    """One client's data channel to one shard, with line accounting.

    ``sent`` counts forwarded request lines that owe a response line
    (everything except ``mark``); ``received`` counts response lines pumped
    back.  The delta is the client's in-flight work on that shard — what
    disconnect handling must wait out before closing.
    """

    __slots__ = ("shard", "reader", "writer", "pump", "sent", "received",
                 "closed")

    def __init__(self, shard: int, reader: asyncio.StreamReader, writer) -> None:
        self.shard = shard
        self.reader = reader
        self.writer = writer
        self.pump: Optional[asyncio.Task] = None
        self.sent = 0
        self.received = 0
        self.closed = False


class _RouterClient:
    """One ingress connection: its response sink and its shard channels."""

    def __init__(self, server: "ShardedServer", writer=None, stream=None,
                 legacy_stderr: bool = False) -> None:
        self.server = server
        self.conn = _Connection(writer=writer, stream=stream, name="router-client")
        self.legacy_stderr = legacy_stderr
        self.upstreams: Dict[int, _Upstream] = {}
        self.mark_raw: Optional[bytes] = None
        self.finished = False

    def send(self, payload: dict) -> None:
        if payload.pop("_legacy", False) and self.legacy_stderr:
            print(f"error: {payload['error']}", file=sys.stderr)
            return
        self.conn.send(payload)

    async def flush(self) -> None:
        await self.conn.flush()

    async def upstream(self, shard: int) -> Optional[_Upstream]:
        """The lazily opened data channel to *shard* (None if shard down)."""
        up = self.upstreams.get(shard)
        if up is not None and not up.closed:
            return up
        worker = self.server.workers.get(shard)
        if worker is None or worker.down or shard in self.server.decommissioned:
            return None
        try:
            reader, writer = await asyncio.open_unix_connection(
                worker.socket_path, limit=_READLINE_LIMIT
            )
        except (ConnectionError, OSError):
            self.server._mark_down(shard)
            return None
        up = _Upstream(shard, reader, writer)
        self.upstreams[shard] = up
        up.pump = asyncio.create_task(self._pump(up))
        if self.mark_raw is not None:
            # Replay the client's latest timing beacon so traced
            # ingress_wait on a fresh channel still starts at client send.
            writer.write(self.mark_raw)
        return up

    async def _pump(self, up: _Upstream) -> None:
        """Forward *up*'s response bytes to the client, whole lines only.

        Chunks cut at the last newline so concurrent pumps (one per shard)
        interleave on the client socket at line granularity — the protocol's
        atomicity unit — never mid-frame.  ``await flush`` propagates client
        socket backpressure up the chain to the worker.
        """
        pending = b""
        try:
            while True:
                data = await up.reader.read(1 << 16)
                if not data:
                    break
                pending += data
                cut = pending.rfind(b"\n")
                if cut < 0:
                    continue
                chunk, pending = pending[:cut + 1], pending[cut + 1:]
                up.received += chunk.count(b"\n")
                self.conn.send_raw(chunk)
                await self.conn.flush()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            up.closed = True
            if up.received < up.sent and not self.server._closing \
                    and not self.server.workers[up.shard].stopping:
                # EOF with responses still owed: the worker died mid-flight.
                self.server._mark_down(up.shard)

    def in_flight(self) -> int:
        """Responses still owed on live channels (a dead shard owes none)."""
        return sum(up.sent - up.received
                   for up in self.upstreams.values() if not up.closed)

    async def finish(self, timeout: float = 30.0) -> None:
        """Drain in-flight responses, then close every shard channel."""
        if self.finished:
            return
        self.finished = True
        if self.in_flight():
            await self.server.force_drain()
            deadline = time.monotonic() + timeout
            while self.in_flight() and time.monotonic() < deadline:
                await asyncio.sleep(0.005)
        for up in self.upstreams.values():
            try:
                up.writer.close()
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        for up in self.upstreams.values():
            if up.pump is not None:
                try:
                    await asyncio.wait_for(up.pump, timeout=5.0)
                except asyncio.TimeoutError:  # pragma: no cover - defensive
                    up.pump.cancel()
        await self.flush()


class ShardedServer:
    """N worker processes behind one consistent-hash ingress router.

    Speaks the exact single-process protocol on the same transports
    (:meth:`serve_tcp`, :meth:`serve_stdin`) and mounts the same admin
    plane; implements the view methods (``snapshot``, ``readiness``,
    ``sessions_view``, ``audit_view``, ``trace_view``, ``slow_view``) as
    coroutines that merge every worker's answer.  Construction is cheap;
    :meth:`start` (or the transports, which call it) spawns the workers and
    blocks until all report ready — recovery included, so a router that
    says ready can serve every recovered tenant.
    """

    def __init__(self, supports, config: Optional[ServerConfig] = None,
                 shards: int = 2, runtime_dir: Optional[str] = None,
                 replicas: int = RING_REPLICAS) -> None:
        self.config = config or ServerConfig()
        self.num_shards = int(shards)
        if self.num_shards < 1:
            raise ValueError("shards must be >= 1")
        self.supports = np.ascontiguousarray(supports, dtype=float)
        self.ring = HashRing(range(self.num_shards), replicas=replicas)
        self._ctx = multiprocessing.get_context("spawn")
        # Unix socket paths must stay under ~107 bytes, so the sockets live
        # in their own short-lived tmp dir, never under state_dir.
        self.runtime_dir = runtime_dir or tempfile.mkdtemp(prefix="repro-shards-")
        self._own_runtime_dir = runtime_dir is None
        self.workers: Dict[int, ShardWorker] = {
            k: ShardWorker(k, self.supports, self._worker_config(k),
                           os.path.join(self.runtime_dir, f"s{k}"), self._ctx)
            for k in range(self.num_shards)
        }
        self.decommissioned: Set[int] = set()
        self.metrics = MetricsRegistry()
        self.sampler = RssSampler(self.metrics)
        self._c_routed = self.metrics.counter("router_requests_total")
        self._c_unavailable = self.metrics.counter("router_unavailable_total")
        self._c_errors = self.metrics.counter("router_errors_total")
        self._g_clients = self.metrics.gauge("router_clients")
        self._g_shards = self.metrics.gauge("router_shards_alive")
        #: Latest ``audit_report`` (see :meth:`record_audit_report`): the
        #: audit spans shards, so its state lives at the router.
        self._audit_report: Optional[dict] = None
        self._controls: Dict[int, _ControlChannel] = {}
        self._clients: Set[_RouterClient] = set()
        self._watched: Dict[int, int] = {}  # shard -> sentinel fd under add_reader
        self.admin: Optional[AdminPlane] = None
        self._closing = False
        self._started = False
        #: Captured by :meth:`shutdown` before the workers stop: the merged
        #: metrics snapshot and per-shard statuses a caller (CLI summary,
        #: bench harness) reads once the processes are gone.
        self.final_snapshot: Optional[dict] = None
        self.final_statuses: Optional[Dict[int, dict]] = None

    def _worker_config(self, shard: int) -> ServerConfig:
        state_dir = self.config.state_dir
        if state_dir is not None:
            state_dir = os.path.join(state_dir, f"shard-{shard}")
        # Workers never run their own admin plane — the router's merged one
        # is the operational surface.
        return replace(self.config, state_dir=state_dir, admin_port=None)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> List[dict]:
        """Spawn all workers; returns their ready infos (pid, recovery)."""
        if self._started:
            return [w.ready_info for w in self.workers.values()]
        if self.config.state_dir is not None:
            os.makedirs(self.config.state_dir, exist_ok=True)
        loop = asyncio.get_running_loop()
        for worker in self.workers.values():
            worker.spawn()
        infos = await asyncio.gather(*[
            loop.run_in_executor(None, worker.wait_ready)
            for worker in self.workers.values()
        ])
        for worker in self.workers.values():
            self._watch(worker)
        self._g_shards.set(len(self.live_shards()))
        self._started = True
        return list(infos)

    def _watch(self, worker: ShardWorker) -> None:
        """Flip a shard down the instant its process exits unexpectedly."""
        loop = asyncio.get_running_loop()
        sentinel = worker.process.sentinel

        def on_exit() -> None:
            loop.remove_reader(sentinel)
            self._watched.pop(worker.shard, None)
            if not worker.stopping and not self._closing:
                self._mark_down(worker.shard)

        self._watched[worker.shard] = sentinel
        loop.add_reader(sentinel, on_exit)

    def _unwatch(self, worker: ShardWorker) -> None:
        sentinel = self._watched.pop(worker.shard, None)
        if sentinel is not None:
            try:
                asyncio.get_running_loop().remove_reader(sentinel)
            except (RuntimeError, OSError):  # pragma: no cover - loop gone
                pass

    def _mark_down(self, shard: int) -> None:
        worker = self.workers.get(shard)
        if worker is None or worker.down:
            return
        worker.down = True
        chan = self._controls.pop(shard, None)
        if chan is not None:
            chan.close()
        self._g_shards.set(len(self.live_shards()))

    def live_shards(self) -> List[int]:
        return [k for k, w in sorted(self.workers.items())
                if not w.down and k not in self.decommissioned]

    async def restart_shard(self, shard: int) -> dict:
        """Respawn one worker; recovery replays its ``shard-K`` state.

        The typed-``unavailable`` degradation window for the shard's tenants
        ends here: placement never changed (the ring is untouched), so the
        recovered sessions serve again exactly where they were.
        """
        worker = self.workers[shard]
        if shard in self.decommissioned:
            raise ValueError(f"shard {shard} was decommissioned")
        self._unwatch(worker)
        worker.stopping = True
        if worker.process is not None and worker.process.is_alive():
            worker.request_stop()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, worker.join)
        chan = self._controls.pop(shard, None)
        if chan is not None:
            chan.close()
        self._drop_client_channels(shard)
        worker.down = True
        worker.spawn()
        info = await loop.run_in_executor(None, worker.wait_ready)
        self._watch(worker)
        self._g_shards.set(len(self.live_shards()))
        return info

    def _drop_client_channels(self, shard: int) -> None:
        for client in self._clients:
            up = client.upstreams.pop(shard, None)
            if up is not None and not up.closed:
                up.closed = True
                try:
                    up.writer.close()
                except RuntimeError:  # pragma: no cover
                    pass

    async def decommission(self, shard: int) -> Dict[str, float]:
        """Shard-aware eviction: retire *shard*, rehash its tenants away.

        Ring first (new traffic reroutes immediately), then close every
        session on the leaving shard — releasing unspent budget into its
        audit log — then stop the worker.  Returns ``{tenant: released}``.
        Tenants whose placement did not point at *shard* are untouched (the
        consistent-hash no-movement property); the evicted tenants' next
        request lands on a survivor as a fresh session/epoch.
        """
        if shard in self.decommissioned or shard not in self.workers:
            raise ValueError(f"no live shard {shard}")
        if len(self.ring) <= 1:
            raise ValueError("cannot decommission the last shard")
        self.ring = self.ring.without(shard)
        released: Dict[str, float] = {}
        view = await self._call_shard(shard, {"op": "sessions",
                                              "limit": 1_000_000, "offset": 0})
        if view is not None:
            for entry in view.get("sessions", []):
                resp = await self._call_shard(
                    shard, {"op": "close", "tenant": entry["tenant"]}
                )
                if resp is not None and resp.get("type") == "closed":
                    released[entry["tenant"]] = resp.get("released", 0.0)
        worker = self.workers[shard]
        self._unwatch(worker)
        chan = self._controls.pop(shard, None)
        if chan is not None:
            chan.close()
        worker.request_stop()
        await asyncio.get_running_loop().run_in_executor(None, worker.join)
        self.decommissioned.add(shard)
        worker.down = True
        self._drop_client_channels(shard)
        self._g_shards.set(len(self.live_shards()))
        return released

    async def shutdown(self) -> None:
        """Graceful stop: drain clients, snapshot the plane, stop workers."""
        if self._closing:
            return
        self._closing = True
        if self.admin is not None:
            await self.admin.close()
            self.admin = None
        tcp = getattr(self, "_tcp_server", None)
        if tcp is not None:
            tcp.close()
            await tcp.wait_closed()
        for client in list(self._clients):
            client.finished = False  # force a final drain even if finished
            await client.finish()
        # The merged view must be captured while the workers still answer:
        # after they exit there is nothing left to ask.
        try:
            self.final_snapshot = await self.snapshot()
            self.final_statuses = await self._broadcast({"op": "status"})
        except (ConnectionError, OSError):  # pragma: no cover - late death
            pass
        for chan in self._controls.values():
            chan.close()
        self._controls = {}
        loop = asyncio.get_running_loop()
        for worker in self.workers.values():
            self._unwatch(worker)
            worker.request_stop()
        await asyncio.gather(*[
            loop.run_in_executor(None, worker.join)
            for worker in self.workers.values()
        ])
        if self._own_runtime_dir:
            shutil.rmtree(self.runtime_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Control plane.
    # ------------------------------------------------------------------
    async def _control(self, shard: int) -> _ControlChannel:
        chan = self._controls.get(shard)
        if chan is None or chan.closed:
            reader, writer = await asyncio.open_unix_connection(
                self.workers[shard].socket_path, limit=_READLINE_LIMIT
            )
            chan = _ControlChannel(reader, writer)
            self._controls[shard] = chan
        return chan

    async def _call_shard(self, shard: int, payload: dict) -> Optional[dict]:
        worker = self.workers.get(shard)
        if worker is None or worker.down:
            return None
        try:
            chan = await self._control(shard)
            return await chan.call(payload)
        except (ConnectionError, OSError, json.JSONDecodeError):
            if not worker.stopping and not self._closing:
                self._mark_down(shard)
            return None

    async def _broadcast(self, payload: dict) -> Dict[int, dict]:
        shards = self.live_shards()
        results = await asyncio.gather(*[
            self._call_shard(k, payload) for k in shards
        ])
        return {k: r for k, r in zip(shards, results) if r is not None}

    async def force_drain(self) -> int:
        """Force every shard to drain; returns the summed pending depth."""
        per = await self._broadcast({"op": "drain"})
        return int(sum(r.get("pending", 0) for r in per.values()))

    # ------------------------------------------------------------------
    # Merged views (the admin plane awaits these coroutines).
    # ------------------------------------------------------------------
    async def snapshot(self) -> dict:
        self.sampler.sample()
        self._g_clients.set(len(self._clients))
        per = await self._broadcast({"op": "metrics"})
        sections = {
            k: {s: v.get(s, {}) for s in ("counters", "gauges", "histograms")}
            for k, v in per.items()
        }
        snap = merge_snapshots(sections, self.metrics.snapshot())
        snap["shards"] = {
            "count": self.num_shards,
            "alive": self.live_shards(),
            "down": [k for k, w in sorted(self.workers.items())
                     if w.down and k not in self.decommissioned],
            "decommissioned": sorted(self.decommissioned),
        }
        return snap

    async def readiness(self) -> Tuple[bool, dict]:
        """Router ``/readyz``: ready iff every non-retired shard is."""
        statuses = await self._broadcast({"op": "status"})
        detail: Dict[str, Any] = {"closing": self._closing, "shards": {}}
        ok = not self._closing
        for shard, worker in sorted(self.workers.items()):
            if shard in self.decommissioned:
                detail["shards"][str(shard)] = {"state": "decommissioned"}
                continue
            status = statuses.get(shard)
            if status is None:
                detail["shards"][str(shard)] = {"ready": False, "state": "down",
                                                "pid": worker.pid}
                ok = False
            else:
                detail["shards"][str(shard)] = {
                    key: status[key]
                    for key in ("ready", "drain_loop", "store", "pid")
                    if key in status
                }
                ok = ok and bool(status.get("ready"))
        return ok, detail

    async def sessions_view(self, limit: int = 50, offset: int = 0) -> dict:
        """Tenant-sorted merge of every shard's session listing."""
        limit = max(int(limit), 0)
        offset = max(int(offset), 0)
        per = await self._broadcast(
            {"op": "sessions", "limit": offset + limit, "offset": 0}
        )
        sessions: List[dict] = []
        total = 0
        closed_total = 0
        for shard in sorted(per):
            view = per[shard]
            total += int(view.get("total", 0))
            closed_total += int(view.get("closed_total", 0))
            for entry in view.get("sessions", []):
                sessions.append({**entry, "shard": shard})
        sessions.sort(key=lambda s: s["tenant"])
        return {
            "total": total,
            "offset": offset,
            "limit": limit,
            "closed_total": closed_total,
            "sessions": sessions[offset:offset + limit],
        }

    async def audit_view(self, after_seq: int = -1, limit: int = 100) -> dict:
        """Seq-merged audit: every shard's records, sorted ``(seq, shard)``.

        Shards mint independent seq spaces (each contiguous from 0 — that
        per-shard contiguity is the replay-verification invariant), so the
        merged view tags each record with its shard and orders by seq
        first: interleaved but deterministic, and filterable back to any
        single shard's contiguous chain.
        """
        after_seq = int(after_seq)
        limit = max(int(limit), 0)
        per = await self._broadcast(
            {"op": "audit", "after_seq": after_seq, "limit": limit}
        )
        records: List[dict] = []
        next_seq = 0
        for shard in sorted(per):
            view = per[shard]
            next_seq = max(next_seq, int(view.get("next_seq", 0)))
            for record in view.get("records", []):
                records.append({**record, "shard": shard})
        records.sort(key=lambda r: (r["seq"], r["shard"]))
        selected = records[:limit]
        return {
            "after_seq": after_seq,
            "limit": limit,
            "count": len(selected),
            "next_seq": next_seq,
            "records": selected,
        }

    async def trace_view(self, slow_limit: int = 32) -> Optional[dict]:
        """Merged ``/debug/trace``: summed spans, bucket-merged stages."""
        if not self.config.trace:
            return None
        per = await self._broadcast({"op": "trace", "slow": int(slow_limit)})
        reports = [per[k] for k in sorted(per)]
        reports = [r for r in reports if r.get("type") != "error"]
        if not reports:
            return None
        stages = {}
        for stage in reports[0].get("stages", {}):
            stages[stage] = merge_histogram_snapshots(
                [r["stages"][stage] for r in reports if stage in r.get("stages", {})]
            )
        slow = sorted(
            (ex for r in reports for ex in r.get("slow", [])),
            key=lambda e: e.get("at", 0.0),
        )
        return {
            "glossary": reports[0].get("glossary", {}),
            "slow_threshold_ms": reports[0].get("slow_threshold_ms"),
            "spans_total": sum(int(r.get("spans_total", 0)) for r in reports),
            "slow_total": sum(int(r.get("slow_total", 0)) for r in reports),
            "stages": stages,
            "stage_p50_sum_ms": round(
                sum(s.get("p50", 0.0) for s in stages.values()), 6
            ),
            "gate_kernel": merge_histogram_snapshots(
                [r["gate_kernel"] for r in reports if "gate_kernel" in r]
            ),
            "total": merge_histogram_snapshots(
                [r["total"] for r in reports if "total" in r]
            ),
            "slow": slow[-max(int(slow_limit), 0):] if slow_limit else [],
        }

    async def slow_view(self, limit: int = 64) -> Optional[dict]:
        report = await self.trace_view(slow_limit=limit)
        if report is None:
            return None
        return {"slow_threshold_ms": report["slow_threshold_ms"],
                "slow": report["slow"]}

    def record_audit_report(self, payload: dict) -> dict:
        """Fold one ``audit_report`` op into the router's registry.

        Canary tenant pairs hash onto different shards, so per-shard audit
        totals would be meaningless — the bound belongs to the fleet, and
        the router's own series merge unlabeled into the aggregate
        ``/metrics`` view (see :func:`merge_snapshots`).
        """
        report = fold_audit_report(
            self.metrics, self._audit_report, payload,
            default_charged=self.config.epsilon,
        )
        self._audit_report = report
        return report

    def audit_eps_view(self) -> dict:
        """The ``/audit/eps`` payload (sync — router-local state only)."""
        out = {"audited": self._audit_report is not None,
               "gate_fault": self.config.gate_fault}
        if self._audit_report is not None:
            out.update(self._audit_report)
        return out

    async def start_admin(self, host: Optional[str] = None,
                          port: Optional[int] = None) -> Tuple[str, int]:
        if self.admin is None:
            self.admin = AdminPlane(
                self,
                host=self.config.admin_host if host is None else host,
                port=(self.config.admin_port or 0) if port is None else port,
            )
            await self.admin.start()
        return self.admin.address

    # ------------------------------------------------------------------
    # Data plane: transports and routing.
    # ------------------------------------------------------------------
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Boot the workers and start the ingress TCP listener."""
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_client, host, port, limit=_READLINE_LIMIT
        )
        if self.config.admin_port is not None:
            await self.start_admin()
        return self._tcp_server

    @property
    def tcp_address(self) -> Tuple[str, int]:
        sock = self._tcp_server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_stdin(self, stdin=None, stdout=None) -> int:
        """Stdio transport through the router; returns responses forwarded.

        Same contract as the single-process version from the pipe's point
        of view: every request line yields its response line, a blank line
        force-drains, EOF drains everything out before returning.  (Lines
        of different tenants may interleave across shards; per-tenant order
        holds.)
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        await self.start()
        if self.config.admin_port is not None and self.admin is None:
            await self.start_admin()
        client = _RouterClient(self, stream=stdout, legacy_stderr=True)
        self._clients.add(client)
        loop = asyncio.get_running_loop()
        try:
            while True:
                raw = await loop.run_in_executor(None, stdin.readline)
                if raw == "":
                    break
                await self._ingest(client, raw.encode()
                                   if isinstance(raw, str) else raw)
        finally:
            await client.finish()
            self._clients.discard(client)
        return sum(up.received for up in client.upstreams.values())

    async def _handle_client(self, reader: asyncio.StreamReader, writer) -> None:
        client = _RouterClient(self, writer=writer)
        self._clients.add(client)
        self._g_clients.set(len(self._clients))
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError,
                        ValueError) as exc:
                    self._c_errors.add()
                    client.send({"type": "error",
                                 "error": f"unreadable frame: {exc}"})
                    break
                if not raw:
                    break
                await self._ingest(client, raw)
        finally:
            await client.finish()
            self._clients.discard(client)
            self._g_clients.set(len(self._clients))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _ingest(self, client: _RouterClient, raw: bytes) -> None:
        """Route one wire line: parse just enough, forward bytes verbatim."""
        payload, error = parse_request_line(raw.decode("utf-8", "replace"))
        if error is not None:
            self._c_errors.add()
            client.send(error)
            await client.flush()
            return
        if payload is None:  # blank line: the force-drain signal
            await self.force_drain()
            return
        op = payload.get("op")
        request_id = payload.get("id")
        if op == "mark":
            # Validated here because a forwarded *bad* mark would make every
            # worker emit an error line the accounting never charged for; a
            # good mark yields no response and replays onto late channels.
            try:
                float(payload["t"])
            except (KeyError, TypeError, ValueError) as exc:
                self._c_errors.add()
                out = {"type": "error", "error": f"invalid mark payload: {exc}"}
                if request_id is not None:
                    out["id"] = request_id
                client.send(out)
                await client.flush()
                return
            if not raw.endswith(b"\n"):
                raw += b"\n"
            client.mark_raw = raw
            for up in client.upstreams.values():
                if not up.closed:
                    up.writer.write(raw)
            return
        if op in ROUTER_OPS:
            try:
                response = await self._router_op(op, payload)
            except (TypeError, ValueError) as exc:
                self._c_errors.add()
                response = {"type": "error",
                            "error": f"invalid {op} payload: {exc}"}
                if request_id is not None:
                    response["id"] = request_id
            client.send(response)
            await client.flush()
            return
        tenant = payload.get("tenant")
        if tenant is None and op not in PROTOCOL:
            # Unroutable and unknown: answer exactly as a worker would.
            self._c_errors.add()
            out = {"type": "error",
                   "error": f"unknown op {op!r}; known: {sorted(PROTOCOL)}"}
            if request_id is not None:
                out["id"] = request_id
            client.send(out)
            await client.flush()
            return
        # Tenant ops (and known-but-malformed ones, e.g. a query with no
        # tenant) route to a shard — the worker's dispatcher is the one
        # authority on payload validity, so its typed errors come back
        # verbatim.  A missing tenant routes deterministically to the
        # ring's "" slot.
        shard = self.ring.shard_for("" if tenant is None else str(tenant))
        await self._forward(client, shard, raw, payload)

    async def _forward(self, client: _RouterClient, shard: int, raw: bytes,
                       payload: dict) -> None:
        self._c_routed.add()
        up = await client.upstream(shard)
        if up is None:
            self._c_unavailable.add()
            out: Dict[str, Any] = {
                "type": "unavailable",
                "shard": shard,
                "error": f"shard {shard} unavailable",
            }
            if payload.get("tenant") is not None:
                out["tenant"] = payload["tenant"]
            if payload.get("id") is not None:
                out["id"] = payload["id"]
            client.send(out)
            await client.flush()
            return
        if not raw.endswith(b"\n"):
            raw += b"\n"
        up.sent += 1
        up.writer.write(raw)
        await up.writer.drain()

    async def _router_op(self, op: str, payload: dict) -> dict:
        request_id = payload.get("id")
        if op == "metrics":
            out = {"type": "metrics", **(await self.snapshot())}
        elif op == "drain":
            out = {"type": "draining", "pending": await self.force_drain()}
        elif op == "status":
            ok, detail = await self.readiness()
            out = {"type": "status", "ready": ok, **detail}
        elif op == "sessions":
            out = {"type": "sessions", **(await self.sessions_view(
                limit=int(payload.get("limit", 50)),
                offset=int(payload.get("offset", 0))))}
        elif op == "audit":
            out = {"type": "audit", **(await self.audit_view(
                after_seq=int(payload.get("after_seq", -1)),
                limit=int(payload.get("limit", 100))))}
        elif op == "audit_report":
            # The audit spans tenants on many shards, so its totals live at
            # the router: the router's own registry merges *unrelabeled*
            # into the cross-shard /metrics aggregate, exactly where a
            # fleet-wide bound belongs.
            out = {"type": "audit_report", **self.record_audit_report(payload)}
        else:  # trace
            report = await self.trace_view(
                slow_limit=int(payload.get("slow", 32)))
            if report is None:
                self._c_errors.add()
                out = {"type": "error",
                       "error": "tracing disabled; start with --trace"}
            else:
                out = {"type": "trace", **report}
        if request_id is not None:
            out["id"] = request_id
        return out
