"""Live observability for the service runtime: counters, histograms, RSS.

A concurrent server is blind without telemetry — and this runtime goes one
step further: the telemetry *drives execution*.  Three consumers hang off
this module:

* the JSONL server (:mod:`repro.service.runtime.server`) counts requests,
  sheds, and errors, and times every drain into a latency histogram that
  the ``metrics`` protocol op (and ``repro metrics``) reports live;
* :class:`AdaptiveDrainPolicy` turns those drain latencies into the next
  drain's batch window — multiplicative decrease when drains blow the
  latency target, gentle growth while the ingress queue is deep and drains
  run cheap (AIMD, the same shape TCP congestion control uses, because the
  failure mode is the same: a queue that grows faster than it drains);
* :class:`RssSampler` re-reads the process RSS and the machine's available
  memory on demand; its :meth:`~RssSampler.memory_probe` is the live hook
  :func:`repro.engine.exec.execute_trials` calls between chunks so a
  ``max_bytes="auto"`` run re-plans its tile budget mid-run instead of
  trusting one sample taken at planning time.

Everything is thread-safe under a per-object lock: producers (connection
handlers, worker threads) and the drain loop update concurrently, and a
``metrics`` op may snapshot from yet another thread.  No external metrics
dependency is used — the histogram is a fixed-bucket Prometheus-style
design small enough to serialize into one JSON response.
"""

from __future__ import annotations

import os
import re
import resource
import threading
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.engine.plans import MemoryProbe, available_memory_bytes
from repro.exceptions import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RssSampler",
    "AdaptiveDrainPolicy",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_OCCUPANCY_BUCKETS",
    "metric_key",
    "parse_metric_key",
]

#: Drain/request latency buckets in milliseconds (log-ish spacing: the p50
#: of a healthy drain sits near 1 ms, a pathological one near 1 s).
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: Batch-occupancy buckets (rows per vectorized gate call).
DEFAULT_OCCUPANCY_BUCKETS: Tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
)


def metric_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The registry key for *name* under *labels*, in Prometheus sample form.

    Labeled metrics are registered under ``name{k="v",...}`` with label keys
    sorted, so the same label set always resolves to the same series and a
    snapshot key round-trips through the Prometheus exporter unchanged.
    """
    if not labels:
        return str(name)
    inner = ",".join(
        '{}="{}"'.format(
            key, str(value).replace("\\", "\\\\").replace('"', '\\"')
        )
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


_KEY_SHAPE_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")
_LABEL_RE = re.compile(r'([\w:]+)="((?:[^"\\]|\\.)*)"')


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """The inverse of :func:`metric_key`: ``'name{k="v"}'`` -> name, labels.

    The shard router relabels whole per-worker snapshots with a
    ``shard="K"`` label; that means splitting every key back into its name
    and existing labels so the shard label merges (sorted) instead of
    string-concatenating.  Unparseable keys come back whole with no labels.
    """
    match = _KEY_SHAPE_RE.match(key)
    if match is None or match.group("labels") is None:
        return key, {}
    labels = {
        label: value.replace('\\"', '"').replace("\\\\", "\\")
        for label, value in _LABEL_RE.findall(match.group("labels"))
    }
    return match.group("name"), labels


class Counter:
    """A monotonically increasing count, safe to bump from any thread."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = str(name)
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise InvalidParameterError("counters only go up")
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time value (queue depth, RSS, current window)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = str(name)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum and interpolated quantiles.

    Buckets are upper bounds; observations above the last bound land in a
    +inf overflow bucket.  :meth:`quantile` linearly interpolates within the
    winning bucket — coarse, but stable, allocation-free on the hot path,
    and good enough to steer a drain-size controller.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds or sorted(bounds) != bounds:
            raise InvalidParameterError("histogram buckets must be sorted and non-empty")
        self.name = str(name)
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf overflow bucket
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan: bucket lists are ~a dozen entries and the scan is
        # cheaper than bisect's function-call overhead at this size.
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    def observe_n(self, value: float, n: int) -> None:
        """Record *n* identical observations of *value* in one update.

        The tracer's weighted path: a drain-level stage duration is the
        latency every one of the drain's requests experienced, so it lands
        in the distribution once per request — without paying a Python-level
        ``observe`` call per request on the hot path.
        """
        if n <= 0:
            return
        value = float(value)
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += n
            self._count += n
            self._sum += value * n

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError("q must be in [0, 1]")
        with self._lock:
            return self.quantile_unlocked(q)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": round(self._sum, 6),
                "mean": round(self.mean, 6),
                "p50": round(self.quantile_unlocked(0.50), 6),
                "p90": round(self.quantile_unlocked(0.90), 6),
                "p99": round(self.quantile_unlocked(0.99), 6),
                "buckets": dict(zip([*map(str, self.bounds), "+inf"], self._counts)),
            }

    def quantile_unlocked(self, q: float) -> float:
        """Quantile without re-taking the lock (call while holding it)."""
        total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0.0
        for index, count in enumerate(self._counts):
            if count == 0:
                continue
            if seen + count >= rank:
                lo = 0.0 if index == 0 else self.bounds[index - 1]
                hi = self.bounds[index] if index < len(self.bounds) else lo
                frac = (rank - seen) / count
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            seen += count
        return self.bounds[-1]


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/histograms.

    Metrics may carry labels (``registry.histogram("stage_ms", labels=
    {"stage": "gate_exec"})``); each distinct label set is its own series,
    keyed by :func:`metric_key` (``stage_ms{stage="gate_exec"}``), which is
    exactly how the series renders in the Prometheus exposition — snapshots
    and the exporter agree on names by construction.

    Snapshot consistency: every primitive guards its mutable state with its
    own lock, and per-metric ``snapshot()``/``value`` reads take that same
    lock, so a snapshot never observes a torn update *within* one metric
    (a histogram's bucket counts, count, and sum always correspond to a
    whole number of observations — the invariant the threaded stress test
    in ``tests/service/test_metrics.py`` pins).  Across metrics, a snapshot
    is only loosely consistent: it is a point-in-time read of each series,
    not an atomic cut of all of them, which is the standard Prometheus
    scrape contract.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Counter:
        key = metric_key(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(key)
            return self._counters[key]

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = metric_key(name, labels)
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(key)
            return self._gauges[key]

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = metric_key(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(
                    key, buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS_MS
                )
            return self._histograms[key]

    def snapshot(self) -> dict:
        """One JSON-able view of everything — the ``metrics`` op response."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(histograms.items())},
        }


def _rss_bytes_statm() -> Optional[int]:
    """Resident set size from /proc/self/statm (Linux), else None."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return None


class RssSampler:
    """Live process-RSS and available-memory sampling, gauge-backed.

    ``sample()`` refreshes both gauges and returns ``(rss, available)``;
    ``memory_probe`` has the zero-argument signature
    :func:`repro.engine.plans.plan_trials` expects, so the sampler plugs
    straight into ``max_bytes="auto"`` re-planning — every probe is a fresh
    read, never a cached planning-time value.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry
        self._rss_gauge = registry.gauge("rss_bytes") if registry else None
        self._avail_gauge = registry.gauge("available_bytes") if registry else None

    @staticmethod
    def rss_bytes() -> int:
        """Current resident set size (peak-RSS fallback off-Linux)."""
        rss = _rss_bytes_statm()
        if rss is not None:
            return rss
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kb) * 1024  # pragma: no cover - non-Linux

    @staticmethod
    def available_bytes() -> int:
        """The machine's currently available memory (live read)."""
        return available_memory_bytes()

    def sample(self) -> Tuple[int, int]:
        rss = self.rss_bytes()
        available = self.available_bytes()
        if self._rss_gauge is not None:
            self._rss_gauge.set(rss)
        if self._avail_gauge is not None:
            self._avail_gauge.set(available)
        return rss, available

    def memory_probe(self) -> int:
        """Available bytes, freshly sampled — the engine re-planning hook."""
        return self.sample()[1]


class AdaptiveDrainPolicy:
    """Feedback controller for the drain batch window.

    The server wants drains *big* (batch occupancy is where the vectorized
    engine wins) but *bounded* (a drain is head-of-line blocking for every
    queued request).  The policy holds a latency target and adjusts the
    window AIMD-style after every drain:

    * observed drain latency above ``target_ms`` → multiplicative shrink
      (halving by default) — recover quickly from an oversized window;
    * latency comfortably under target *and* the ingress queue at least as
      deep as the current window → gentle multiplicative growth — only
      grow when a bigger window would actually fill.

    Deterministic: the window after a sequence of ``observe`` calls is a
    pure function of the observations, which is what the unit tests pin.
    """

    def __init__(
        self,
        initial: int = 4096,
        min_window: int = 256,
        max_window: int = 65536,
        target_ms: float = 5.0,
        shrink: float = 0.5,
        grow: float = 1.25,
        headroom: float = 0.5,
    ) -> None:
        if not 0 < min_window <= initial <= max_window:
            raise InvalidParameterError(
                "need 0 < min_window <= initial <= max_window"
            )
        if not 0.0 < shrink < 1.0 or grow <= 1.0:
            raise InvalidParameterError("need shrink in (0,1) and grow > 1")
        if target_ms <= 0.0 or not 0.0 < headroom < 1.0:
            raise InvalidParameterError("need target_ms > 0 and headroom in (0,1)")
        self.min_window = int(min_window)
        self.max_window = int(max_window)
        self.target_ms = float(target_ms)
        self.shrink = float(shrink)
        self.grow = float(grow)
        self.headroom = float(headroom)
        self._window = int(initial)
        self._lock = threading.Lock()

    @property
    def window(self) -> int:
        return self._window

    def observe(self, drain_ms: float, drained: int, queue_depth: int) -> int:
        """Fold one drain's measurements into the next window size."""
        with self._lock:
            if drained <= 0:
                return self._window
            if drain_ms > self.target_ms:
                # Scale by how undersized the drain actually was, floored by
                # the multiplicative shrink — one wildly slow drain drops the
                # window hard, mild overshoot trims it.
                factor = max(self.shrink, self.target_ms / drain_ms)
                self._window = max(self.min_window, int(self._window * factor))
            elif drain_ms < self.target_ms * self.headroom and queue_depth >= self._window:
                self._window = min(self.max_window, int(self._window * self.grow) + 1)
            return self._window


#: Re-exported for callers wiring the sampler into the engine hook.
__all__.append("MemoryProbe")
