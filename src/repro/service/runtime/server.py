"""The concurrent service runtime: an asyncio JSONL ingestion server.

PR 3's service answers ~2M req/s — but only through a closed loop where one
thread submits a window and drains it.  Real ingestion is concurrent: many
clients, bursty arrival, slow consumers.  This module is the runtime layer
between the wire and the batcher:

* **Framing** — newline-delimited JSON over TCP (``serve_tcp``) or stdio
  (``serve_stdin``).  Each request line is one op (see :data:`PROTOCOL`);
  each response line is one typed object.  Malformed input never kills the
  loop: it becomes a typed ``error`` response and the connection lives on.
* **Admission control** — every query passes through a bounded, thread-safe
  :class:`IngressQueue` before it may touch the batcher.  When the queue is
  full the request is **shed** with a typed ``overloaded`` response instead
  of queueing unboundedly or blocking the reader (which would deadlock a
  client that pipelines requests ahead of reading responses).  Backpressure
  is therefore explicit and loss-free at the protocol level: the client
  knows exactly which requests were never executed.
* **Batched draining** — a single drain loop owns the (deliberately
  single-threaded) :class:`~repro.service.batcher.RequestBatcher` and
  :class:`~repro.service.engine.ServiceEngine`: it takes up to one window of
  admitted requests, submits them, executes one cross-session drain, and
  routes each answer back to the connection that asked.  Concurrency lives
  *around* the engine, never inside it — which is what keeps concurrent
  results bit-identical to a single-threaded drain of the same per-tenant
  request order (enforced in ``tests/service/test_runtime_server.py``).
* **Adaptive sizing** — drain latency and queue depth feed the
  :class:`~repro.service.runtime.metrics.AdaptiveDrainPolicy`, so the window
  grows while drains are cheap and collapses when a drain blows its latency
  target.  All counters/histograms are served live by the ``metrics`` op.
* **Durability** — with ``state_dir`` configured, every drain stages its
  responses in an outbox, flushes the :class:`~repro.service.store.
  DurableStore` (write-ahead fsync), and only then sends: a client never
  sees an answer whose budget spend isn't on disk.  Boot recovers the
  previous process's exact state when the directory holds one; a store that
  exhausts its bounded retries degrades answers to typed ``unavailable``
  responses instead of killing connections; graceful shutdown flushes,
  checkpoints, and closes the store.

* **Observability** — opt-in per-request span tracing (``ServerConfig.
  trace``) feeds per-stage latency histograms and a slow-request exemplar
  ring (:mod:`repro.service.observability`), and an HTTP admin plane on its
  own port (``ServerConfig.admin_port``) serves health/readiness probes,
  the Prometheus ``/metrics`` scrape, paginated session/audit listings, and
  on-demand sampling profiles — all on the same event loop.

The protocol speaks both shapes of request: scalar ``query`` ops and
``query_block`` ops carrying a whole item array (optionally base64-packed
int64, the wire analog of the batcher's array lane), plus ``grid`` ops that
gate one query across every budget lane of a multi-budget tenant.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import os
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ReproError, StoreUnavailableError
from repro.rng import RngLike
from repro.service.engine import SVTQueryService
from repro.service.observability.httpadmin import AdminPlane
from repro.service.observability.tracing import RequestTracer
from repro.service.runtime.metrics import (
    DEFAULT_OCCUPANCY_BUCKETS,
    AdaptiveDrainPolicy,
    MetricsRegistry,
    RssSampler,
)
from repro.service.store import (
    DurableStore,
    FaultInjector,
    StoreConfig,
    restore_service,
)

#: fsync latencies sit well under the drain-latency buckets on local disks.
FSYNC_BUCKETS_MS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)

#: Recovery replays whole services, so the tail stretches to seconds.
RECOVERY_BUCKETS_MS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                       1000.0, 2500.0, 5000.0, 10000.0)

__all__ = ["ServerConfig", "IngressQueue", "RuntimeServer", "PROTOCOL",
           "parse_request_line", "fold_audit_report"]

#: One line per op; one typed response line per request (``answers`` lines
#: cover a whole block).  Shared reference for docs, tests, and the CLI.
PROTOCOL = {
    "open": "open a tenant session (or, with 'lane', attach a budget lane)",
    "query": "one item query: {op, tenant, item, lane?, id?}",
    "query_block": "an item-array query: {op, tenant, items|items_b64, lane?, bin?, id?}",
    "grid": "gate one item under every budget lane: {op, tenant, item, id?}",
    "drain": "force a drain of everything admitted",
    "metrics": "live counters/histograms/gauges snapshot",
    "close": "evict a tenant, releasing unspent budget",
    "mark": "timing beacon: {op, t}; stamps following requests on this "
            "connection so traced ingress_wait starts at client send",
    "sessions": "paginated live-session listing: {op, limit?, offset?}",
    "audit": "audit records (archive + live): {op, after_seq?, limit?}",
    "status": "readiness verdict + accounting totals for this process",
    "trace": "per-stage latency report (requires --trace): {op, slow?}",
    "audit_report": "record empirical-audit results: {op, trials, guesses, "
                    "correct, eps_lb, charged_eps, confidence?, rule?, id?}",
}

_READLINE_LIMIT = 1 << 24  # 16 MiB: a 1M-item b64 block is ~11 MiB


def fold_audit_report(metrics, prev: Optional[dict], payload: dict,
                      default_charged: float) -> dict:
    """Fold one cumulative ``audit_report`` payload into *metrics*.

    Shared by the single-process server and the shard router (whose own
    registry merges unrelabeled into the cross-shard aggregate).  Counters
    advance by the delta against *prev*; a payload with fewer trials than
    the previous report is a fresh audit run and counts in full.  Raises
    ``ValueError``/``KeyError`` on malformed payloads — the dispatchers
    turn those into typed ``error`` lines.
    """
    trials = int(payload["trials"])
    guesses = int(payload["guesses"])
    correct = int(payload["correct"])
    if not 0 <= correct <= guesses <= trials:
        raise ValueError(
            f"need 0 <= correct <= guesses <= trials, "
            f"got {correct}/{guesses}/{trials}"
        )
    eps_lb = float(payload["eps_lb"])
    charged = float(payload.get("charged_eps", default_charged))
    before = prev or {}
    for name, now in (("audit_trials_total", trials),
                      ("audit_guesses_total", guesses),
                      ("audit_correct_total", correct)):
        key = name[len("audit_"):-len("_total")]
        last = int(before.get(key, 0))
        metrics.counter(name).add(now - last if now >= last else now)
    metrics.gauge("audited_eps_lb").set(eps_lb)
    metrics.gauge("audit_charged_eps").set(charged)
    return {
        "trials": trials,
        "guesses": guesses,
        "correct": correct,
        "accuracy": round(correct / guesses, 6) if guesses else None,
        "eps_lb": eps_lb,
        "charged_eps": charged,
        "confidence": float(payload.get("confidence", 0.95)),
        "delta": float(payload.get("delta", 0.0)),
        "rule": payload.get("rule"),
        "caught": bool(eps_lb > charged),
    }

#: Retained TTL-eviction records (:attr:`RuntimeServer.expired_tenants`).
EXPIRY_LOG_LIMIT = 1024


@dataclass(frozen=True)
class ServerConfig:
    """Runtime knobs plus the default session configuration for auto-open.

    ``max_queue`` bounds admitted-but-undrained requests (the shed point);
    ``window`` seeds the drain batch size, which :class:`AdaptiveDrainPolicy`
    then steers within [min_window, max_window] when ``adaptive`` is on.
    """

    epsilon: float = 1.0
    error_threshold: float = 1.0
    c: int = 3
    svt_fraction: float = 0.5
    monotonic: bool = False
    mode: str = "shared"
    seed: Optional[int] = None
    auto_open: bool = True
    session_ttl: Optional[float] = None
    max_queue: int = 65536
    window: int = 4096
    min_window: int = 256
    max_window: int = 65536
    adaptive: bool = True
    target_drain_ms: float = 5.0
    drain_idle_s: float = 0.002
    #: Directory for the durable store (None = in-memory only).  When the
    #: directory already holds a bootstrapped service, boot recovers it —
    #: ``seed`` is then superseded by the persisted seed, while ``mode``
    #: still applies (an explicit runtime choice, not accounting state).
    state_dir: Optional[str] = None
    #: WAL flush batches between automatic snapshot checkpoints.
    checkpoint_every: int = 256
    #: Per-request span tracing: per-stage latency histograms plus a
    #: bounded ring of slow-request exemplars (``trace_slow_ms`` threshold,
    #: ``trace_exemplars`` ring size).  Off by default — on, it costs one
    #: weighted histogram observation per stage per drain plus one per wire
    #: entry, which the server bench bounds at <10% throughput.
    trace: bool = False
    trace_slow_ms: float = 50.0
    trace_exemplars: int = 256
    #: HTTP admin plane (``/healthz``, ``/metrics``, ...) on its own port,
    #: sharing the event loop.  None = disabled; 0 = ephemeral port.
    admin_port: Optional[int] = None
    admin_host: str = "127.0.0.1"
    #: Injectable gate fault (see :data:`repro.engine.gate.GATE_FAULTS`) —
    #: the empirical privacy auditor's broken-gate mode.  Stamped onto every
    #: session the service opens (recovered ones included).  None in
    #: production; ``repro serve --gate-fault`` / ``REPRO_GATE_FAULT`` set it.
    gate_fault: Optional[str] = None


@dataclass
class _IngressEntry:
    """One admitted request: what to run and where the answer goes."""

    kind: str  # "query" | "block" | "grid"
    tenant: str
    lane: Optional[str]
    conn: "_Connection"
    request_id: Optional[Any] = None
    item: Optional[int] = None
    items: Optional[np.ndarray] = None
    bin: bool = False
    #: Admission timestamp (perf_counter), stamped at construction: the
    #: request tracer's ``ingress_wait`` runs from here to drain pickup.
    t_admit: float = field(default_factory=time.perf_counter)
    #: Client send timestamp (perf_counter epoch) from the connection's
    #: latest ``mark`` op, if any.  When present, ``ingress_wait`` starts
    #: here instead of at admission, so the bytes' time in socket buffers
    #: (readers starve while a drain blocks the loop) is attributed to the
    #: queue rather than silently dropped — the X-Request-Start pattern.
    t_client: Optional[float] = None

    @property
    def weight(self) -> int:
        return int(self.items.size) if self.items is not None else 1


class IngressQueue:
    """Bounded, thread-safe MPSC queue between producers and the drain loop.

    Producers (connection handlers, or plain threads in tests) call
    :meth:`try_put`; a False return means the request was shed — the caller
    answers ``overloaded`` and moves on, so producers never block and the
    drain loop can never be deadlocked by a full queue.  The single consumer
    (the drain loop) calls :meth:`take`.  Weights count *requests*, not
    entries: one 4096-item block occupies 4096 slots, keeping the shed
    threshold meaningful under the array lane.
    """

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError("ingress limit must be > 0")
        self.limit = int(limit)
        self._entries: deque = deque()
        self._depth = 0
        self._lock = threading.Lock()
        self._event = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind the consumer's event loop (for cross-thread wakeups)."""
        self._loop = loop

    def _notify(self) -> None:
        loop = self._loop
        if loop is None:
            self._event.set()
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._event.set()
        else:
            loop.call_soon_threadsafe(self._event.set)

    def try_put(self, entry: _IngressEntry) -> bool:
        """Admit *entry* unless its weight would breach the bound."""
        weight = entry.weight
        with self._lock:
            if self._depth + weight > self.limit:
                return False
            self._entries.append(entry)
            self._depth += weight
        self._notify()
        return True

    def take(self, max_requests: Optional[int] = None) -> List[_IngressEntry]:
        """Pop entries totalling at most *max_requests* (at least one entry
        when non-empty, so an oversized block can always make progress)."""
        out: List[_IngressEntry] = []
        taken = 0
        with self._lock:
            while self._entries:
                weight = self._entries[0].weight
                if out and max_requests is not None and taken + weight > max_requests:
                    break
                entry = self._entries.popleft()
                out.append(entry)
                taken += weight
                self._depth -= weight
                if max_requests is not None and taken >= max_requests:
                    break
            if not self._entries:
                self._event.clear()
        return out

    @property
    def depth(self) -> int:
        """Admitted requests not yet drained (weighted)."""
        return self._depth

    def __len__(self) -> int:
        return self._depth

    async def wait(self, timeout: Optional[float] = None) -> bool:
        """Wait until something is queued (or *timeout* elapses)."""
        if self._depth:
            return True
        try:
            await asyncio.wait_for(self._event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False


class _Connection:
    """One client's response sink (TCP writer or a text stream)."""

    __slots__ = ("writer", "stream", "name", "closed", "pending", "mark_t0")

    def __init__(self, writer=None, stream=None, name: str = "conn") -> None:
        self.writer = writer
        self.stream = stream
        self.name = name
        self.closed = False
        self.pending = 0  # admitted entries whose response hasn't been sent
        self.mark_t0: Optional[float] = None  # latest "mark" op timestamp

    def send(self, payload: dict) -> None:
        self.send_raw(
            (json.dumps(payload, separators=(",", ":"), default=float) + "\n").encode()
        )

    def send_raw(self, data: bytes) -> None:
        if self.closed:
            return
        try:
            if self.writer is not None:
                self.writer.write(data)
            else:
                self.stream.write(data.decode())
        except (ConnectionError, RuntimeError, ValueError):
            self.closed = True

    async def flush(self) -> None:
        if self.closed:
            return
        try:
            if self.writer is not None:
                await self.writer.drain()
            elif hasattr(self.stream, "flush"):
                self.stream.flush()
        except (ConnectionError, RuntimeError, ValueError):
            self.closed = True


def _b64_items(text: str) -> np.ndarray:
    # validate=False: strict alphabet checking costs ~40% of the decode on
    # the hot path, and a corrupted payload still fails safely — either here
    # on length, or as typed out-of-range rejections at drain time.
    raw = base64.b64decode(text.encode("ascii"))
    if len(raw) % 8:
        raise ValueError("items_b64 must be little-endian int64 bytes")
    return np.frombuffer(raw, dtype="<i8").astype(np.int64, copy=False)


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def parse_request_line(raw: str) -> Tuple[Optional[dict], Optional[dict]]:
    """Decode one wire line into ``(payload, error)``.

    The single framing authority, shared by :meth:`RuntimeServer.ingest_line`
    and the shard router (which must agree byte-for-byte on what a line
    means without importing the dispatch machinery).  A blank line returns
    ``(None, None)`` — the force-drain signal.  Malformed input returns a
    typed ``error`` response as the second element; legacy ``"tenant item"``
    framing (the PR 3 CLI) is folded into a ``query`` payload, with parse
    failures carrying the ``_legacy`` flag so stdio transports can keep the
    old report-on-stderr contract.
    """
    line = raw.strip()
    if not line:
        return None, None
    if not line.startswith(("{", "[")):
        parts = line.split()
        if len(parts) != 2:
            return None, {"type": "error", "error": f"bad request line {line!r}",
                          "_legacy": True}
        try:
            item = int(parts[1])
        except ValueError:
            return None, {"type": "error", "error": f"bad request line {line!r}",
                          "_legacy": True}
        return {"op": "query", "tenant": parts[0], "item": item}, None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return None, {"type": "error", "error": f"malformed JSON: {exc}"}
    if not isinstance(payload, dict):
        return None, {"type": "error", "error": "request must be a JSON object"}
    return payload, None


class RuntimeServer:
    """Concurrent ingestion in front of one :class:`SVTQueryService`.

    The server owns the service, the ingress queue, the metrics registry,
    and the drain loop.  TCP mode (:meth:`serve_tcp`) runs the drain loop as
    a background task; stdio mode (:meth:`serve_stdin`) drains inline after
    each window/blank line, preserving the old ``repro serve`` semantics
    while speaking the same protocol.
    """

    def __init__(
        self,
        supports,
        config: Optional[ServerConfig] = None,
        seed: RngLike = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServerConfig()
        #: Durable persistence (None = the pre-store in-memory behavior).
        self.store: Optional[DurableStore] = None
        #: :class:`~repro.service.store.RecoveryInfo` when boot replayed one.
        self.recovery = None
        if self.config.state_dir is not None:
            store = DurableStore(
                self.config.state_dir,
                StoreConfig(checkpoint_every=self.config.checkpoint_every),
                faults=FaultInjector.from_env(),
            )
            if store.has_state():
                self.service, self.recovery = restore_service(
                    store, supports, mode=self.config.mode
                )
                # The fault knob is a runtime choice like ``mode``, never
                # accounting state: re-stamp recovered sessions so a reboot
                # cannot silently heal (or break) the gate under audit.
                self.service.manager.gate_fault = self.config.gate_fault
                for sess in self.service.manager:
                    sess.gate_fault = self.config.gate_fault
                    for lane in sess.lanes.values():
                        lane.gate_fault = self.config.gate_fault
            else:
                self.service = SVTQueryService(
                    supports, seed=self.config.seed if seed is None else seed,
                    mode=self.config.mode, gate_fault=self.config.gate_fault,
                )
                store.attach(self.service)
            self.store = store
        else:
            self.service = SVTQueryService(
                supports, seed=self.config.seed if seed is None else seed,
                mode=self.config.mode, gate_fault=self.config.gate_fault,
            )
        self.metrics = metrics or MetricsRegistry()
        self.sampler = RssSampler(self.metrics)
        self.policy = AdaptiveDrainPolicy(
            initial=min(max(self.config.window, self.config.min_window),
                        self.config.max_window),
            min_window=self.config.min_window,
            max_window=max(self.config.max_window, self.config.min_window),
            target_ms=self.config.target_drain_ms,
        )
        self.ingress = IngressQueue(self.config.max_queue)
        #: Per-request span tracing (None unless ``config.trace``).
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(
                self.metrics,
                slow_ms=self.config.trace_slow_ms,
                max_exemplars=self.config.trace_exemplars,
            )
            if self.config.trace
            else None
        )
        #: The HTTP admin plane, once started (see :meth:`start_admin`).
        self.admin: Optional[AdminPlane] = None
        self._drain_task: Optional[asyncio.Task] = None
        #: Monotonic heartbeat the drain loop refreshes every iteration —
        #: the freshness signal behind the admin plane's ``/readyz``.
        self.drain_beat = time.monotonic()
        self._closing = False
        self._force_drain = False
        self._drain_lock = asyncio.Lock()
        self._conns: List[_Connection] = []
        #: ``(tenant, released epsilon)`` per TTL eviction, most recent
        #: :data:`EXPIRY_LOG_LIMIT` only (a long-running TTL server would
        #: otherwise grow this without bound); set :attr:`on_expire` for a
        #: live per-eviction hook (the CLI wires it to stderr).
        self.expired_tenants: List[Tuple[str, float]] = []
        self.on_expire: Optional[Callable[[str, float], None]] = None
        # Hot counters, bound once.
        m = self.metrics
        self._c_requests = m.counter("requests_total")
        self._c_answered = m.counter("answered_total")
        self._c_rejected = m.counter("rejected_total")
        self._c_shed = m.counter("shed_total")
        self._c_errors = m.counter("errors_total")
        self._c_drains = m.counter("drains_total")
        self._c_db = m.counter("db_accesses_total")
        self._c_expired = m.counter("sessions_expired_total")
        self._h_drain = m.histogram("drain_latency_ms")
        self._h_occupancy = m.histogram("batch_occupancy_rows", DEFAULT_OCCUPANCY_BUCKETS)
        self._g_depth = m.gauge("ingress_depth")
        self._g_window = m.gauge("drain_window")
        self._g_sessions = m.gauge("open_sessions")
        self._g_window.set(self.policy.window)
        # Durability metrics (populated only when a store is configured).
        self._c_store_events = m.counter("store_events_total")
        self._c_store_unavailable = m.counter("store_unavailable_total")
        self._h_fsync = m.histogram("fsync_latency_ms", FSYNC_BUCKETS_MS)
        self._h_recovery = m.histogram("recovery_time_ms", RECOVERY_BUCKETS_MS)
        self._g_wal = m.gauge("store_wal_batches")
        # Empirical-audit metrics, populated by the ``audit_report`` op (the
        # ``repro audit-live`` driver posts its running totals here so the
        # audited bound is scrapeable next to the ledger's charge).
        self._g_eps_lb = m.gauge("audited_eps_lb")
        self._g_eps_charged = m.gauge("audit_charged_eps")
        self._c_audit_trials = m.counter("audit_trials_total")
        self._c_audit_guesses = m.counter("audit_guesses_total")
        self._c_audit_correct = m.counter("audit_correct_total")
        #: The most recent ``audit_report`` payload (behind ``/audit/eps``).
        self._audit_report: Optional[dict] = None
        if self.recovery is not None:
            self._h_recovery.observe(self.recovery.duration_ms)
            self._g_sessions.set(len(self.service.manager))

    # ------------------------------------------------------------------
    # Parsing and dispatch (one request line in, at most one immediate
    # response out; queries respond later, from the drain).
    # ------------------------------------------------------------------
    def ingest_line(self, raw: str, conn: _Connection) -> Optional[dict]:
        """Handle one request line; returns an immediate response or None.

        Never raises on bad input: malformed JSON, unknown ops, and invalid
        payloads all come back as typed ``error`` responses so one broken
        client line can't take the server down (the crash this replaces was
        a raw ``json.loads`` traceback unwinding the accept loop).
        """
        payload, error = parse_request_line(raw)
        if error is not None:
            self._c_errors.add()
            return error
        if payload is None:
            self._force_drain = True
            return None
        return self._dispatch(payload, conn)

    def _error(self, message: str, request_id=None) -> dict:
        self._c_errors.add()
        out = {"type": "error", "error": message}
        if request_id is not None:
            out["id"] = request_id
        return out

    def _dispatch(self, payload: dict, conn: _Connection) -> Optional[dict]:
        op = payload.get("op")
        request_id = payload.get("id")
        try:
            if op == "query":
                return self._admit(
                    _IngressEntry(
                        kind="query",
                        tenant=str(payload["tenant"]),
                        lane=payload.get("lane"),
                        conn=conn,
                        request_id=request_id,
                        item=int(payload["item"]),
                        t_client=conn.mark_t0,
                    )
                )
            if op == "query_block":
                if "items_b64" in payload:
                    items = _b64_items(payload["items_b64"])
                else:
                    items = np.asarray(payload["items"], dtype=np.int64)
                if items.ndim != 1:
                    return self._error("items must be a flat array", request_id)
                return self._admit(
                    _IngressEntry(
                        kind="block",
                        tenant=str(payload["tenant"]),
                        lane=payload.get("lane"),
                        conn=conn,
                        request_id=request_id,
                        items=items,
                        bin=bool(payload.get("bin", False)),
                        t_client=conn.mark_t0,
                    )
                )
            if op == "grid":
                return self._admit(
                    _IngressEntry(
                        kind="grid",
                        tenant=str(payload["tenant"]),
                        lane=None,
                        conn=conn,
                        request_id=request_id,
                        item=int(payload["item"]),
                        t_client=conn.mark_t0,
                    )
                )
            if op == "mark":
                # Timing beacon, no response line: requests after it on this
                # connection trace their ingress_wait from the client's own
                # send timestamp (perf_counter epoch — same-host comparable;
                # cross-host clients should simply not send marks).
                conn.mark_t0 = float(payload["t"])
                return None
            if op == "open":
                return self._handle_open(payload, request_id)
            if op == "metrics":
                out = {"type": "metrics", **self.snapshot()}
                if request_id is not None:
                    out["id"] = request_id
                return out
            if op == "drain":
                self._force_drain = True
                out = {"type": "draining", "pending": self.ingress.depth}
                if request_id is not None:
                    out["id"] = request_id
                return out
            if op == "close":
                # Drain-ordered: eviction must not outrun queries that were
                # admitted before it, so it rides the ingress queue and the
                # drain executes it after the preceding segment's answers.
                entry = _IngressEntry(
                    kind="close", tenant=str(payload["tenant"]), lane=None,
                    conn=conn, request_id=request_id,
                )
                self._force_drain = True
                if not self.ingress.try_put(entry):
                    return self._error("close refused: ingress full", request_id)
                entry.conn.pending += 1
                return None
            if op == "sessions":
                out = {"type": "sessions", **self.sessions_view(
                    limit=int(payload.get("limit", 50)),
                    offset=int(payload.get("offset", 0)))}
                if request_id is not None:
                    out["id"] = request_id
                return out
            if op == "audit":
                out = {"type": "audit", **self.audit_view(
                    after_seq=int(payload.get("after_seq", -1)),
                    limit=int(payload.get("limit", 100)))}
                if request_id is not None:
                    out["id"] = request_id
                return out
            if op == "status":
                out = {"type": "status", **self.status_view()}
                if request_id is not None:
                    out["id"] = request_id
                return out
            if op == "audit_report":
                out = {"type": "audit_report", **self.record_audit_report(payload)}
                if request_id is not None:
                    out["id"] = request_id
                return out
            if op == "trace":
                report = self.trace_view(slow_limit=int(payload.get("slow", 32)))
                if report is None:
                    return self._error("tracing disabled; start with --trace",
                                       request_id)
                out = {"type": "trace", **report}
                if request_id is not None:
                    out["id"] = request_id
                return out
            return self._error(f"unknown op {op!r}; known: {sorted(PROTOCOL)}", request_id)
        except (KeyError, TypeError, ValueError, binascii.Error) as exc:
            return self._error(f"invalid {op or 'request'} payload: {exc}", request_id)
        except ReproError as exc:
            return self._error(str(exc), request_id)

    def _admit(self, entry: _IngressEntry) -> Optional[dict]:
        self._c_requests.add(entry.weight)
        if not self.ingress.try_put(entry):
            self._c_shed.add(entry.weight)
            out = {
                "type": "overloaded",
                "shed": entry.weight,
                "pending": self.ingress.depth,
                "limit": self.ingress.limit,
            }
            if entry.request_id is not None:
                out["id"] = entry.request_id
            return out
        entry.conn.pending += 1
        self._g_depth.set(self.ingress.depth)
        return None

    def _handle_open(self, payload: dict, request_id) -> dict:
        tenant = str(payload["tenant"])
        cfg = self.config
        kwargs = dict(
            epsilon=float(payload.get("epsilon", cfg.epsilon)),
            error_threshold=float(payload.get("threshold", cfg.error_threshold)),
            c=int(payload.get("c", cfg.c)),
            svt_fraction=float(payload.get("svt_fraction", cfg.svt_fraction)),
            monotonic=bool(payload.get("monotonic", cfg.monotonic)),
        )
        lane = payload.get("lane")
        if lane is not None:
            if payload.get("pool") is not None:
                raise ValueError(
                    "'pool' applies to the tenant session, not a lane — "
                    "open the session with a pool first; lanes inherit it"
                )
            if tenant not in self.service.manager:
                if not self.config.auto_open:
                    raise ValueError(
                        f"no open session for tenant {tenant!r} to attach a lane to"
                    )
                self._auto_open(tenant)
            session = self.service.manager.open_lane(tenant, str(lane), **kwargs)
        else:
            pool = payload.get("pool")
            if pool is not None:
                from repro.accounting.budget import BudgetPool

                kwargs["pool"] = BudgetPool(float(pool))
            session = self.service.open_session(tenant, ttl_s=cfg.session_ttl, **kwargs)
        self._g_sessions.set(len(self.service.manager))
        # Opens respond immediately (not from a drain), so the open — its
        # pool draw and gate charge included — must commit here, before the
        # "opened" frame releases it to the client.
        try:
            self._store_flush()
        except StoreUnavailableError as exc:
            self._c_store_unavailable.add()
            out = {
                "type": "unavailable",
                "op": "open",
                "tenant": tenant,
                "error": f"durable store unavailable: {exc}",
            }
            if request_id is not None:
                out["id"] = request_id
            return out
        out = {
            "type": "opened",
            "tenant": tenant,
            "lane": lane,
            "session": session.session_id,
        }
        if request_id is not None:
            out["id"] = request_id
        return out

    def _auto_open(self, tenant: str):
        cfg = self.config
        return self.service.open_session(
            tenant,
            epsilon=cfg.epsilon,
            error_threshold=cfg.error_threshold,
            c=cfg.c,
            svt_fraction=cfg.svt_fraction,
            monotonic=cfg.monotonic,
            ttl_s=cfg.session_ttl,
        )

    def _session_for(self, entry: _IngressEntry):
        manager = self.service.manager
        if entry.tenant not in manager:
            if not self.config.auto_open:
                raise ReproError(f"no open session for tenant {entry.tenant!r}")
            self._auto_open(entry.tenant)
            self._g_sessions.set(len(manager))
        return manager.session(entry.tenant).lane(entry.lane)

    # ------------------------------------------------------------------
    # The drain: admitted entries -> batcher -> engine -> responses.
    # ------------------------------------------------------------------
    async def drain_once(self, window: Optional[int] = None) -> int:
        """Run one drain cycle; returns the number of requests served."""
        async with self._drain_lock:
            return self._drain_sync(window)

    def _store_flush(self) -> None:
        """The durability barrier: flush the store, feed the fsync metrics.

        Raises :class:`StoreUnavailableError` when the write could not be
        made durable after the store's bounded retries — the caller decides
        what degrades (answers become typed ``unavailable`` responses)."""
        store = self.store
        if store is None:
            return
        events = store.flush()
        if events:
            self._c_store_events.add(events)
            self._h_fsync.observe(store.stats["last_fsync_ms"])
        self._g_wal.set(store.wal_batches)

    def _store_flush_quiet(self) -> None:
        """Best-effort flush where no requester is waiting (TTL expiry)."""
        try:
            self._store_flush()
        except StoreUnavailableError:
            self._c_store_unavailable.add()

    def _drain_sync(self, window: Optional[int] = None) -> int:
        self._force_drain = False
        expired_any = False
        if self.config.session_ttl is not None:
            before = dict(self.service.manager.released_budget)
            expired = self.service.expire()
            if expired:
                expired_any = True
                self._c_expired.add(len(expired))
                released = self.service.manager.released_budget
                for tenant in expired:
                    delta = released.get(tenant, 0.0) - before.get(tenant, 0.0)
                    self.expired_tenants.append((tenant, delta))
                    if self.on_expire is not None:
                        self.on_expire(tenant, delta)
                del self.expired_tenants[:-EXPIRY_LOG_LIMIT]
                self._g_sessions.set(len(self.service.manager))
        entries = self.ingress.take(window)
        self._g_depth.set(self.ingress.depth)
        if not entries:
            if expired_any:
                self._store_flush_quiet()
            return 0
        start = time.perf_counter()
        # Stage accumulators for the request tracer: _run_segment adds the
        # cohort_form / gate_exec / respond_encode seconds of every segment
        # (plus the engine's kernel-ms sub-span); flush and send are timed
        # here.  None keeps the untraced hot path free of the bookkeeping.
        tracer = self.tracer
        stage_acc: Optional[Dict[str, float]] = (
            {"cohort_form": 0.0, "gate_exec": 0.0, "respond_encode": 0.0,
             "gate_kernel": 0.0}
            if tracer is not None
            else None
        )
        # Drain-ordered control: a "close" splits the window into segments —
        # everything admitted before it is answered first, then the tenant
        # is evicted, then the rest of the window proceeds.  Responses are
        # *staged*, not sent: nothing reaches a client until the durability
        # barrier below has committed the state the responses were built on.
        served = 0
        outbox: List[Tuple[_Connection, object, Optional[dict]]] = []
        segment: List[_IngressEntry] = []
        for entry in entries:
            if entry.kind != "close":
                segment.append(entry)
                continue
            served += self._run_segment(segment, outbox, stage_acc)
            segment = []
            entry.conn.pending -= 1
            try:
                released = self.service.evict(entry.tenant)
            except ReproError as exc:
                outbox.append((entry.conn, self._error(str(exc), entry.request_id), None))
                continue
            self._g_sessions.set(len(self.service.manager))
            out = {"type": "closed", "tenant": entry.tenant, "released": released}
            fallback = {"type": "unavailable", "op": "close", "tenant": entry.tenant}
            if entry.request_id is not None:
                out["id"] = entry.request_id
                fallback["id"] = entry.request_id
            outbox.append((entry.conn, out, fallback))
        served += self._run_segment(segment, outbox, stage_acc)

        # Durability barrier: fsync the drain's spends/releases, then send.
        # On store failure, every response with a fallback degrades to a
        # typed "unavailable" — the connection lives, the answer (computed
        # against state the disk never saw) is withheld.
        failure: Optional[str] = None
        t_flush = time.perf_counter()
        if self.store is not None:
            try:
                self._store_flush()
            except StoreUnavailableError as exc:
                failure = str(exc)
        t_send = time.perf_counter()
        for conn, payload, fallback in outbox:
            if failure is not None and fallback is not None:
                self._c_store_unavailable.add()
                conn.send({**fallback, "error": f"durable store unavailable: {failure}"})
            elif isinstance(payload, bytes):
                conn.send_raw(payload)
            else:
                conn.send(payload)

        t_done = time.perf_counter()
        elapsed_ms = (t_done - start) * 1e3
        self._c_drains.add()
        self._h_drain.observe(elapsed_ms)
        if self.config.adaptive:
            self.policy.observe(elapsed_ms, served, self.ingress.depth)
            self._g_window.set(self.policy.window)
        if tracer is not None and served:
            # After the drain metrics: span bookkeeping must not inflate the
            # drain-latency signal the adaptive policy steers on.
            self._record_spans(
                tracer, entries, stage_acc, start, t_flush, t_send, t_done, served
            )
        self.drain_beat = time.monotonic()
        return served

    def _record_spans(
        self,
        tracer: RequestTracer,
        entries: List[_IngressEntry],
        stage_acc: Dict[str, float],
        t_pickup: float,
        t_flush: float,
        t_send: float,
        t_done: float,
        served: int,
    ) -> None:
        """Fold one drain's timings into the tracer.

        Drain-level stages are observed once, weighted by the requests the
        drain served (every one of them experienced that latency);
        ``ingress_wait`` is per wire entry against its client ``mark``
        timestamp when it sent one (socket-buffer time counts as queueing
        then) or its admission stamp otherwise.  The per-entry total
        stitches both — the span a client would measure from send/admission
        to its response hitting the socket buffer.
        """
        drain_ms = {
            "cohort_form": stage_acc["cohort_form"] * 1e3,
            "gate_exec": stage_acc["gate_exec"] * 1e3,
            "respond_encode": stage_acc["respond_encode"] * 1e3,
            "store_flush": (t_send - t_flush) * 1e3,
            "send": (t_done - t_send) * 1e3,
        }
        for stage, ms in drain_ms.items():
            tracer.observe_stage(stage, ms, served)
        if stage_acc["gate_kernel"]:
            tracer.observe_gate_kernel(stage_acc["gate_kernel"], served)
        drain_total = sum(drain_ms.values())
        for entry in entries:
            if entry.kind == "close":
                continue
            t_from = entry.t_client if entry.t_client is not None else entry.t_admit
            wait_ms = max((t_pickup - t_from) * 1e3, 0.0)
            tracer.observe_stage("ingress_wait", wait_ms, entry.weight)
            tracer.record_entry(
                kind=entry.kind,
                tenant=entry.tenant,
                weight=entry.weight,
                wait_ms=wait_ms,
                drain_stages_ms=drain_ms,
                total_ms=wait_ms + drain_total,
            )

    def _run_segment(
        self,
        entries: List[_IngressEntry],
        outbox: List[Tuple["_Connection", object, Optional[dict]]],
        stage_acc: Optional[Dict[str, float]] = None,
    ) -> int:
        """Stage one segment's responses: batched queries, then grid ops.

        Appends ``(conn, payload, fallback)`` triples to *outbox* instead of
        sending — the caller releases them after the durability barrier.
        ``fallback`` (None for plain error responses, which commit nothing)
        is the typed ``unavailable`` frame sent in the payload's place when
        the store cannot commit the state behind it."""
        if not entries:
            return 0
        t0 = time.perf_counter()
        batcher = self.service.batcher
        grids: List[_IngressEntry] = []
        submitted: List[Tuple[_IngressEntry, Optional[int], Optional[str]]] = []
        for entry in entries:
            if entry.kind == "grid":
                grids.append(entry)
                continue
            try:
                session = self._session_for(entry)
                if entry.kind == "block":
                    submitted.append(
                        (entry, batcher.submit_block(session, entry.items), None)
                    )
                else:
                    submitted.append((entry, batcher.submit(session, entry.item), None))
            except ReproError as exc:
                submitted.append((entry, None, str(exc)))
        t1 = time.perf_counter()
        result = self.service.drain()
        t2 = time.perf_counter()
        base = int(result.tickets[0]) if len(result) else 0

        served = 0
        n_answered = n_rejected = 0  # batched into the counters once per segment
        for entry, ticket, fail in submitted:
            entry.conn.pending -= 1
            if fail is not None:
                outbox.append((entry.conn, self._error(fail, entry.request_id), None))
                continue
            served += entry.weight
            fallback: Dict[str, Any] = {"type": "unavailable", "tenant": entry.tenant}
            if entry.lane is not None:
                fallback["lane"] = entry.lane
            if entry.request_id is not None:
                fallback["id"] = entry.request_id
            if entry.kind == "query":
                row = ticket - base
                fallback["item"] = entry.item
                out: Dict[str, Any] = {
                    "type": "answer",
                    "ticket": ticket,
                    "tenant": entry.tenant,
                    "item": entry.item,
                }
                if entry.lane is not None:
                    out["lane"] = entry.lane
                if entry.request_id is not None:
                    out["id"] = entry.request_id
                if result.ok[row]:
                    out["value"] = float(result.values[row])
                    out["from_history"] = bool(result.from_history[row])
                    n_answered += 1
                else:
                    out["error"] = result.errors[row]
                    n_rejected += 1
                outbox.append((entry.conn, out, fallback))
            else:
                size = int(entry.items.size)
                fallback["count"] = size
                lo = ticket - base
                hi = lo + size
                ok = result.ok[lo:hi]
                values = result.values[lo:hi]
                history = result.from_history[lo:hi]
                answered = int(ok.sum())
                n_answered += answered
                n_rejected += size - answered
                # Responses are byte-assembled: one dict + full json.dumps
                # per block is measurable at 2M req/s (b64 columns are the
                # payload; the header is a handful of scalar fields).
                head = (
                    f'{{"type":"answers","ticket":{ticket},'
                    f'"tenant":{json.dumps(entry.tenant)},"count":{size}'
                )
                if entry.lane is not None:
                    head += f',"lane":{json.dumps(entry.lane)}'
                if entry.request_id is not None:
                    head += f',"id":{json.dumps(entry.request_id)}'
                if answered != size:
                    errors = [
                        [int(off), result.errors[lo + off]]
                        for off in np.nonzero(~ok)[0]
                    ]
                    head += f',"errors":{json.dumps(errors)}'
                if entry.bin:
                    payload = (
                        head
                        + ',"values_b64":"'
                        + _b64(np.ascontiguousarray(values, dtype="<f8").tobytes())
                        + '","history_b64":"'
                        + _b64(np.packbits(history).tobytes())
                        + '"}\n'
                    )
                else:
                    columns = {
                        "values": [
                            None if not good else float(v)
                            for good, v in zip(ok, values)
                        ],
                        "from_history": [bool(h) for h in history],
                    }
                    payload = (
                        head + "," + json.dumps(columns, default=float)[1:] + "\n"
                    )
                outbox.append((entry.conn, payload.encode(), fallback))

        # Grid ops run after the window's batched queries, in admission
        # order; each gates one item across every lane of its tenant.
        for entry in grids:
            entry.conn.pending -= 1
            try:
                session = self._session_for(entry)  # lane is None: the parent
                lanes = session.answer_grid(entry.item, mode="shared" if
                                            self.config.mode == "shared" else "per-lane")
            except ReproError as exc:
                outbox.append((entry.conn, self._error(str(exc), entry.request_id), None))
                continue
            served += 1
            payload: Dict[str, Any] = {}
            answered_lanes = 0
            for name, lane_answer in lanes.items():
                if lane_answer.ok:
                    payload[name] = {
                        "value": lane_answer.answer.value,
                        "from_history": lane_answer.answer.from_history,
                    }
                    answered_lanes += 1
                else:
                    payload[name] = {"error": lane_answer.error}
            if answered_lanes:
                self._c_answered.add()
            else:
                self._c_rejected.add()
            out = {"type": "grid", "tenant": entry.tenant, "item": entry.item,
                   "lanes": payload}
            fallback = {"type": "unavailable", "tenant": entry.tenant,
                        "item": entry.item}
            if entry.request_id is not None:
                out["id"] = entry.request_id
                fallback["id"] = entry.request_id
            outbox.append((entry.conn, out, fallback))

        self._c_answered.add(n_answered)
        self._c_rejected.add(n_rejected)
        self._c_db.add(int((result.ok & ~result.from_history).sum()))
        for rows in result.block_rows:
            self._h_occupancy.observe(rows)
        if stage_acc is not None:
            # Grid ops execute inside the staging window above, so their
            # gate time lands in respond_encode — an accepted approximation
            # for what is a rare per-request op.
            stage_acc["cohort_form"] += t1 - t0
            stage_acc["gate_exec"] += t2 - t1
            stage_acc["respond_encode"] += time.perf_counter() - t2
            stage_acc["gate_kernel"] += result.gate_ms
        return served

    async def _drain_loop(self) -> None:
        """TCP mode's consumer: drain whenever a window fills, a force-drain
        arrives, or the idle flush timer fires with work pending."""
        while True:
            self.drain_beat = time.monotonic()
            if self._closing and not self.ingress.depth:
                break
            await self.ingress.wait(timeout=max(self.config.drain_idle_s, 0.05))
            if not self.ingress.depth:
                if self._closing:
                    break
                continue
            window = self.policy.window if self.config.adaptive else self.config.window
            if (
                self.ingress.depth < window
                and not self._force_drain
                and not self._closing
            ):
                # Partial window: give producers one idle interval to top it
                # up, then flush whatever is there (bounded added latency).
                await asyncio.sleep(self.config.drain_idle_s)
            await self.drain_once(window)
            await self._flush_all()

    async def _flush_all(self) -> None:
        for conn in list(self._conns):
            await conn.flush()

    #: A drain-loop heartbeat older than this marks the server not-ready:
    #: the loop visits at least every idle interval (<=50 ms), so seconds
    #: of silence mean it is wedged or dead, not merely busy.
    READY_BEAT_STALE_S = 5.0

    def readiness(self) -> Tuple[bool, dict]:
        """The ``/readyz`` verdict: can this process serve right now?

        Ready means the drain loop's heartbeat is fresh (or no loop exists —
        stdio/inline mode drains synchronously) and the durable store, when
        configured, still accepts flushes.  ``/healthz`` stays 200 through
        all of this — the process is alive; it just shouldn't get traffic.
        """
        detail: Dict[str, Any] = {"closing": self._closing}
        ok = not self._closing
        task = self._drain_task
        if task is None:
            detail["drain_loop"] = "inline"
        else:
            age = time.monotonic() - self.drain_beat
            detail["drain_beat_age_s"] = round(age, 3)
            if task.done():
                detail["drain_loop"] = "dead"
                ok = False
            elif age > self.READY_BEAT_STALE_S:
                detail["drain_loop"] = "stalled"
                ok = False
            else:
                detail["drain_loop"] = "ok"
        if self.store is None:
            detail["store"] = "none"
        elif self.store.closed:
            detail["store"] = "closed"
            ok = False
        else:
            detail["store"] = "ok"
        return ok, detail

    async def start_admin(
        self, host: Optional[str] = None, port: Optional[int] = None
    ) -> Tuple[str, int]:
        """Start the HTTP admin plane (idempotent); returns its address.

        Runs on the current event loop — call from the same loop the server
        transports run on, so ``/readyz`` and ``/debug/profile`` observe the
        loop they share with the drain.
        """
        if self.admin is None:
            self.admin = AdminPlane(
                self,
                host=self.config.admin_host if host is None else host,
                port=(self.config.admin_port or 0) if port is None else port,
            )
            await self.admin.start()
        return self.admin.address

    # ------------------------------------------------------------------
    # Transports.
    # ------------------------------------------------------------------
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start the TCP listener + drain loop; returns the asyncio server.

        The caller owns the lifetime: ``await server.shutdown()`` stops
        accepting, drains the queue dry, and closes every connection.
        """
        self.ingress.attach(asyncio.get_running_loop())
        if self._drain_task is None:
            self._drain_task = asyncio.create_task(self._drain_loop())
        self._tcp_server = await asyncio.start_server(
            self._handle_client, host, port, limit=_READLINE_LIMIT
        )
        if self.config.admin_port is not None:
            await self.start_admin()
        return self._tcp_server

    @property
    def tcp_address(self) -> Tuple[str, int]:
        sock = self._tcp_server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_unix(self, path: str):
        """Unix-domain-socket flavor of :meth:`serve_tcp`: same framing,
        same drain loop, a filesystem address instead of a port.  This is
        the data plane a shard worker exposes to the ingress router (see
        :mod:`repro.service.runtime.shard`); the router's forwarded lines
        and control calls both land in :meth:`_handle_client` unchanged.
        """
        self.ingress.attach(asyncio.get_running_loop())
        if self._drain_task is None:
            self._drain_task = asyncio.create_task(self._drain_loop())
        self._unix_path = str(path)
        self._unix_server = await asyncio.start_unix_server(
            self._handle_client, path=str(path), limit=_READLINE_LIMIT
        )
        return self._unix_server

    async def _handle_client(self, reader: asyncio.StreamReader, writer) -> None:
        conn = _Connection(writer=writer, name=str(writer.get_extra_info("peername")))
        self._conns.append(conn)
        self.metrics.gauge("connections").set(len(self._conns))
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError, ValueError) as exc:
                    conn.send(self._error(f"unreadable frame: {exc}"))
                    break
                if not raw:
                    break
                response = self.ingest_line(raw.decode("utf-8", "replace"), conn)
                if response is not None:
                    response.pop("_legacy", None)
                    conn.send(response)
                    await conn.flush()
        finally:
            # Answers for this client's still-queued requests must not hit a
            # closed socket: wait for the drain loop to serve them out.
            self._force_drain = True
            while conn.pending and not conn.closed and not self._closing:
                await self.drain_once()
            await conn.flush()
            conn.closed = True
            if conn in self._conns:
                self._conns.remove(conn)
            self.metrics.gauge("connections").set(len(self._conns))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    def close_store(self) -> None:
        """Flush pending state, checkpoint, and close the durable store.

        Part of every graceful exit (both transports): pending audit
        appends must not die in memory when the process stops on purpose.
        Safe without a store, safe to call twice."""
        if self.store is None:
            return
        try:
            self.store.close()
        except StoreUnavailableError as exc:  # pragma: no cover - disk failure
            self._c_store_unavailable.add()
            print(f"store close failed: {exc}", file=sys.stderr)

    async def shutdown(self) -> None:
        """Graceful stop: refuse new connections, drain dry, flush the
        durable store, close conns."""
        self._closing = True
        if self.admin is not None:
            await self.admin.close()
            self.admin = None
        for attr in ("_tcp_server", "_unix_server"):
            server = getattr(self, attr, None)
            if server is not None:
                server.close()
                await server.wait_closed()
        unix_path = getattr(self, "_unix_path", None)
        if unix_path is not None:
            try:
                os.unlink(unix_path)
            except OSError:
                pass
        while self.ingress.depth:
            await self.drain_once()
        task = getattr(self, "_drain_task", None)
        if task is not None:
            self.ingress._notify()
            try:
                await asyncio.wait_for(task, timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                task.cancel()
        await self._flush_all()
        for conn in list(self._conns):
            conn.closed = True
            if conn.writer is not None:
                try:
                    conn.writer.close()
                    await conn.writer.wait_closed()
                except (ConnectionError, RuntimeError):
                    pass
        self._conns = []
        self.close_store()

    async def serve_stdin(self, stdin=None, stdout=None) -> int:
        """Stdio transport: read request lines, drain at window boundaries.

        Single-producer and deterministic: a blank line or a full window
        drains inline (in request order), EOF drains whatever remains.
        Returns the number of requests served.
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        conn = _Connection(stream=stdout, name="stdin")
        self._conns.append(conn)
        self.ingress.attach(asyncio.get_running_loop())
        if self.config.admin_port is not None and self.admin is None:
            await self.start_admin()
        loop = asyncio.get_running_loop()
        served = 0
        while True:
            raw = await loop.run_in_executor(None, stdin.readline)
            if raw == "":
                break
            response = self.ingest_line(raw, conn)
            if response is not None:
                if response.pop("_legacy", False):
                    # Legacy "tenant item" framing reported parse failures on
                    # stderr; keep that contract for legacy lines only.
                    print(f"error: {response['error']}", file=sys.stderr)
                else:
                    conn.send(response)
            if self._force_drain or self.ingress.depth >= self.config.window:
                served += await self.drain_once()
                await self._flush_all()
        while self.ingress.depth:
            served += await self.drain_once()
        await self._flush_all()
        return served

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The metrics snapshot served by the ``metrics`` op."""
        self.sampler.sample()
        self._g_depth.set(self.ingress.depth)
        self._g_sessions.set(len(self.service.manager))
        if self.store is not None:
            stats = self.store.stats
            self._g_wal.set(self.store.wal_batches)
            self.metrics.gauge("store_flushes").set(stats["flushes"])
            self.metrics.gauge("store_retries").set(stats["retries"])
            self.metrics.gauge("store_checkpoints").set(stats["checkpoints"])
            self.metrics.gauge("store_archived_records").set(stats["archived_records"])
            self.metrics.gauge("store_last_flush_ms").set(stats["last_flush_ms"])
        snap = self.metrics.snapshot()
        requests = snap["counters"].get("requests_total", 0)
        shed = snap["counters"].get("shed_total", 0)
        snap["shed_rate"] = round(shed / requests, 6) if requests else 0.0
        return snap

    # The views behind the admin plane and the ``sessions`` / ``audit`` /
    # ``status`` / ``trace`` ops.  The shard router implements the same
    # names as coroutines that merge every worker's answer; the admin plane
    # awaits whatever it gets, so both runtimes share one HTTP surface.
    def sessions_view(self, limit: int = 50, offset: int = 0) -> dict:
        """Paginated live-session listing, sorted by tenant."""
        limit = max(int(limit), 0)
        offset = max(int(offset), 0)
        manager = self.service.manager
        live = sorted(manager, key=lambda s: s.tenant)
        page = live[offset:offset + limit]
        return {
            "total": len(live),
            "offset": offset,
            "limit": limit,
            "closed_total": len(manager.closed_sessions()),
            "sessions": [
                {
                    "tenant": s.tenant,
                    "session_id": s.session_id,
                    "epsilon": s.epsilon,
                    "c": s.c,
                    "svt_fraction": s.svt_fraction,
                    "spent": s.ledger.spent,
                    "released": s.ledger.released,
                    "served": s.served,
                    "database_accesses": s.database_accesses,
                    "exhausted": s.exhausted,
                    "lanes": sorted(s.lanes),
                    "opened_at": s.opened_at,
                    "ttl_s": s.ttl_s,
                }
                for s in page
            ],
        }

    def audit_view(self, after_seq: int = -1, limit: int = 100) -> dict:
        """Audit records after *after_seq*: live log + archived, merged.

        Compaction archives closed sessions out of the live store; the
        archive is the only place their records still exist after a reboot,
        so this view merges both (live wins on a seq tie)."""
        after_seq = int(after_seq)
        limit = max(int(limit), 0)
        log = self.service.manager.audit
        by_seq: Dict[int, Any] = {}
        if self.store is not None:
            for record in self.store.load_archive():
                if record.seq > after_seq:
                    by_seq[record.seq] = record
        for record in log:
            if record.seq > after_seq:
                by_seq[record.seq] = record
        selected = [by_seq[seq] for seq in sorted(by_seq)][:limit]
        return {
            "after_seq": after_seq,
            "limit": limit,
            "count": len(selected),
            "next_seq": log.next_seq,
            "records": [r._asdict() for r in selected],
        }

    def status_view(self) -> dict:
        """Readiness plus the accounting totals a supervisor wants in one
        round trip (the shard router polls this per worker)."""
        ok, detail = self.readiness()
        manager = self.service.manager
        return {
            "ready": ok,
            **detail,
            "pid": os.getpid(),
            "sessions_open": len(manager),
            "sessions_closed": len(manager.closed_sessions()),
            "audit_records": len(self.service.audit),
            "next_audit_seq": manager.audit.next_seq,
            "epsilon_spent": manager.total_spent(),
        }

    def trace_view(self, slow_limit: int = 32) -> Optional[dict]:
        """The ``/debug/trace`` payload, or None when tracing is off."""
        if self.tracer is None:
            return None
        return self.tracer.report(slow_limit=max(int(slow_limit), 0))

    def slow_view(self, limit: int = 64) -> Optional[dict]:
        """Just the slow-request exemplar ring, or None when tracing is off."""
        if self.tracer is None:
            return None
        return {"slow_threshold_ms": self.tracer.slow_ms,
                "slow": self.tracer.slow(max(int(limit), 0))}

    def record_audit_report(self, payload: dict) -> dict:
        """Fold one ``audit_report`` op into the metrics and the view.

        The driver posts *cumulative* totals for its run; counters advance
        by the delta against the previous report (a report with fewer trials
        than the last one is a fresh run and counts in full).
        """
        report = fold_audit_report(
            self.metrics, self._audit_report, payload,
            default_charged=self.config.epsilon,
        )
        self._audit_report = report
        return report

    def audit_eps_view(self) -> dict:
        """The ``/audit/eps`` payload: the latest empirical-audit report
        (or a typed not-yet-audited answer) plus the active fault knob."""
        out = {"audited": self._audit_report is not None,
               "gate_fault": self.config.gate_fault}
        if self._audit_report is not None:
            out.update(self._audit_report)
        return out
