"""The concurrent service runtime.

:mod:`repro.service.runtime.server` — the asyncio JSONL ingestion server
(TCP + stdio transports, bounded-queue admission control with typed
``overloaded`` shedding, a single drain loop feeding the batcher, graceful
shutdown); :mod:`repro.service.runtime.metrics` — the live observability
layer (thread-safe counters/histograms/gauges, a process-RSS /
available-memory sampler whose ``memory_probe`` re-plans ``max_bytes="auto"``
runs mid-flight, and the AIMD drain-window controller);
:mod:`repro.service.runtime.shard` — the sharded multi-process runtime
(N single-shard worker processes behind a consistent-hash ingress router,
merged admin plane, per-shard durable state and recovery).
"""

from repro.service.runtime.metrics import (
    AdaptiveDrainPolicy,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RssSampler,
    metric_key,
    parse_metric_key,
)
from repro.service.runtime.server import (
    PROTOCOL,
    IngressQueue,
    RuntimeServer,
    ServerConfig,
    parse_request_line,
)
from repro.service.runtime.shard import (
    HashRing,
    ShardedServer,
    ShardWorker,
    merge_histogram_snapshots,
    merge_snapshots,
)

__all__ = [
    "AdaptiveDrainPolicy",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RssSampler",
    "metric_key",
    "parse_metric_key",
    "PROTOCOL",
    "IngressQueue",
    "RuntimeServer",
    "ServerConfig",
    "parse_request_line",
    "HashRing",
    "ShardedServer",
    "ShardWorker",
    "merge_histogram_snapshots",
    "merge_snapshots",
]
