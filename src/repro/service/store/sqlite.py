"""The durable store: a crc-framed JSONL write-ahead log + SQLite snapshots.

A privacy service must never lose spent epsilon.  This module is the
persistence substrate beneath :class:`~repro.service.manager.SessionManager`,
:class:`~repro.accounting.budget.BudgetLedger`/:class:`BudgetPool`, and
:class:`~repro.service.audit.AuditLog`:

* **Write-ahead log** (``wal.jsonl``) — every :meth:`DurableStore.flush`
  appends *one* line: a decimal CRC-32, a space, and a JSON array of events
  (audit appends, per-session state snapshots, closed-session views, meta
  updates), then fsyncs.  One line per flush makes the commit unit atomic:
  a torn final line — the process died mid-append — fails the CRC or lacks
  its newline and is truncated on the next open, so recovery always lands
  exactly on a flush boundary, never inside one.  The runtime calls
  ``flush()`` *before* releasing a drain's responses, which is what turns
  "the client saw the answer" into "the spend is on disk".
* **SQLite snapshot** (``state.db``, ``journal_mode=WAL`` with a busy
  timeout) — :meth:`DurableStore.checkpoint` applies the accumulated WAL
  events in one retried transaction and truncates the log, so recovery time
  is bounded by *live* state rather than history length.  ``SQLITE_BUSY``
  gets bounded, jittered exponential backoff; exhausting the retries raises
  :class:`~repro.exceptions.StoreUnavailableError` — a degradation the
  runtime surfaces as typed ``unavailable`` responses, never a crash.
* **Compaction** — at checkpoint, closed sessions' audit records and views
  are appended to ``audit_archive.jsonl`` (fsynced before the delete
  commits, so a crash between the two at worst duplicates archive lines —
  readers dedupe by ``seq``) and dropped from the snapshot.
* **Fault injection** — every write point calls
  :meth:`FaultInjector.fire`, so the crash tests can SIGKILL or error the
  store at exactly the byte they mean to (:data:`WRITE_POINTS`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import sqlite3
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import InvalidParameterError, StoreUnavailableError
from repro.service.audit import AuditRecord, KINDS
from repro.service.session import encode_rng_state

__all__ = [
    "StoreConfig",
    "FaultInjector",
    "DurableStore",
    "StoreState",
    "WRITE_POINTS",
]

#: Every named fault-injection point, in the order a flush + checkpoint
#: visits them.  ``wal-line`` fires with ``handle``/``line`` context so a
#: "torn" action can write half the line before dying.
WRITE_POINTS = (
    "flush-begin",
    "wal-line",
    "wal-fsync",
    "checkpoint-begin",
    "archive-write",
    "checkpoint-commit",
    "checkpoint-truncate",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sessions (
    sid    TEXT PRIMARY KEY,
    tenant TEXT NOT NULL,
    lane   TEXT,
    parent TEXT,
    status TEXT NOT NULL DEFAULT 'open',
    config TEXT NOT NULL,
    pool   REAL,
    state  TEXT
);
CREATE TABLE IF NOT EXISTS closed (
    sid  TEXT PRIMARY KEY,
    view TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS audit (
    seq       INTEGER PRIMARY KEY,
    session   TEXT NOT NULL,
    kind      TEXT NOT NULL,
    mechanism TEXT NOT NULL DEFAULT '',
    epsilon   REAL NOT NULL DEFAULT 0.0,
    value     REAL,
    note      TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS audit_session ON audit (session);
"""


@dataclass(frozen=True)
class StoreConfig:
    """Durability and retry knobs.

    ``retries``/``backoff_s``/``backoff_cap_s`` bound the jittered
    exponential backoff around every SQLite transaction and WAL write;
    ``checkpoint_every`` is the WAL-batch count that triggers an automatic
    checkpoint (events also force one at close).  ``fsync=False`` exists
    for benchmarking the serialization cost alone — it voids the
    durability contract and nothing in the runtime sets it.
    """

    retries: int = 6
    backoff_s: float = 0.005
    backoff_cap_s: float = 0.25
    busy_timeout_ms: int = 5000
    synchronous: str = "FULL"
    checkpoint_every: int = 256
    fsync: bool = True


class FaultInjector:
    """Named, one-shot traps at the store's write points (tests only).

    ``arm(point, action, after=N)`` makes the N-th :meth:`fire` at *point*
    execute the action: ``"raise"`` (a :class:`StoreUnavailableError`),
    ``"kill"`` (SIGKILL this process — the crash-recovery harness),
    ``"torn-kill"``/``"torn-raise"`` (write *half* the pending WAL line
    first, so recovery must detect and truncate a torn record), or any
    callable.  :meth:`from_env` arms one trap from
    ``REPRO_STORE_FAULT="point[:after[:action]]"`` so a subprocess server
    can be killed at an exact write point from the outside.
    """

    ENV_VAR = "REPRO_STORE_FAULT"

    def __init__(self) -> None:
        self._traps: Dict[str, List[object]] = {}

    def arm(self, point: str, action: object = "raise", after: int = 1) -> None:
        if point not in WRITE_POINTS:
            raise InvalidParameterError(
                f"unknown write point {point!r}; known: {WRITE_POINTS}"
            )
        if int(after) < 1:
            raise InvalidParameterError("'after' must be >= 1")
        self._traps[point] = [int(after), action]

    @property
    def armed(self) -> bool:
        return bool(self._traps)

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> "FaultInjector":
        faults = cls()
        spec = (env if env is not None else os.environ).get(cls.ENV_VAR, "").strip()
        if spec:
            parts = spec.split(":")
            point = parts[0]
            after = int(parts[1]) if len(parts) > 1 and parts[1] else 1
            action = parts[2] if len(parts) > 2 and parts[2] else "kill"
            faults.arm(point, action, after=after)
        return faults

    def fire(self, point: str, **ctx: Any) -> None:
        trap = self._traps.get(point)
        if trap is None:
            return
        trap[0] -= 1
        if trap[0] > 0:
            return
        action = trap[1]
        del self._traps[point]
        if callable(action):
            action(**ctx)
            return
        if action in ("torn-kill", "torn-raise"):
            handle, line = ctx.get("handle"), ctx.get("line")
            if handle is not None and line:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
            if action == "torn-kill":
                os.kill(os.getpid(), 9)
            raise StoreUnavailableError(f"injected torn write at {point!r}")
        if action == "kill":
            os.kill(os.getpid(), 9)
        if action == "raise":
            raise StoreUnavailableError(f"injected fault at {point!r}")
        raise InvalidParameterError(f"unknown fault action {action!r}")


@dataclass
class StoreState:
    """Everything :func:`~repro.service.store.recovery.restore_service`
    needs: the snapshot tables with the WAL suffix already overlaid."""

    meta: Dict[str, Any]
    sessions: Dict[str, Dict[str, Any]]
    closed: Dict[str, Dict[str, Any]]
    records: List[AuditRecord]
    next_seq: int
    torn_tail: bool
    wal_batches: int


def _crc_line(events: List[dict]) -> bytes:
    payload = json.dumps(events, separators=(",", ":"), default=float)
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc} {payload}\n".encode("utf-8")


def _parse_crc_line(data: bytes):
    """The events of one committed WAL line, or None if the line is torn
    (bad frame, bad CRC, bad JSON — indistinguishable from a partial write)."""
    try:
        text = data.decode("utf-8")
        head, _, payload = text.partition(" ")
        if not payload or int(head) != zlib.crc32(payload.encode("utf-8")):
            return None
        events = json.loads(payload)
    except (ValueError, UnicodeDecodeError):
        return None
    return events if isinstance(events, list) else None


class DurableStore:
    """Crash-safe persistence for one :class:`SVTQueryService`.

    Layout under ``state_dir``: ``state.db`` (SQLite snapshot),
    ``wal.jsonl`` (crc-framed event batches since the last checkpoint),
    ``audit_archive.jsonl`` (compacted closed-session history).  Attach a
    service with :meth:`attach`; every :meth:`flush` then persists exactly
    the state changed since the previous flush — audit records ride a
    write-ahead sink, session/pool/rng state is diffed against shadows.
    """

    def __init__(
        self,
        state_dir,
        config: Optional[StoreConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config or StoreConfig()
        self.faults = faults or FaultInjector()
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.db_path = self.state_dir / "state.db"
        self.wal_path = self.state_dir / "wal.jsonl"
        self.archive_path = self.state_dir / "audit_archive.jsonl"
        self._lock = threading.Lock()
        self._jitter = random.Random(os.getpid())
        self._closed = False
        self._service = None
        # Write-ahead sink target + dirty-tracking shadows.
        self._pending_audit: List[AuditRecord] = []
        self._known_cfg: set = set()
        self._known_closed: set = set()
        self._shadow_state: Dict[str, str] = {}
        self._shadow_meta: Optional[str] = None
        self.stats: Dict[str, float] = {
            "flushes": 0,
            "events": 0,
            "retries": 0,
            "checkpoints": 0,
            "archived_records": 0,
            "last_fsync_ms": 0.0,
            "last_flush_ms": 0.0,
            "torn_tail_truncated": 0,
        }
        self._db = self._open_db()
        self._wal, self._good_offset, self._wal_batches, self.torn_tail = (
            self._open_wal()
        )
        if self.torn_tail:
            self.stats["torn_tail_truncated"] = 1

    # ------------------------------------------------------------------
    # Files.
    # ------------------------------------------------------------------
    def _open_db(self) -> sqlite3.Connection:
        def connect() -> sqlite3.Connection:
            # The runtime flushes from its drain thread but opens/closes the
            # store from the main thread; every DB touch is serialized under
            # self._lock, so sqlite's same-thread guard is safely waived.
            db = sqlite3.connect(
                self.db_path,
                timeout=self.config.busy_timeout_ms / 1e3,
                check_same_thread=False,
            )
            db.execute("PRAGMA journal_mode=WAL")
            db.execute(f"PRAGMA busy_timeout={int(self.config.busy_timeout_ms)}")
            db.execute(f"PRAGMA synchronous={self.config.synchronous}")
            db.executescript(_SCHEMA)
            return db

        return self._with_retry("open state.db", connect)

    def _open_wal(self):
        """Open the WAL for appends, truncating a torn final line.

        Scans every existing line: a committed line parses and passes its
        CRC; the final line failing either way (or missing its newline) is
        the torn-write signature and is cut back to the last good offset.
        A *mid-file* bad line means real corruption and raises.
        """
        handle = open(self.wal_path, "a+b")
        handle.seek(0)
        raw = handle.read()
        offset = 0
        batches = 0
        torn = False
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                torn = True  # partial final line, no newline yet
                break
            if _parse_crc_line(raw[offset:newline]) is None:
                if len(raw) > newline + 1:
                    raise InvalidParameterError(
                        f"{self.wal_path}: corrupt WAL record at byte {offset} "
                        "with committed records after it"
                    )
                torn = True
                break
            batches += 1
            offset = newline + 1
        if torn:
            handle.truncate(offset)
        handle.seek(0, os.SEEK_END)
        return handle, offset, batches, torn

    # ------------------------------------------------------------------
    # Retry.
    # ------------------------------------------------------------------
    def _with_retry(self, label: str, fn: Callable[[], Any]) -> Any:
        delay = self.config.backoff_s
        last: Optional[BaseException] = None
        for attempt in range(1, max(1, self.config.retries) + 1):
            try:
                return fn()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "busy" not in message and "locked" not in message:
                    raise StoreUnavailableError(
                        f"{label} failed: {exc}", attempts=attempt
                    ) from exc
                last = exc
            except sqlite3.Error as exc:
                raise StoreUnavailableError(
                    f"{label} failed: {exc}", attempts=attempt
                ) from exc
            except StoreUnavailableError:
                raise
            except OSError as exc:
                last = exc
            if attempt < max(1, self.config.retries):
                self.stats["retries"] += 1
                time.sleep(delay * (0.5 + self._jitter.random()))
                delay = min(delay * 2.0, self.config.backoff_cap_s)
        raise StoreUnavailableError(
            f"{label} failed after {max(1, self.config.retries)} attempts: {last}",
            attempts=max(1, self.config.retries),
        ) from last

    # ------------------------------------------------------------------
    # Attachment and event collection.
    # ------------------------------------------------------------------
    def attach(self, service, prime: bool = False) -> None:
        """Bind *service*: audit appends stream into the write-ahead sink.

        ``prime=False`` (a fresh service) immediately flushes the bootstrap
        metadata — the resolved manager seed and engine mode must hit disk
        before any session exists, or a crash-before-first-flush would lose
        the stream derivation.  ``prime=True`` (the recovery path) seeds
        the dirty-tracking shadows from the *current* state instead, which
        is exact because recovery is: nothing is re-persisted that the
        store already holds.
        """
        if self._service is not None:
            raise InvalidParameterError("store already has an attached service")
        self._service = service
        service.audit.add_sink(self._pending_audit.append)
        if prime:
            events, commit = self._collect_events()
            commit()
        else:
            self.flush()

    def _session_members(self):
        manager = self._service.manager
        for parent in list(manager):
            yield None, parent, parent
            for name, lane in parent.lanes.items():
                yield name, lane, parent

    def _collect_events(self) -> Tuple[List[dict], Callable[[], None]]:
        """The events making this flush plus a commit closure.

        Shadows are only advanced by the closure, *after* the batch is
        safely fsynced — a failed flush leaves every pending change pending,
        and the WAL-tail repair in :meth:`flush` guarantees the retry can't
        double-write what the failed attempt got out.
        """
        events: List[dict] = []
        commits: List[Callable[[], None]] = []
        n_audit = len(self._pending_audit)
        for record in self._pending_audit[:n_audit]:
            events.append({"t": "audit", "r": record._asdict()})
        if n_audit:
            commits.append(lambda: del_prefix(self._pending_audit, n_audit))
        service = self._service
        if service is not None:
            manager = service.manager
            for name, member, parent in self._session_members():
                sid = member.session_id
                if sid not in self._known_cfg:
                    events.append(
                        {
                            "t": "open",
                            "sid": sid,
                            "tenant": member.tenant,
                            "lane": name,
                            "parent": parent.session_id if name is not None else None,
                            "config": member.config_state(),
                            "pool": (
                                member.pool.total
                                if name is None and member.pool is not None
                                else None
                            ),
                        }
                    )
                    commits.append(lambda sid=sid: self._known_cfg.add(sid))
                state = member.snapshot_state()
                text = json.dumps(state, separators=(",", ":"))
                if self._shadow_state.get(sid) != text:
                    events.append({"t": "state", "sid": sid, "s": state})
                    commits.append(
                        lambda sid=sid, text=text: self._shadow_state.__setitem__(
                            sid, text
                        )
                    )
            for sid, view in manager.closed_sessions().items():
                if sid not in self._known_closed:
                    events.append(
                        {"t": "closed", "sid": sid, "v": dataclasses.asdict(view)}
                    )
                    commits.append(lambda sid=sid: self._known_closed.add(sid))
            meta = {
                "manager_seed": manager.seed,
                "mode": service.engine.mode,
                "n_items": manager.num_items,
                "epochs": manager.epochs(),
                "pools": {
                    parent.tenant: {
                        "total": parent.pool.total,
                        "drawn": parent.pool.drawn,
                        "refunded": parent.pool.refunded,
                    }
                    for parent in list(manager)
                    if parent.pool is not None
                },
                "engine_rng": encode_rng_state(service.engine.rng),
                "audit_next_seq": service.audit.next_seq,
            }
            text = json.dumps(meta, separators=(",", ":"), sort_keys=True)
            if text != self._shadow_meta:
                events.append({"t": "meta", "m": meta})
                commits.append(
                    lambda text=text: setattr(self, "_shadow_meta", text)
                )

        def commit() -> None:
            for fn in commits:
                fn()

        return events, commit

    # ------------------------------------------------------------------
    # Flush: the durability barrier.
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Persist everything changed since the last flush; returns the
        event count.  On return the batch is fsynced — responses built on
        this state may be released.  Raises
        :class:`StoreUnavailableError` (state still pending, memory
        consistent) when the write cannot be made durable."""
        with self._lock:
            if self._closed:
                raise StoreUnavailableError("store is closed")
            events, commit = self._collect_events()
            if not events:
                return 0
            t_flush = time.perf_counter()
            self.faults.fire("flush-begin")
            line = _crc_line(events)

            def write() -> None:
                # A previously failed flush may have left partial bytes past
                # the committed offset; cut back before appending so the
                # retry cannot produce a mid-file torn record.
                end = self._wal.seek(0, os.SEEK_END)
                if end != self._good_offset:
                    self._wal.truncate(self._good_offset)
                    self._wal.seek(self._good_offset)
                self.faults.fire("wal-line", handle=self._wal, line=line)
                self._wal.write(line)
                self._wal.flush()
                self.faults.fire("wal-fsync")
                if self.config.fsync:
                    start = time.perf_counter()
                    os.fsync(self._wal.fileno())
                    self.stats["last_fsync_ms"] = (time.perf_counter() - start) * 1e3

            self._with_retry("WAL append", write)
            self._good_offset += len(line)
            self._wal_batches += 1
            commit()
            self.stats["flushes"] += 1
            self.stats["events"] += len(events)
            self.stats["last_flush_ms"] = (time.perf_counter() - t_flush) * 1e3
            if self._wal_batches >= max(1, self.config.checkpoint_every):
                self._checkpoint_locked()
            return len(events)

    # ------------------------------------------------------------------
    # Checkpoint + compaction.
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Fold the WAL into the SQLite snapshot and truncate it; returns
        the number of events applied.  Closed sessions are compacted out to
        the archive so the snapshot — and recovery time — stay bounded by
        live state."""
        with self._lock:
            if self._closed:
                raise StoreUnavailableError("store is closed")
            return self._checkpoint_locked()

    def _read_wal_batches(self) -> List[List[dict]]:
        self._wal.seek(0)
        raw = self._wal.read()
        self._wal.seek(0, os.SEEK_END)
        batches = []
        for chunk in raw[: self._good_offset].split(b"\n"):
            if not chunk:
                continue
            events = _parse_crc_line(chunk)
            if events is None:
                raise InvalidParameterError(
                    f"{self.wal_path}: committed WAL record failed its CRC"
                )
            batches.append(events)
        return batches

    def _checkpoint_locked(self) -> int:
        self.faults.fire("checkpoint-begin")
        batches = self._read_wal_batches()
        applied = sum(len(batch) for batch in batches)
        db = self._db

        def txn() -> None:
            db.execute("BEGIN IMMEDIATE")
            try:
                next_seq = 0
                for events in batches:
                    for ev in events:
                        next_seq = max(next_seq, self._apply_to_db(db, ev))
                if next_seq:
                    row = db.execute(
                        "SELECT value FROM meta WHERE key='audit_next_seq'"
                    ).fetchone()
                    known = int(json.loads(row[0])) if row else 0
                    db.execute(
                        "INSERT OR REPLACE INTO meta VALUES('audit_next_seq', ?)",
                        (json.dumps(max(known, next_seq)),),
                    )
                archived = self._compact(db)
                self.faults.fire("checkpoint-commit")
                db.execute("COMMIT")
                self.stats["archived_records"] += archived
            except BaseException:
                try:
                    db.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise

        self._with_retry("checkpoint transaction", txn)
        self.faults.fire("checkpoint-truncate")

        def truncate() -> None:
            self._wal.truncate(0)
            self._wal.seek(0)
            if self.config.fsync:
                os.fsync(self._wal.fileno())

        self._with_retry("WAL truncate", truncate)
        self._good_offset = 0
        self._wal_batches = 0
        self.stats["checkpoints"] += 1
        return applied

    @staticmethod
    def _apply_to_db(db: sqlite3.Connection, ev: dict) -> int:
        """Apply one event; returns ``seq + 1`` for audit events (else 0).
        Idempotent per event, so re-applying a WAL after a crash mid-
        checkpoint converges to the same snapshot."""
        kind = ev["t"]
        if kind == "audit":
            r = ev["r"]
            if r["kind"] not in KINDS:
                raise InvalidParameterError(f"unknown audit kind {r['kind']!r} in WAL")
            db.execute(
                "INSERT OR REPLACE INTO audit VALUES (?,?,?,?,?,?,?)",
                (
                    int(r["seq"]),
                    r["session"],
                    r["kind"],
                    r.get("mechanism", ""),
                    float(r.get("epsilon", 0.0)),
                    r.get("value"),
                    r.get("note", ""),
                ),
            )
            return int(r["seq"]) + 1
        if kind == "open":
            db.execute(
                "INSERT OR IGNORE INTO sessions (sid, tenant, lane, parent, status,"
                " config, pool) VALUES (?,?,?,?,'open',?,?)",
                (
                    ev["sid"],
                    ev["tenant"],
                    ev["lane"],
                    ev["parent"],
                    json.dumps(ev["config"], separators=(",", ":")),
                    ev["pool"],
                ),
            )
            return 0
        if kind == "state":
            db.execute(
                "UPDATE sessions SET state=? WHERE sid=?",
                (json.dumps(ev["s"], separators=(",", ":")), ev["sid"]),
            )
            return 0
        if kind == "closed":
            db.execute(
                "INSERT OR REPLACE INTO closed VALUES (?,?)",
                (ev["sid"], json.dumps(ev["v"], separators=(",", ":"))),
            )
            db.execute(
                "UPDATE sessions SET status='closed' WHERE sid=?", (ev["sid"],)
            )
            return 0
        if kind == "meta":
            for key, value in ev["m"].items():
                db.execute(
                    "INSERT OR REPLACE INTO meta VALUES (?,?)",
                    (key, json.dumps(value, separators=(",", ":"))),
                )
            return 0
        raise InvalidParameterError(f"unknown WAL event type {kind!r}")

    def _compact(self, db: sqlite3.Connection) -> int:
        """Archive closed sessions out of the snapshot (inside the caller's
        transaction).  The archive append is fsynced *before* the deletes
        commit; a crash between the two duplicates archive lines at worst,
        and the archive reader dedupes by ``seq``."""
        sids = [row[0] for row in db.execute("SELECT sid FROM closed")]
        if not sids:
            return 0
        marks = ",".join("?" for _ in sids)
        lines: List[bytes] = []
        archived = 0
        for seq, session, kind, mechanism, epsilon, value, note in db.execute(
            f"SELECT * FROM audit WHERE session IN ({marks}) ORDER BY seq", sids
        ):
            record = {
                "seq": seq, "session": session, "kind": kind,
                "mechanism": mechanism, "epsilon": epsilon, "value": value,
                "note": note,
            }
            lines.append(
                (json.dumps({"t": "audit", "r": record}, separators=(",", ":")) + "\n").encode()
            )
            archived += 1
        for sid, view in db.execute(f"SELECT * FROM closed WHERE sid IN ({marks})", sids):
            lines.append(
                (json.dumps({"t": "closed", "sid": sid, "v": json.loads(view)},
                            separators=(",", ":")) + "\n").encode()
            )
        self.faults.fire("archive-write")
        with open(self.archive_path, "ab") as handle:
            handle.writelines(lines)
            handle.flush()
            if self.config.fsync:
                os.fsync(handle.fileno())
        db.execute(f"DELETE FROM audit WHERE session IN ({marks})", sids)
        db.execute(f"DELETE FROM sessions WHERE sid IN ({marks})", sids)
        db.execute(f"DELETE FROM closed WHERE sid IN ({marks})", sids)
        for sid in sids:
            self._shadow_state.pop(sid, None)
            self._known_cfg.discard(sid)
        return archived

    # ------------------------------------------------------------------
    # Load (recovery input).
    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        """Whether the directory holds a bootstrapped service to recover."""
        row = self._db.execute(
            "SELECT value FROM meta WHERE key='manager_seed'"
        ).fetchone()
        if row is not None:
            return True
        return any(
            any(ev["t"] == "meta" and "manager_seed" in ev["m"] for ev in batch)
            for batch in self._read_wal_batches()
        )

    def load_state(self) -> StoreState:
        """The snapshot tables with the committed WAL suffix overlaid."""
        meta = {
            key: json.loads(value)
            for key, value in self._db.execute("SELECT key, value FROM meta")
        }
        sessions: Dict[str, Dict[str, Any]] = {}
        for sid, tenant, lane, parent, status, config, pool, state in self._db.execute(
            "SELECT sid, tenant, lane, parent, status, config, pool, state"
            " FROM sessions ORDER BY rowid"
        ):
            sessions[sid] = {
                "tenant": tenant,
                "lane": lane,
                "parent": parent,
                "status": status,
                "config": json.loads(config),
                "pool": pool,
                "state": json.loads(state) if state is not None else None,
            }
        closed = {
            sid: json.loads(view)
            for sid, view in self._db.execute("SELECT sid, view FROM closed")
        }
        records: Dict[int, dict] = {}
        for seq, session, kind, mechanism, epsilon, value, note in self._db.execute(
            "SELECT * FROM audit ORDER BY seq"
        ):
            records[seq] = {
                "seq": seq, "session": session, "kind": kind,
                "mechanism": mechanism, "epsilon": epsilon, "value": value,
                "note": note,
            }
        batches = self._read_wal_batches()
        for events in batches:
            for ev in events:
                kind = ev["t"]
                if kind == "audit":
                    records.setdefault(int(ev["r"]["seq"]), ev["r"])
                elif kind == "open":
                    sessions.setdefault(
                        ev["sid"],
                        {
                            "tenant": ev["tenant"],
                            "lane": ev["lane"],
                            "parent": ev["parent"],
                            "status": "open",
                            "config": ev["config"],
                            "pool": ev["pool"],
                            "state": None,
                        },
                    )
                elif kind == "state":
                    if ev["sid"] not in sessions:
                        raise InvalidParameterError(
                            f"WAL state event for unknown session {ev['sid']!r}"
                        )
                    sessions[ev["sid"]]["state"] = ev["s"]
                elif kind == "closed":
                    closed[ev["sid"]] = ev["v"]
                    if ev["sid"] in sessions:
                        sessions[ev["sid"]]["status"] = "closed"
                elif kind == "meta":
                    meta.update(ev["m"])
                else:
                    raise InvalidParameterError(f"unknown WAL event type {kind!r}")
        ordered = [AuditRecord(**records[seq]) for seq in sorted(records)]
        next_seq = max(
            int(meta.get("audit_next_seq", 0)),
            (ordered[-1].seq + 1) if ordered else 0,
        )
        return StoreState(
            meta=meta,
            sessions=sessions,
            closed=closed,
            records=ordered,
            next_seq=next_seq,
            torn_tail=self.torn_tail,
            wal_batches=len(batches),
        )

    def load_archive(self) -> List[AuditRecord]:
        """The compacted audit records, deduped by seq, in seq order."""
        if not self.archive_path.exists():
            return []
        seen: Dict[int, AuditRecord] = {}
        with open(self.archive_path, "rb") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                ev = json.loads(line)
                if ev.get("t") == "audit":
                    record = AuditRecord(**ev["r"])
                    seen.setdefault(record.seq, record)
        return [seen[seq] for seq in sorted(seen)]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self, final_checkpoint: bool = True) -> None:
        """Flush pending state, optionally checkpoint, and release handles.

        The graceful-shutdown path: after this returns, every audit append
        the service ever made is in the snapshot (or the WAL) and both file
        handles are closed.  Idempotent."""
        with self._lock:
            if self._closed:
                return
        # flush() takes the lock itself; pending events must go down before
        # the handles do.
        self.flush()
        if final_checkpoint and self._wal_batches:
            self.checkpoint()
        with self._lock:
            self._closed = True
            self._wal.close()
            self._db.close()

    def abandon(self) -> None:
        """Drop the handles without flushing — the in-process stand-in for
        SIGKILL in crash tests.  Pending (unflushed) state is lost, exactly
        as a real crash would lose it."""
        with self._lock:
            self._closed = True
            self._wal.close()
            self._db.close()

    @property
    def wal_batches(self) -> int:
        """Committed flush batches since the last checkpoint."""
        return self._wal_batches

    @property
    def closed(self) -> bool:
        """True once the store will accept no further flushes (graceful
        close or :meth:`abandon`) — the admin plane's readiness signal."""
        return self._closed


def del_prefix(items: list, count: int) -> None:
    """``del items[:count]`` as a function (lambdas can't contain del)."""
    del items[:count]
