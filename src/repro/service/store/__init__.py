"""Crash-safe durable state for the SVT service.

:class:`DurableStore` persists sessions, lanes, budgets, and the audit log
through a crc-framed JSONL write-ahead log folded into a SQLite snapshot
(``journal_mode=WAL``) with closed-session compaction;
:func:`restore_service` replays it back into the exact in-memory service.
:class:`FaultInjector` arms crashes at named write points for the recovery
test harness.
"""

from repro.service.store.recovery import RecoveryInfo, restore_service
from repro.service.store.sqlite import (
    WRITE_POINTS,
    DurableStore,
    FaultInjector,
    StoreConfig,
    StoreState,
)

__all__ = [
    "DurableStore",
    "StoreConfig",
    "StoreState",
    "FaultInjector",
    "WRITE_POINTS",
    "RecoveryInfo",
    "restore_service",
]
