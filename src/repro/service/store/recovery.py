"""Replay-on-boot: rebuild the exact in-memory service from a durable store.

Recovery is a *constructive proof* that the store captured everything:
every open session and lane comes back with its rho, firing count, history,
ledger entries, and rng stream position bit-identical to the crashed
process; budget pools resume at their drawn/refunded marks; per-tenant
epochs continue so freshly derived streams never collide with pre-crash
ones; and the audit chain — live records plus the still-referenced closed
views — must replay :func:`~repro.service.audit.verify_audit`-green, with
every live ledger agreeing with its audited spend, before the service is
allowed to serve.  Anything less than exact raises rather than resuming on
corrupt accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.accounting.budget import _EPS_SLACK, BudgetPool
from repro.exceptions import InvalidParameterError
from repro.service.audit import AuditLog, AuditReport, verify_audit
from repro.service.engine import SVTQueryService
from repro.service.manager import ClosedSession
from repro.service.session import Session, decode_rng_state
from repro.service.store.sqlite import DurableStore

__all__ = ["RecoveryInfo", "restore_service"]


@dataclass
class RecoveryInfo:
    """What one boot-time replay did, for logs and the recovery histogram."""

    duration_ms: float
    sessions: int
    lanes: int
    closed_sessions: int
    audit_records: int
    wal_batches: int
    torn_tail: bool
    report: AuditReport = field(default_factory=AuditReport)

    def summary(self) -> str:
        torn = ", torn tail truncated" if self.torn_tail else ""
        return (
            f"recovered {self.sessions} sessions (+{self.lanes} lanes, "
            f"{self.closed_sessions} closed) from {self.audit_records} audit "
            f"records and {self.wal_batches} WAL batches in "
            f"{self.duration_ms:.1f} ms{torn}"
        )


def restore_service(
    store: DurableStore,
    dataset,
    *,
    mode: Optional[str] = None,
    strict: bool = True,
) -> Tuple[SVTQueryService, RecoveryInfo]:
    """Rebuild the service a :class:`DurableStore` was persisting.

    *dataset* is the same score backend the crashed process served (the
    store sanity-checks its size against the persisted ``n_items``).
    ``mode`` overrides the persisted engine mode when given.  ``strict``
    (the default) raises on any audit violation or ledger/audit spend
    mismatch; pass False to get the damaged service back for forensics.

    On success the store is re-attached (primed — nothing is re-persisted)
    and checkpointed, so the next crash replays only post-recovery WAL.
    """
    start = time.perf_counter()
    state = store.load_state()
    meta = state.meta
    if "manager_seed" not in meta:
        raise InvalidParameterError(
            f"{store.state_dir}: no bootstrapped service to recover "
            "(missing manager_seed metadata)"
        )
    audit = AuditLog.from_records(state.records, next_seq=state.next_seq)
    service = SVTQueryService(
        dataset,
        seed=int(meta["manager_seed"]),
        mode=str(mode if mode is not None else meta.get("mode", "shared")),
        audit=audit,
    )
    manager = service.manager
    persisted_n = meta.get("n_items")
    if persisted_n is not None and manager.num_items != int(persisted_n):
        raise InvalidParameterError(
            f"dataset has {manager.num_items} items but the store was written "
            f"against {persisted_n} — wrong score file?"
        )
    if "engine_rng" in meta:
        service.engine.rng = decode_rng_state(meta["engine_rng"])
    manager.restore_epochs(meta.get("epochs", {}))
    pools: Dict[str, BudgetPool] = {
        tenant: BudgetPool.restore(p["total"], p["drawn"], p["refunded"])
        for tenant, p in meta.get("pools", {}).items()
    }

    now = manager.now()  # TTLs re-arm from the recovery clock
    live = {
        sid: info
        for sid, info in state.sessions.items()
        if info["status"] == "open"
    }
    n_lanes = 0
    for sid, info in live.items():  # parents first: insertion order is open order
        if info["lane"] is not None:
            continue
        if info["state"] is None:
            raise InvalidParameterError(f"session {sid!r} has no persisted state")
        pool = pools.get(info["tenant"]) if info["pool"] is not None else None
        if info["pool"] is not None and pool is None:
            raise InvalidParameterError(
                f"session {sid!r} references a budget pool with no persisted state"
            )
        manager.adopt_session(
            Session.restored(
                manager.dataset,
                manager.supports,
                info["config"],
                info["state"],
                tenant=info["tenant"],
                session_id=sid,
                audit=audit,
                pool=pool,
                opened_at=now,
            )
        )
    for sid, info in live.items():
        if info["lane"] is None:
            continue
        if info["state"] is None:
            raise InvalidParameterError(f"lane {sid!r} has no persisted state")
        parent = manager.session(info["tenant"])
        if parent.session_id != info["parent"]:
            raise InvalidParameterError(
                f"lane {sid!r} belongs to {info['parent']!r} but tenant "
                f"{info['tenant']!r} resolved to {parent.session_id!r}"
            )
        parent.adopt_lane(
            info["lane"],
            Session.restored(
                manager.dataset,
                manager.supports,
                info["config"],
                info["state"],
                tenant=info["tenant"],
                session_id=sid,
                audit=audit,
                pool=parent.pool,
                opened_at=now,
            ),
        )
        n_lanes += 1
    manager.restore_closed(
        {sid: ClosedSession(**view) for sid, view in state.closed.items()}
    )

    report = verify_audit(audit, manager.audit_sessions())
    violations: List[str] = list(report.violations)
    audited = audit.spend_by_session()
    for session in manager.audit_sessions().values():
        ledger = getattr(session, "ledger", None)
        if ledger is None:
            continue  # ClosedSession views carry totals, checked by verify_audit
        spend = audited.get(session.session_id, 0.0)
        if abs(ledger.spent - spend) > _EPS_SLACK:
            violations.append(
                f"{session.session_id}: recovered ledger spent {ledger.spent:.6g} "
                f"but the audit chain records {spend:.6g}"
            )
    report.violations = violations
    if strict and violations:
        raise InvalidParameterError(
            "recovery found inconsistent accounting:\n  - "
            + "\n  - ".join(violations)
        )

    store.attach(service, prime=True)
    if store.wal_batches:
        store.checkpoint()
    info = RecoveryInfo(
        duration_ms=(time.perf_counter() - start) * 1e3,
        sessions=len(manager),
        lanes=n_lanes,
        closed_sessions=len(state.closed),
        audit_records=len(state.records),
        wal_batches=state.wal_batches,
        torn_tail=state.torn_tail,
        report=report,
    )
    return service, info
