"""Per-request latency spans: where a request spends its life.

The runtime's drain metrics say how long a *drain* took; they cannot say
where a *request* waited — and the TCP bench's 82 ms client p50 against a
10 ms drain p99 is exactly the kind of gap only per-request attribution can
explain.  The tracer splits a request's server-side life into named stages
(:data:`STAGES`), carried from :class:`~repro.service.runtime.server.
IngressQueue` admission to the response leaving the connection:

``ingress_wait``
    Client send (when the connection sent a ``mark`` op) or admission
    (``try_put``) until drain pickup (``take``) — time spent queued behind
    earlier windows, including bytes parked in socket buffers while a
    drain blocked the readers.  Measured per entry with its own timestamp.
``cohort_form``
    Session lookup plus :class:`~repro.service.batcher.RequestBatcher`
    submission — the cost of grouping the window into cohorts.
``gate_exec``
    :meth:`~repro.service.engine.ServiceEngine.execute` — the vectorized
    gate passes (the ``gate_kernel_ms`` histogram tracks the pure
    :func:`~repro.engine.gate.gate_block`/``gate_grid`` kernel time inside
    this stage, measured by the engine itself).
``respond_encode``
    Building and serializing the staged response payloads.
``store_flush``
    The durability barrier: WAL append + fsync (zero without a store).
``send``
    Writing the staged responses to their connections.

Drain-level stages are observed once per drain, **weighted by the number of
requests the drain served** (:meth:`~repro.service.runtime.metrics.
Histogram.observe_n`): a drain's gate time is latency every request in it
experienced, so the per-stage histograms read as per-request distributions
and their p50s compose into the client-observed p50 (the attribution the
server bench enforces).  ``ingress_wait`` is per-entry, weighted by the
entry's request count.

Slow requests additionally land in a bounded exemplar ring: any request
whose admission-to-send total exceeds ``slow_ms`` is recorded with its full
stage breakdown (its own ingress wait + its drain's stage durations), the
queryable raw material behind ``/debug/slow`` and ``repro trace-report``.
Memory is bounded twice over: the ring is a ``deque(maxlen=...)`` and only
above-threshold requests ever allocate an exemplar dict.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # a runtime import would cycle: server imports the tracer
    from repro.service.runtime.metrics import Histogram, MetricsRegistry

__all__ = [
    "STAGES",
    "STAGE_GLOSSARY",
    "TRACE_BUCKETS_MS",
    "RequestTracer",
]

#: Span stages in pipeline order.  Disjoint by construction: summing one
#: request's stages yields its admission-to-send total.
STAGES: Tuple[str, ...] = (
    "ingress_wait",
    "cohort_form",
    "gate_exec",
    "respond_encode",
    "store_flush",
    "send",
)

#: One-line glossary per stage (served by ``/debug/trace`` and the README).
STAGE_GLOSSARY: Dict[str, str] = {
    "ingress_wait": "client send (with a mark op) or admission until drain pickup",
    "cohort_form": "session lookup + RequestBatcher cohort submission",
    "gate_exec": "vectorized gate execution (ServiceEngine.execute)",
    "respond_encode": "response staging and serialization into the outbox",
    "store_flush": "durability barrier: WAL append + fsync",
    "send": "staged responses written to their connections",
}

#: Span buckets in milliseconds.  Wider than the drain buckets: ingress
#: wait under deep pipelining reaches into the hundreds of ms, and the
#: attribution math needs resolution there, not just near 1 ms.
TRACE_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0,
    150.0, 250.0, 500.0, 1000.0, 2500.0,
)


class RequestTracer:
    """Aggregates request spans into stage histograms + a slow-exemplar ring.

    One tracer per server.  All methods are safe to call from the drain
    loop and snapshot readers concurrently (histograms carry their own
    locks; the ring has one).
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        slow_ms: float = 50.0,
        max_exemplars: int = 256,
    ) -> None:
        self.registry = registry
        self.slow_ms = float(slow_ms)
        self._ring: deque = deque(maxlen=int(max_exemplars))
        self._ring_lock = threading.Lock()
        self.stage_hist: Dict[str, "Histogram"] = {
            stage: registry.histogram(
                "stage_ms", TRACE_BUCKETS_MS, labels={"stage": stage}
            )
            for stage in STAGES
        }
        self.total_hist = registry.histogram("request_span_ms", TRACE_BUCKETS_MS)
        # Sub-span of gate_exec: the pure gate_block/gate_grid kernel time
        # the engine measures around its vectorized calls.  Deliberately not
        # in STAGES — the disjoint stage sum would double-count it.
        self.gate_kernel_hist = registry.histogram("gate_kernel_ms", TRACE_BUCKETS_MS)
        self._c_spans = registry.counter("trace_spans_total")
        self._c_slow = registry.counter("trace_slow_total")

    # ------------------------------------------------------------------
    # Recording (drain-loop side).
    # ------------------------------------------------------------------
    def observe_stage(self, stage: str, ms: float, weight: int) -> None:
        """Fold one stage duration in, weighted by the requests it covered."""
        self.stage_hist[stage].observe_n(ms, weight)

    def observe_gate_kernel(self, ms: float, weight: int) -> None:
        """Pure kernel time inside ``gate_exec`` (engine-measured)."""
        self.gate_kernel_hist.observe_n(ms, weight)

    def record_entry(
        self,
        *,
        kind: str,
        tenant: str,
        weight: int,
        wait_ms: float,
        drain_stages_ms: Dict[str, float],
        total_ms: float,
        ticket: Optional[int] = None,
    ) -> None:
        """Complete one entry's span: totals, slow sampling, exemplar capture.

        *drain_stages_ms* holds the entry's drain's shared stage durations;
        the exemplar stitches them to the entry's own ``ingress_wait``.
        Called once per wire entry (a block counts as one), so the hot-path
        cost is bounded by entries per drain, not requests.
        """
        self._c_spans.add(weight)
        self.total_hist.observe_n(total_ms, weight)
        if total_ms < self.slow_ms:
            return
        self._c_slow.add(weight)
        exemplar = {
            "at": time.time(),
            "kind": kind,
            "tenant": tenant,
            "requests": int(weight),
            "ticket": ticket,
            "total_ms": round(total_ms, 3),
            "stages": {
                "ingress_wait": round(wait_ms, 3),
                **{k: round(v, 3) for k, v in drain_stages_ms.items()},
            },
        }
        with self._ring_lock:
            self._ring.append(exemplar)

    # ------------------------------------------------------------------
    # Querying (admin-plane side).
    # ------------------------------------------------------------------
    def slow(self, limit: Optional[int] = None) -> List[dict]:
        """The most recent slow-request exemplars, newest last."""
        with self._ring_lock:
            out = list(self._ring)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def stage_snapshot(self) -> Dict[str, dict]:
        """Per-stage histogram snapshots keyed by bare stage name."""
        return {stage: hist.snapshot() for stage, hist in self.stage_hist.items()}

    def report(self, slow_limit: int = 32) -> dict:
        """The ``/debug/trace`` payload: stages, totals, exemplars, glossary."""
        stages = self.stage_snapshot()
        return {
            "glossary": STAGE_GLOSSARY,
            "slow_threshold_ms": self.slow_ms,
            "spans_total": self._c_spans.value,
            "slow_total": self._c_slow.value,
            "stages": stages,
            "stage_p50_sum_ms": round(
                sum(s["p50"] for s in stages.values()), 6
            ),
            "gate_kernel": self.gate_kernel_hist.snapshot(),
            "total": self.total_hist.snapshot(),
            "slow": self.slow(slow_limit),
        }
