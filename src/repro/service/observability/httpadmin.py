"""The HTTP admin plane: probe, scrape, and profile a live runtime.

The JSONL protocol's ``metrics`` op requires a protocol-speaking client; a
load balancer health check, a Prometheus scraper, and an engineer with
``curl`` all speak HTTP.  :class:`AdminPlane` is a deliberately small
HTTP/1.1 server — asyncio + stdlib only, GET/HEAD only, no TLS, bind it to
loopback or an operator network — that shares the runtime's event loop but
listens on its **own** port, so operational traffic can never consume a
protocol connection slot (and the protocol port stays a pure data plane).

Routes:

======================  ======================================================
``/healthz``            liveness: the event loop answers (always 200)
``/readyz``             readiness: drain-loop heartbeat fresh + store open
``/metrics``            Prometheus text exposition of the full registry
``/debug/trace``        per-stage latency breakdown + slow exemplars (JSON)
``/debug/slow``         just the slow-request exemplar ring (``?limit=``)
``/debug/profile``      sampling profile, collapsed stacks (``?seconds=``)
``/sessions``           paginated live-session listing (``?limit=&offset=``)
``/audit``              audit records after a seq (``?after_seq=&limit=``),
                        live log and archived (compacted) records merged
``/audit/eps``          latest empirical-audit report: eps lower bound,
                        charged eps, guess totals, and the caught verdict
``/``                   JSON index of all of the above
======================  ======================================================

Everything here reads shared structures the drain loop writes concurrently
— but every read is either lock-protected (histograms, the exemplar ring,
the audit log's append lock) or a point-in-time snapshot, so a scrape can
never torn-read a request's accounting.  ``/debug/profile`` is the one
blocking route; it runs in the default executor so the event loop (and the
drain loop riding it) keeps serving while the sampler watches it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.observability.profiler import ProfilerBusyError, SamplingProfiler
from repro.service.observability.promexport import CONTENT_TYPE, render_prometheus

__all__ = ["AdminPlane"]

_MAX_PROFILE_S = 30.0
_MAX_PAGE = 1000

_ROUTE_HELP = {
    "/healthz": "liveness probe (always 200 while the loop runs)",
    "/readyz": "readiness: drain heartbeat + durable store state",
    "/metrics": "Prometheus text exposition (version 0.0.4)",
    "/debug/trace": "stage latency breakdown + slow exemplars",
    "/debug/slow": "slow-request exemplars; ?limit=N",
    "/debug/profile": "collapsed-stack sampling profile; ?seconds=N",
    "/sessions": "live sessions; ?limit=N&offset=M",
    "/audit": "audit records; ?after_seq=S&limit=N",
    "/audit/eps": "latest empirical-audit eps lower bound vs charged eps",
}


def _first_int(query: Dict[str, list], key: str, default: int) -> int:
    try:
        return int(query[key][0])
    except (KeyError, IndexError, ValueError):
        return default


def _first_float(query: Dict[str, list], key: str, default: float) -> float:
    try:
        return float(query[key][0])
    except (KeyError, IndexError, ValueError):
        return default


class AdminPlane:
    """The runtime's operational HTTP surface, on its own port.

    Owns nothing but a listener and a profiler: all state it serves belongs
    to the :class:`~repro.service.runtime.server.RuntimeServer` it wraps.
    ``start()`` must run on the same event loop as the runtime (the drain
    heartbeat and ``run_in_executor`` both assume it).
    """

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int = 0,
        profiler: Optional[SamplingProfiler] = None,
    ) -> None:
        self.server = server
        self.host = host
        self.port = int(port)
        self.profiler = profiler if profiler is not None else SamplingProfiler()
        self._http: Optional[asyncio.AbstractServer] = None

    async def start(self) -> asyncio.AbstractServer:
        self._http = await asyncio.start_server(self._handle, self.host, self.port)
        return self._http

    @property
    def address(self) -> Tuple[str, int]:
        assert self._http is not None, "admin plane not started"
        sock = self._http.sockets[0]
        return sock.getsockname()[:2]

    async def close(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None

    # ------------------------------------------------------------------
    # HTTP plumbing.
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError as exc:
                    if exc.partial.strip():
                        self._respond(writer, 400, "text/plain; charset=utf-8",
                                      b"malformed request\n", close=True)
                    break
                except (asyncio.LimitOverrunError, ConnectionError):
                    break
                request_line, _, header_blob = head.partition(b"\r\n")
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    self._respond(writer, 400, "text/plain; charset=utf-8",
                                  b"malformed request line\n", close=True)
                    break
                method, target, _version = parts
                keep = b"connection: close" not in header_blob.lower()
                if method not in ("GET", "HEAD"):
                    self._respond(writer, 405, "text/plain; charset=utf-8",
                                  b"GET only\n", close=not keep)
                else:
                    split = urlsplit(target)
                    query = parse_qs(split.query)
                    try:
                        status, ctype, body = await self._route(split.path, query)
                    except Exception as exc:  # route bug -> 500, conn lives
                        status, ctype, body = (
                            500,
                            "application/json",
                            self._json({"error": str(exc)}),
                        )
                    self._respond(writer, status, ctype, body,
                                  close=not keep, head=method == "HEAD")
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, RuntimeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    _STATUS = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 409: "Conflict",
               500: "Internal Server Error", 503: "Service Unavailable"}

    def _respond(self, writer, status: int, ctype: str, body: bytes,
                 close: bool = False, head: bool = False) -> None:
        reason = self._STATUS.get(status, "Unknown")
        conn = "close" if close else "keep-alive"
        header = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {conn}\r\n\r\n"
        ).encode("latin-1")
        writer.write(header if head else header + body)

    @staticmethod
    def _json(payload) -> bytes:
        return (json.dumps(payload, default=float) + "\n").encode()

    # ------------------------------------------------------------------
    # Routes.  Every data-bearing route goes through a server *view method*
    # (``snapshot``, ``readiness``, ``sessions_view``, ...) and awaits the
    # result when it is a coroutine: the single-process RuntimeServer
    # answers synchronously from its own structures, the shard router
    # answers asynchronously by merging every worker's view — same plane.
    # ------------------------------------------------------------------
    @staticmethod
    async def _resolve(value):
        if asyncio.iscoroutine(value):
            return await value
        return value

    async def _route(self, path: str, query: Dict[str, list]):
        if path in ("/", "/help"):
            return 200, "application/json", self._json({"routes": _ROUTE_HELP})
        if path == "/healthz":
            return 200, "text/plain; charset=utf-8", b"ok\n"
        if path == "/readyz":
            ok, detail = await self._resolve(self.server.readiness())
            return (200 if ok else 503), "application/json", self._json(
                {"ready": ok, **detail}
            )
        if path == "/metrics":
            text = render_prometheus(await self._resolve(self.server.snapshot()))
            return 200, CONTENT_TYPE, text.encode()
        if path == "/debug/trace":
            report = await self._resolve(self.server.trace_view())
            if report is None:
                return 404, "application/json", self._json(
                    {"error": "tracing disabled; start with --trace"}
                )
            return 200, "application/json", self._json(report)
        if path == "/debug/slow":
            limit = min(max(_first_int(query, "limit", 64), 0), _MAX_PAGE)
            payload = await self._resolve(self.server.slow_view(limit))
            if payload is None:
                return 404, "application/json", self._json(
                    {"error": "tracing disabled; start with --trace"}
                )
            return 200, "application/json", self._json(payload)
        if path == "/debug/profile":
            return await self._profile(query)
        if path == "/sessions":
            limit = min(max(_first_int(query, "limit", 50), 0), _MAX_PAGE)
            offset = max(_first_int(query, "offset", 0), 0)
            page = await self._resolve(
                self.server.sessions_view(limit=limit, offset=offset)
            )
            return 200, "application/json", self._json(page)
        if path == "/audit/eps":
            view = await self._resolve(self.server.audit_eps_view())
            return 200, "application/json", self._json(view)
        if path == "/audit":
            after_seq = _first_int(query, "after_seq", -1)
            limit = min(max(_first_int(query, "limit", 100), 0), _MAX_PAGE)
            view = await self._resolve(
                self.server.audit_view(after_seq=after_seq, limit=limit)
            )
            return 200, "application/json", self._json(view)
        return 404, "application/json", self._json(
            {"error": f"no route {path!r}", "routes": sorted(_ROUTE_HELP)}
        )

    async def _profile(self, query: Dict[str, list]):
        seconds = _first_float(query, "seconds", 2.0)
        if not 0.0 < seconds <= _MAX_PROFILE_S:
            return 400, "application/json", self._json(
                {"error": f"seconds must be in (0, {_MAX_PROFILE_S:g}]"}
            )
        loop = asyncio.get_running_loop()
        try:
            text = await loop.run_in_executor(
                None, self.profiler.collapsed, seconds
            )
        except ProfilerBusyError as exc:
            return 409, "application/json", self._json({"error": str(exc)})
        return 200, "text/plain; charset=utf-8", text.encode()
