"""Opt-in sampling profiler: flamegraph-compatible collapsed stacks.

``perf`` can't see Python frames and a deterministic tracer (cProfile)
costs far too much to point at a server mid-load.  This sampler does what
py-spy does, in-process and stdlib-only: a dedicated thread wakes every
``interval_s``, grabs :func:`sys._current_frames` (one C call, no tracing
hooks, no per-bytecode overhead), and folds each thread's stack into a
counter keyed by the collapsed frame chain.  The profiled threads pay
nothing between samples — the overhead is the sampler thread's own work,
which is why the admin plane can expose this against a live drain loop.

Output is the classic *collapsed stack* format, one line per distinct
stack::

    MainThread;serve_tcp;_drain_loop;drain_once;_drain_sync;gate_block 42

pipe it straight into ``flamegraph.pl`` or paste into speedscope.  Stacks
are rooted at the thread name so a multi-threaded capture stays readable.

One capture at a time: a second concurrent ``collapsed()`` raises
:class:`ProfilerBusyError` (the admin plane maps it to HTTP 409) instead of
silently interleaving two sample streams.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Dict, Iterable, Optional

__all__ = ["SamplingProfiler", "ProfilerBusyError"]


class ProfilerBusyError(RuntimeError):
    """A capture is already running; try again when it finishes."""


def _frame_label(frame) -> str:
    code = frame.f_code
    name = getattr(code, "co_qualname", code.co_name)
    module = code.co_filename.rsplit("/", 1)[-1]
    return f"{name} ({module})"


class SamplingProfiler:
    """Sample Python stacks across threads into collapsed-stack counts."""

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0.0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = float(interval_s)
        self._busy = threading.Lock()

    def collapsed(
        self,
        seconds: float,
        thread_ids: Optional[Iterable[int]] = None,
    ) -> str:
        """Sample for *seconds* and return collapsed stacks (blocking).

        *thread_ids* restricts the capture (e.g. to the drain/event-loop
        thread); None profiles every thread except the sampler itself.
        Call from a thread you can afford to block — the admin plane runs
        it in an executor so the event loop keeps serving.
        """
        if seconds <= 0.0:
            raise ValueError("seconds must be > 0")
        if not self._busy.acquire(blocking=False):
            raise ProfilerBusyError("a profile capture is already running")
        try:
            wanted = None if thread_ids is None else {int(t) for t in thread_ids}
            counts: Counter = Counter()
            samples = 0
            me = threading.get_ident()
            deadline = time.perf_counter() + float(seconds)
            while time.perf_counter() < deadline:
                names: Dict[int, str] = {
                    t.ident: t.name for t in threading.enumerate() if t.ident
                }
                for tid, frame in sys._current_frames().items():
                    if tid == me or (wanted is not None and tid not in wanted):
                        continue
                    stack = []
                    while frame is not None:
                        stack.append(_frame_label(frame))
                        frame = frame.f_back
                    stack.append(names.get(tid, f"thread-{tid}"))
                    counts[";".join(reversed(stack))] += 1
                samples += 1
                time.sleep(self.interval_s)
            lines = [
                f"{stack} {count}"
                for stack, count in sorted(
                    counts.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            header = (
                f"# samples: {samples} interval_ms: {self.interval_s * 1e3:g} "
                f"duration_s: {float(seconds):g}"
            )
            return "\n".join([header, *lines]) + "\n"
        finally:
            self._busy.release()
