"""Prometheus text-format exposition for the runtime's metrics registry.

Renders a :meth:`~repro.service.runtime.metrics.MetricsRegistry.snapshot`
into the Prometheus text exposition format (version 0.0.4): counters become
``<prefix><name> <value>`` samples typed ``counter``, gauges ``gauge``, and
each fixed-bucket histogram expands into the cumulative
``_bucket{le="..."}`` series (including the mandatory ``le="+Inf"``)
plus ``_sum`` and ``_count``.

Working from the *snapshot* rather than the live registry is deliberate:
the same function serves the admin plane's ``/metrics`` endpoint (local
registry), the ``repro metrics --format prom`` CLI (snapshot fetched over
the JSONL protocol from a remote server), and tests — one encoder, three
transports.

Labels ride along for free: the registry keys labeled series as
``name{k="v"}`` (see :func:`~repro.service.runtime.metrics.metric_key`),
which is already the Prometheus sample syntax; the renderer splits the key
so the label set lands after any ``_bucket``/``_sum``/``_count`` suffix and
merges with the ``le`` label, and groups all series of one family under a
single ``# TYPE`` line, as the format requires.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

__all__ = ["render_prometheus", "CONTENT_TYPE"]

#: The scrape Content-Type Prometheus expects for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_KEY_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?P<labels>.*)\})?$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _split_key(key: str) -> Tuple[str, str]:
    """Registry key -> (metric family name, raw label body or '')."""
    match = _KEY_RE.match(key)
    if match is None:
        # Defensive: a non-conforming name is sanitized rather than dropped,
        # so a scrape never silently loses a series.
        return _SANITIZE_RE.sub("_", key), ""
    return match.group("name"), match.group("labels") or ""


def _sample(name: str, labels: str, value: str) -> str:
    if labels:
        return f"{name}{{{labels}}} {value}"
    return f"{name} {value}"


def _merge_labels(base: str, extra: str) -> str:
    if base and extra:
        return f"{base},{extra}"
    return base or extra


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _le_label(bound: str) -> str:
    if bound == "+inf":
        return 'le="+Inf"'
    return f'le="{_format_value(float(bound))}"'


def render_prometheus(snapshot: dict, prefix: str = "repro_") -> str:
    """Render one registry snapshot as Prometheus text exposition.

    *snapshot* is the JSON-able dict :meth:`MetricsRegistry.snapshot`
    returns (extra keys like ``shed_rate`` that the server folds into its
    ``metrics`` op response are ignored).  Every metric name gains *prefix*
    so scraped series are namespaced (``repro_requests_total``).
    """
    # Samples are grouped per family *before* anything is emitted, then each
    # family renders as one contiguous block under a single ``# TYPE`` line.
    # Emitting in snapshot order with a seen-types set is not enough: sorted
    # registry keys do not keep a family's series adjacent ('{' sorts after
    # every identifier character, so ``a{...}`` lands after ``ab``), and the
    # shard-merged snapshots interleave ``shard="K"``-labeled series with
    # unlabeled aggregates of other families.  The format requires all
    # samples of a family to follow its TYPE line.
    families: Dict[Tuple[str, str], List[str]] = {}

    def bucket(family: str, kind: str) -> List[str]:
        return families.setdefault((family, kind), [])

    for key, value in snapshot.get("counters", {}).items():
        name, labels = _split_key(key)
        family = prefix + name
        bucket(family, "counter").append(_sample(family, labels, _format_value(value)))

    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _split_key(key)
        family = prefix + name
        bucket(family, "gauge").append(_sample(family, labels, _format_value(value)))

    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = _split_key(key)
        family = prefix + name
        samples = bucket(family, "histogram")
        cumulative = 0
        buckets = hist.get("buckets", {})
        for bound, count in buckets.items():
            cumulative += int(count)
            samples.append(
                _sample(
                    family + "_bucket",
                    _merge_labels(labels, _le_label(str(bound))),
                    str(cumulative),
                )
            )
        if "+inf" not in {str(b).lower() for b in buckets}:
            # A histogram without an explicit overflow bucket still must
            # expose le="+Inf" == _count.
            samples.append(
                _sample(
                    family + "_bucket",
                    _merge_labels(labels, 'le="+Inf"'),
                    str(hist.get("count", cumulative)),
                )
            )
        samples.append(_sample(family + "_sum", labels, _format_value(hist.get("sum", 0.0))))
        samples.append(_sample(family + "_count", labels, str(int(hist.get("count", 0)))))

    lines: List[str] = []
    for (family, kind), samples in families.items():
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + "\n"
