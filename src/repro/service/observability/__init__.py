"""The telemetry plane: request tracing, Prometheus exposition, HTTP admin.

The runtime serves ~2M req/s but — before this package — could only be
observed through a point-in-time ``metrics`` protocol op.  Four modules turn
it into something that can be probed, scraped, and profiled like production
infrastructure:

* :mod:`~repro.service.observability.tracing` — per-request spans threaded
  from ingress admission through cohort formation, gate execution, the
  durability barrier, and response send, aggregated into per-stage latency
  histograms plus a bounded ring of slow-request exemplars;
* :mod:`~repro.service.observability.promexport` — Prometheus text-format
  exposition rendered from any :class:`~repro.service.runtime.metrics.
  MetricsRegistry` snapshot (cumulative ``_bucket``/``_sum``/``_count``
  histogram encoding, labels included);
* :mod:`~repro.service.observability.httpadmin` — an asyncio HTTP/1.1 admin
  plane on its own port sharing the runtime's event loop: health and
  readiness probes, the ``/metrics`` scrape, paginated ``/sessions`` and
  ``/audit`` listings, slow exemplars, and on-demand profiling;
* :mod:`~repro.service.observability.profiler` — an opt-in sampling
  profiler emitting flamegraph-compatible collapsed stacks.
"""

from repro.service.observability.httpadmin import AdminPlane
from repro.service.observability.profiler import ProfilerBusyError, SamplingProfiler
from repro.service.observability.promexport import render_prometheus
from repro.service.observability.tracing import (
    STAGE_GLOSSARY,
    STAGES,
    TRACE_BUCKETS_MS,
    RequestTracer,
)

__all__ = [
    "AdminPlane",
    "RequestTracer",
    "STAGES",
    "STAGE_GLOSSARY",
    "TRACE_BUCKETS_MS",
    "render_prometheus",
    "SamplingProfiler",
    "ProfilerBusyError",
]
