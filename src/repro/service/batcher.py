"""Request queueing and cohort grouping for cross-session batching.

The batcher is deliberately dumb: it remembers submission order (tickets),
keeps per-session FIFO discipline, and hands the engine everything pending.
Two submission lanes exist because per-request Python is exactly what the
batched engine is built to avoid:

* :meth:`RequestBatcher.submit` — one query, any shape (item index or
  :class:`~repro.queries.base.Query`); allocates one
  :class:`QueuedRequest`.
* :meth:`RequestBatcher.submit_array` — a whole array of item-index queries
  for one session in one call; stored as a :class:`BlockRequest` and never
  expanded on the fast path, so a 4096-request window costs a handful of
  appends instead of 4096 object constructions.

Tickets are dense: a drain always covers a contiguous ticket range, which
is what lets :class:`~repro.service.engine.DrainResult` use plain arrays
indexed by ``ticket - base``.

All actual answering — including grouping sessions into ``(epsilon,
threshold, c, svt_fraction, sensitivity, monotonic)`` cohorts that execute
as one vectorized engine block per pass — lives in
:mod:`repro.service.engine`, keyed by ``Session.cohort_key``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.service.session import QueryLike, Session

__all__ = ["QueuedRequest", "BlockRequest", "DrainBatch", "RequestBatcher"]


@dataclass(frozen=True)
class QueuedRequest:
    """One pending query: which session asked what, and in which global order."""

    ticket: int
    session: Session
    query: QueryLike


@dataclass(frozen=True)
class BlockRequest:
    """A contiguous run of item-index queries from one session.

    ``queries[i]`` holds ticket ``ticket + i``.
    """

    ticket: int
    session: Session
    queries: np.ndarray

    def __len__(self) -> int:
        return int(self.queries.size)


Entry = Union[QueuedRequest, BlockRequest]


@dataclass(frozen=True)
class DrainBatch:
    """Everything pending at drain time: entries plus the ticket range."""

    entries: List[Entry]
    base_ticket: int
    size: int

    def __len__(self) -> int:
        return self.size


class RequestBatcher:
    """FIFO queue of pending queries from many concurrent sessions."""

    def __init__(self) -> None:
        self._entries: List[Entry] = []
        self._pending = 0
        self._next_ticket = 0
        # First ticket of the next drain.  Tracked explicitly (rather than
        # computed as next_ticket - size) because a *partial* drain leaves
        # requests behind: the dense-ticket invariant then reads "each drain
        # covers the next contiguous ticket range", not "all of them".
        self._next_base = 0

    def submit(self, session: Session, query: QueryLike) -> int:
        """Queue one query; returns its ticket (global submission index)."""
        ticket = self._next_ticket
        self._next_ticket += 1
        self._pending += 1
        self._entries.append(QueuedRequest(ticket=ticket, session=session, query=query))
        return ticket

    def submit_array(self, session: Session, queries) -> np.ndarray:
        """Queue a whole array of item-index queries for one session.

        Returns the tickets (a contiguous range).  An int64 array is kept by
        reference — don't mutate it after submitting.
        """
        queries = np.asarray(queries)
        if queries.ndim != 1:
            raise InvalidParameterError("submit_array expects a 1-D array of items")
        if queries.dtype != np.int64:
            if queries.dtype.kind not in "iu":
                raise InvalidParameterError("submit_array expects integer item queries")
            queries = queries.astype(np.int64)
        ticket = self._next_ticket
        self._next_ticket += queries.size
        self._pending += int(queries.size)
        self._entries.append(
            BlockRequest(ticket=ticket, session=session, queries=queries)
        )
        return np.arange(ticket, ticket + queries.size, dtype=np.int64)

    def submit_block(self, session: Session, queries: np.ndarray) -> int:
        """:meth:`submit_array` returning only the base ticket.

        The hot-path variant for callers (the runtime server) that track a
        block by its contiguous range and don't want a tickets array
        allocated per block.  *queries* must already be int64 and 1-D.
        """
        ticket = self._next_ticket
        self._next_ticket += queries.size
        self._pending += int(queries.size)
        self._entries.append(
            BlockRequest(ticket=ticket, session=session, queries=queries)
        )
        return ticket

    @property
    def pending(self) -> int:
        return self._pending

    def __len__(self) -> int:
        return self._pending

    def drain(self, limit: Optional[int] = None) -> DrainBatch:
        """Take pending requests in submission order — all of them, or at
        most *limit*.

        ``limit`` is what lets the runtime's adaptive policy bound a drain's
        head-of-line blocking: the batch covers the next contiguous ticket
        range of up to *limit* requests, and everything behind it stays
        queued for the following drain.  A :class:`BlockRequest` straddling
        the cut is split — the head rides this drain, the tail (a view, no
        copy) is re-queued at the front — so per-session FIFO order is
        preserved exactly.
        """
        if limit is None or limit >= self._pending:
            entries, self._entries = self._entries, []
            size, self._pending = self._pending, 0
        else:
            if limit <= 0:
                raise InvalidParameterError("drain limit must be > 0 (or None)")
            taken = 0
            size = 0
            split: Optional[BlockRequest] = None
            for entry in self._entries:
                length = len(entry) if isinstance(entry, BlockRequest) else 1
                if size + length > limit:
                    keep = limit - size
                    if keep > 0:  # only a BlockRequest can straddle the cut
                        split = entry
                    break
                taken += 1
                size += length
            entries = self._entries[:taken]
            self._entries = self._entries[taken:]
            if split is not None:
                keep = limit - size
                entries.append(
                    BlockRequest(
                        ticket=split.ticket, session=split.session,
                        queries=split.queries[:keep],
                    )
                )
                self._entries[0] = BlockRequest(
                    ticket=split.ticket + keep, session=split.session,
                    queries=split.queries[keep:],
                )
                size += keep
            self._pending -= size
        base = self._next_base
        self._next_base += size
        return DrainBatch(entries=entries, base_ticket=base, size=size)
