"""Request queueing and cohort grouping for cross-session batching.

The batcher is deliberately dumb: it remembers submission order (tickets),
keeps per-session FIFO discipline, and hands the engine everything pending.
Two submission lanes exist because per-request Python is exactly what the
batched engine is built to avoid:

* :meth:`RequestBatcher.submit` — one query, any shape (item index or
  :class:`~repro.queries.base.Query`); allocates one
  :class:`QueuedRequest`.
* :meth:`RequestBatcher.submit_array` — a whole array of item-index queries
  for one session in one call; stored as a :class:`BlockRequest` and never
  expanded on the fast path, so a 4096-request window costs a handful of
  appends instead of 4096 object constructions.

Tickets are dense: a drain always covers a contiguous ticket range, which
is what lets :class:`~repro.service.engine.DrainResult` use plain arrays
indexed by ``ticket - base``.

All actual answering — including grouping sessions into ``(epsilon,
threshold, c, svt_fraction, sensitivity, monotonic)`` cohorts that execute
as one vectorized engine block per pass — lives in
:mod:`repro.service.engine`, keyed by ``Session.cohort_key``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.service.session import QueryLike, Session

__all__ = ["QueuedRequest", "BlockRequest", "DrainBatch", "RequestBatcher"]


@dataclass(frozen=True)
class QueuedRequest:
    """One pending query: which session asked what, and in which global order."""

    ticket: int
    session: Session
    query: QueryLike


@dataclass(frozen=True)
class BlockRequest:
    """A contiguous run of item-index queries from one session.

    ``queries[i]`` holds ticket ``ticket + i``.
    """

    ticket: int
    session: Session
    queries: np.ndarray

    def __len__(self) -> int:
        return int(self.queries.size)


Entry = Union[QueuedRequest, BlockRequest]


@dataclass(frozen=True)
class DrainBatch:
    """Everything pending at drain time: entries plus the ticket range."""

    entries: List[Entry]
    base_ticket: int
    size: int

    def __len__(self) -> int:
        return self.size


class RequestBatcher:
    """FIFO queue of pending queries from many concurrent sessions."""

    def __init__(self) -> None:
        self._entries: List[Entry] = []
        self._pending = 0
        self._next_ticket = 0

    def submit(self, session: Session, query: QueryLike) -> int:
        """Queue one query; returns its ticket (global submission index)."""
        ticket = self._next_ticket
        self._next_ticket += 1
        self._pending += 1
        self._entries.append(QueuedRequest(ticket=ticket, session=session, query=query))
        return ticket

    def submit_array(self, session: Session, queries) -> np.ndarray:
        """Queue a whole array of item-index queries for one session.

        Returns the tickets (a contiguous range).  An int64 array is kept by
        reference — don't mutate it after submitting.
        """
        queries = np.asarray(queries)
        if queries.ndim != 1:
            raise InvalidParameterError("submit_array expects a 1-D array of items")
        if queries.dtype != np.int64:
            if queries.dtype.kind not in "iu":
                raise InvalidParameterError("submit_array expects integer item queries")
            queries = queries.astype(np.int64)
        ticket = self._next_ticket
        self._next_ticket += queries.size
        self._pending += int(queries.size)
        self._entries.append(
            BlockRequest(ticket=ticket, session=session, queries=queries)
        )
        return np.arange(ticket, ticket + queries.size, dtype=np.int64)

    @property
    def pending(self) -> int:
        return self._pending

    def __len__(self) -> int:
        return self._pending

    def drain(self) -> DrainBatch:
        """Take every pending request, in submission order."""
        entries, self._entries = self._entries, []
        size, self._pending = self._pending, 0
        base = self._next_ticket - size
        return DrainBatch(entries=entries, base_ticket=base, size=size)
