"""Closed-loop multi-tenant workloads: Zipf tenants, correlated query streams.

A serving benchmark is only as honest as its workload.  This one models what
the Section-3.4 trick is *for*: many analysts (tenants) asking overlapping,
repetitive item-support queries against one private dataset.  Tenant
popularity is Zipf-distributed (a few hot tenants dominate, a long tail
trickles), and each tenant's stream is correlated — most requests revisit a
small Zipf-weighted working set of items, the regime where the SVT gate
answers from history for free.  Supports come from
:func:`repro.data.generators.generate_dataset`, so the score shapes match
the paper's evaluation datasets.

Two drivers close the loop:

* :func:`run_batched` — submit-window/drain cycles through
  :class:`~repro.service.engine.SVTQueryService` (the throughput path),
  timing every drain for p50/p99 latency and recording batch occupancy;
* :func:`run_streaming` — the same requests served query-at-a-time through
  each session's streaming loop, the baseline the enforced service
  benchmark compares against.

Both record a :class:`LoadStats`; :func:`open_workload_sessions` gives each
driver identically-configured (and, with per-tenant derived seeds,
identically-seeded) sessions so the comparison is apples to apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.generators import generate_dataset
from repro.exceptions import InvalidParameterError, ReproError
from repro.rng import RngLike, derive_rng
from repro.service.engine import SVTQueryService
from repro.service.session import Session

__all__ = [
    "WorkloadSpec",
    "Workload",
    "LoadStats",
    "generate_workload",
    "generate_canary_workload",
    "open_workload_sessions",
    "run_batched",
    "run_streaming",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one closed-loop run.

    ``zipf_tenant`` skews request volume across tenants; ``zipf_item`` skews
    each tenant's working set toward the dataset head; ``repeat_prob`` is
    the chance a request revisits the tenant's working set instead of
    exploring a fresh uniform item (repeats are where the gate's
    answer-from-history trick pays).
    """

    tenants: int = 256
    requests: int = 20_000
    dataset: str = "Zipf"
    dataset_scale: float = 0.05
    zipf_tenant: float = 1.1
    zipf_item: float = 1.2
    repeat_prob: float = 0.9
    working_set: int = 8
    epsilon: float = 1.0
    threshold_factor: float = 0.6
    c: int = 3
    svt_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.tenants <= 0 or self.requests <= 0 or self.working_set <= 0:
            raise InvalidParameterError("tenants, requests, working_set must be > 0")
        if not 0.0 <= self.repeat_prob <= 1.0:
            raise InvalidParameterError("repeat_prob must be in [0, 1]")


@dataclass(frozen=True)
class Workload:
    """A generated request trace plus the dataset it runs against."""

    spec: WorkloadSpec
    tenants: np.ndarray  # (requests,) tenant index per request
    items: np.ndarray  # (requests,) item index per request
    supports: np.ndarray  # the dataset's support vector
    error_threshold: float

    @property
    def num_requests(self) -> int:
        return int(self.tenants.size)

    def tenant_name(self, index: int) -> str:
        return f"tenant-{int(index):04d}"


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    weights = np.arange(1, n + 1, dtype=float) ** (-float(exponent))
    return weights / weights.sum()


def generate_workload(spec: WorkloadSpec, rng: RngLike = 0) -> Workload:
    """Deterministically synthesize a request trace from *spec* and *rng*."""
    gen = derive_rng(rng, "service-workload")
    dataset = generate_dataset(
        spec.dataset, rng=derive_rng(rng, "workload-dataset"), scale=spec.dataset_scale
    )
    supports = dataset.supports.astype(float)
    n = supports.size

    tenant_p = _zipf_probabilities(spec.tenants, spec.zipf_tenant)
    tenants = gen.choice(spec.tenants, size=spec.requests, p=tenant_p)

    # Per-tenant working sets: Zipf-weighted draws from the item universe,
    # so hot tenants hammer the dataset head (correlated across tenants too).
    item_p = _zipf_probabilities(n, spec.zipf_item)
    working = gen.choice(n, size=(spec.tenants, spec.working_set), p=item_p)
    repeat = gen.random(spec.requests) < spec.repeat_prob
    slot = gen.integers(0, spec.working_set, size=spec.requests)
    explore = gen.integers(0, n, size=spec.requests)
    items = np.where(repeat, working[tenants, slot], explore)

    # T as a fraction of the head support: a tenant's first sight of a hot
    # item fires (estimate 0, error above T), after which the history mean
    # keeps most working-set errors below T — the answer-for-free regime.
    threshold = float(spec.threshold_factor * supports[0])
    return Workload(
        spec=spec,
        tenants=tenants.astype(np.int64),
        items=items.astype(np.int64),
        supports=supports,
        error_threshold=threshold,
    )


def generate_canary_workload(
    spec: WorkloadSpec,
    rng: RngLike = 0,
    canary_fraction: float = 0.1,
    sensitivity: float = 1.0,
    rule: str = "fire-high",
):
    """A Zipf trace with a planted canary mixture folded in.

    Plants the auditor's neighboring score pair at the support tail
    (:func:`repro.service.auditor.canary.plant_canaries`) and rewrites a
    *canary_fraction* slice of requests to query one of the planted items
    (secret bit per request).  This is the audit's ambient traffic shape as
    a first-class load-test mode (``repro load-test --workload canary``):
    the same drains carry ordinary working-set queries and
    threshold-straddling canaries, so batching/latency numbers reflect the
    continuously-audited service, not a separate lab setup.

    Returns ``(workload, plan)`` — the workload's supports include the
    planted tail pair.
    """
    # Imported lazily: the auditor package's driver imports this module.
    from repro.service.auditor.canary import plant_canaries

    if not 0.0 <= canary_fraction <= 1.0:
        raise InvalidParameterError("canary_fraction must be in [0, 1]")
    base = generate_workload(spec, rng=rng)
    planted, plan = plant_canaries(
        base.supports,
        threshold=base.error_threshold,
        sensitivity=sensitivity,
        epsilon=spec.epsilon,
        c=1,
        svt_fraction=spec.svt_fraction,
        rule=rule,
    )
    gen = derive_rng(rng, "canary-mixture")
    mask = gen.random(base.num_requests) < canary_fraction
    bits = gen.integers(0, 2, size=base.num_requests)
    items = np.where(
        mask, np.where(bits == 1, plan.item_hi, plan.item_lo), base.items
    )
    mixed = Workload(
        spec=spec,
        tenants=base.tenants,
        items=items.astype(np.int64),
        supports=planted,
        error_threshold=base.error_threshold,
    )
    return mixed, plan


def open_workload_sessions(
    service: SVTQueryService, workload: Workload, seed: RngLike = 0
) -> List[Session]:
    """Open one identically-configured session per tenant of *workload*.

    Session noise streams are derived per tenant from *seed*, so a batched
    service and an independent streaming harness opened with the same seed
    get bit-identical session randomness.
    """
    spec = workload.spec
    return [
        service.open_session(
            workload.tenant_name(t),
            epsilon=spec.epsilon,
            error_threshold=workload.error_threshold,
            c=spec.c,
            svt_fraction=spec.svt_fraction,
            rng=derive_rng(seed, "workload-session", t),
        )
        for t in range(spec.tenants)
    ]


@dataclass
class LoadStats:
    """Closed-loop measurements for one driver run."""

    requests: int
    answered: int
    rejected: int
    db_accesses: int
    history_rate: float
    duration_s: float
    requests_per_sec: float
    batches: int
    gate_calls: int
    mean_block_rows: float
    latency_p50_ms: float
    latency_p99_ms: float

    def as_record(self) -> dict:
        return {
            "requests": self.requests,
            "answered": self.answered,
            "rejected": self.rejected,
            "db_accesses": self.db_accesses,
            "history_rate": round(self.history_rate, 4),
            "duration_ms": round(self.duration_s * 1e3, 2),
            "requests_per_sec": round(self.requests_per_sec, 1),
            "batches": self.batches,
            "gate_calls": self.gate_calls,
            "mean_block_rows": round(self.mean_block_rows, 1),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
        }


def _stats(
    requests: int,
    answered: int,
    rejected: int,
    db_accesses: int,
    duration: float,
    batches: int,
    gate_calls: int,
    block_rows: List[int],
    latencies_ms: np.ndarray,
) -> LoadStats:
    history = answered - db_accesses
    return LoadStats(
        requests=requests,
        answered=answered,
        rejected=rejected,
        db_accesses=db_accesses,
        history_rate=history / answered if answered else 0.0,
        duration_s=duration,
        requests_per_sec=requests / duration if duration > 0 else float("inf"),
        batches=batches,
        gate_calls=gate_calls,
        mean_block_rows=float(np.mean(block_rows)) if block_rows else 0.0,
        latency_p50_ms=float(np.percentile(latencies_ms, 50)) if latencies_ms.size else 0.0,
        latency_p99_ms=float(np.percentile(latencies_ms, 99)) if latencies_ms.size else 0.0,
    )


def run_batched(
    service: SVTQueryService,
    workload: Workload,
    batch_size: int = 2048,
    sessions: Optional[List[Session]] = None,
    session_seed: RngLike = 0,
) -> LoadStats:
    """Drive the workload through submit-window/drain cycles.

    Each cycle submits up to *batch_size* requests (closed loop: the next
    window starts only when the previous drain returned) and every request's
    latency is the wall time from its submit to the end of its drain.
    """
    if batch_size <= 0:
        raise InvalidParameterError("batch_size must be > 0")
    if sessions is None:
        sessions = open_workload_sessions(service, workload, seed=session_seed)
    tenants, items = workload.tenants, workload.items
    total = workload.num_requests
    answered = rejected = db_accesses = 0
    batches = 0
    block_rows: List[int] = []
    latencies: List[np.ndarray] = []
    submit_array = service.batcher.submit_array
    start = time.perf_counter()
    for lo in range(0, total, batch_size):
        hi = min(lo + batch_size, total)
        window_start = time.perf_counter()
        # One submit per tenant: group the window's requests by tenant
        # (stable, so each tenant's stream order is preserved) and hand each
        # run to the batcher's array lane.
        order = np.argsort(tenants[lo:hi], kind="stable")
        sorted_tenants = tenants[lo:hi][order]
        sorted_items = items[lo:hi][order]
        bounds = np.flatnonzero(np.diff(sorted_tenants)) + 1
        starts = [0, *bounds.tolist(), sorted_tenants.size]
        for a, b in zip(starts[:-1], starts[1:]):
            submit_array(sessions[sorted_tenants[a]], sorted_items[a:b])
        result = service.drain()
        elapsed_ms = (time.perf_counter() - window_start) * 1e3
        batches += 1
        block_rows.extend(result.block_rows)
        answered += int(result.ok.sum())
        rejected += len(result) - int(result.ok.sum())
        db_accesses += int((result.ok & ~result.from_history).sum())
        latencies.append(np.full(len(result), elapsed_ms))
    duration = time.perf_counter() - start
    return _stats(
        total, answered, rejected, db_accesses, duration,
        batches, len(block_rows), block_rows,
        np.concatenate(latencies) if latencies else np.empty(0),
    )


def run_streaming(
    service: SVTQueryService,
    workload: Workload,
    sessions: Optional[List[Session]] = None,
    session_seed: RngLike = 0,
) -> LoadStats:
    """The baseline: the same trace served query-at-a-time per session."""
    if sessions is None:
        sessions = open_workload_sessions(service, workload, seed=session_seed)
    tenants, items = workload.tenants, workload.items
    total = workload.num_requests
    answered = rejected = db_accesses = 0
    latencies = np.empty(total)
    start = time.perf_counter()
    for k in range(total):
        session = sessions[tenants[k]]
        t0 = time.perf_counter()
        try:
            served = session.answer(int(items[k]))
        except ReproError:
            rejected += 1
        else:
            answered += 1
            db_accesses += not served.from_history
        latencies[k] = (time.perf_counter() - t0) * 1e3
    duration = time.perf_counter() - start
    # Streaming gates one row per answered request (rejected requests raise
    # before any gate draw); occupancy is 1 by construction.
    return _stats(
        total, answered, rejected, db_accesses, duration,
        batches=answered, gate_calls=answered,
        block_rows=[1] if answered else [],
        latencies_ms=latencies,
    )
