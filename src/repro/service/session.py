"""One tenant's interactive session: gate state, ledger, and estimator.

A session is the unit of privacy accounting in the service.  It owns

* the **corrected Section-3.4 SVT gate**: one threshold-noise draw ``rho``
  at open (scale ``Delta/eps1`` of the gate's internal split), a firing
  count against the cutoff ``c``, and the noise scales for the per-query
  test ``|q~ - q(D)| + nu >= T + rho`` — noise *outside* the absolute value,
  the fix for the threshold-leaking check of [12, 16];
* a :class:`~repro.accounting.budget.BudgetLedger` charged ``eps_svt`` up
  front and ``eps_answer`` per database access, so the whole session costs
  ``eps_svt + c * eps_answer`` no matter how many queries are asked;
* the answer-history estimator whose derived answers are free (functions of
  released data), kept both as the literal ``(query, answer)`` history list
  (the estimator-callback contract) and as an O(1) last-release/running-mean
  index used by the default estimator.

The streaming entry point :meth:`Session.answer` serves one query end to
end; the ``resolve``/``estimate``/``next_index``/``commit_release`` hooks
expose the same steps separately so
:class:`~repro.service.engine.ServiceEngine` can run the noise-and-compare
middle of many sessions as one vectorized
:func:`~repro.engine.gate.gate_block`.  Both paths mutate the same state in
the same order, which is what makes per-session-stream batching bit-identical
to this loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.accounting.budget import BudgetLedger
from repro.core.allocation import BudgetAllocation
from repro.data.scores import ScoreSource
from repro.exceptions import InvalidParameterError, PrivacyError
from repro.queries.base import Query
from repro.rng import RngLike, ensure_rng
from repro.service.audit import AuditLog

__all__ = ["OnlineAnswer", "Session", "EstimatorFn", "EXHAUSTED_MESSAGE"]

#: Rejection text for queries after the c-th firing — shared by the
#: streaming raise and the batched engine's per-row errors so both paths
#: report the identical condition identically.
EXHAUSTED_MESSAGE = (
    "interactive session exhausted: c database accesses used; "
    "further queries would exceed the privacy budget"
)

#: Derives an estimate for a query from the answer history.  Receives the
#: query and the history list of (query, answer) pairs; returns the estimate.
EstimatorFn = Callable[[object, List[tuple]], float]

#: A submitted query: a :class:`~repro.queries.base.Query` evaluated on the
#: backing dataset, or a plain item index into the service's support vector.
QueryLike = Union[Query, int]


@dataclass(frozen=True)
class OnlineAnswer:
    """One served answer and how it was produced.

    ``from_history`` is True when the SVT gate said the derived answer was
    good enough (no budget spent on this query beyond the shared SVT charge).
    """

    value: float
    from_history: bool
    query_index: int


class Session:
    """Answer one tenant's adaptive query stream under a fixed total budget.

    Parameters
    ----------
    dataset:
        The private dataset, passed to ``query.evaluate``.  When *supports*
        is given, plain integer queries index that vector directly (the
        service fast path).
    epsilon:
        Total privacy budget for the whole interactive session.
    error_threshold:
        The T of the SVT test on the derived answer's error: estimates with
        (noisy) error below T are served from history.
    c:
        Maximum number of database accesses (SVT positives).
    svt_fraction:
        Fraction of *epsilon* funding the SVT gate; the rest is split evenly
        across the c Laplace answers.
    monotonic:
        Promise that the error queries form a monotonic family (Section
        4.3), dropping the gate's query-noise scale from ``2c*Delta/eps2``
        to ``c*Delta/eps2``.  The default error query ``|q~ - q(D)|`` is
        generally *not* monotonic even for monotonic q — leave this False
        unless the deployment proves otherwise.
    """

    def __init__(
        self,
        dataset,
        epsilon: float,
        error_threshold: float,
        c: int,
        svt_fraction: float = 0.5,
        sensitivity: float = 1.0,
        monotonic: bool = False,
        estimator: Optional[EstimatorFn] = None,
        rng: RngLike = None,
        supports: Union[np.ndarray, ScoreSource, None] = None,
        tenant: str = "online",
        session_id: Optional[str] = None,
        audit: Optional[AuditLog] = None,
        ttl_s: Optional[float] = None,
        opened_at: Optional[float] = None,
    ) -> None:
        if not 0.0 < svt_fraction < 1.0:
            raise InvalidParameterError("svt_fraction must be in (0, 1)")
        if error_threshold < 0.0:
            raise InvalidParameterError("error_threshold must be >= 0")
        sensitivity = float(sensitivity)
        if sensitivity <= 0.0 or not np.isfinite(sensitivity):
            # Zero/negative Delta would zero every noise scale and release
            # exact answers — the validation StandardSVT used to provide.
            raise InvalidParameterError(
                f"sensitivity must be finite and > 0, got {sensitivity!r}"
            )
        if ttl_s is not None and float(ttl_s) <= 0.0:
            raise InvalidParameterError("ttl_s must be > 0 (or None for no expiry)")
        self._dataset = dataset
        # The item-query backend: a dense support vector, or a lazy
        # ScoreSource (the 2.3M-item AOL regime — truths come from
        # block/take gathers, never a resident dense copy).
        if supports is None:
            self._supports: Optional[np.ndarray] = None
            self._source: Optional[ScoreSource] = None
        elif isinstance(supports, ScoreSource):
            self._supports = None
            self._source = supports
        else:
            self._supports = np.asarray(supports, dtype=float)
            self._source = None
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.opened_at = None if opened_at is None else float(opened_at)
        self._closed = False
        self.tenant = str(tenant)
        self.session_id = str(session_id) if session_id is not None else self.tenant
        self.audit = audit if audit is not None else AuditLog()
        self._rng = ensure_rng(rng)
        self._estimator = estimator
        self._sensitivity = float(sensitivity)
        self.c = int(c)
        self.epsilon = float(epsilon)
        self.svt_fraction = float(svt_fraction)
        self.monotonic = bool(monotonic)
        self.threshold = float(error_threshold)

        self.ledger = BudgetLedger.with_total(epsilon)
        eps_svt = self.epsilon * self.svt_fraction
        eps_answers = self.epsilon - eps_svt
        # The error query r = |q~ - q(D)| has the same sensitivity as q
        # (|r(D) - r(D')| <= |q(D) - q(D')| by the reverse triangle
        # inequality).  The gate's internal eps1:eps2 split is the Section
        # 4.2 optimum.
        allocation = BudgetAllocation.from_ratio(
            eps_svt, self.c, ratio="optimal", monotonic=self.monotonic
        )
        self.allocation = allocation
        factor = self.c if self.monotonic else 2 * self.c
        self.rho_scale = self._sensitivity / allocation.eps1
        self.nu_scale = factor * self._sensitivity / allocation.eps2
        self._eps_per_answer = eps_answers / self.c
        self.answer_scale = self._sensitivity / self._eps_per_answer
        # Line 1 of Alg. 7: perturb the threshold once for the whole session.
        self.rho = float(self._rng.laplace(scale=self.rho_scale))
        self._count = 0
        self._halted = False
        self._served = 0

        self.audit.record(self.session_id, "open", note=f"tenant {self.tenant}")
        self.ledger.charge("svt-gate", eps_svt, note="threshold test for all queries")
        self.audit.record(
            self.session_id, "spend", mechanism="svt-gate", epsilon=eps_svt,
            note="threshold test for all queries",
        )

        self.history: List[tuple] = []
        # O(1) default-estimator state: last release per query key plus the
        # running sum/count of all releases.  Left-to-right accumulation
        # makes the mean bit-identical to summing the history list afresh.
        self._last_release: dict = {}
        self._release_sum = 0.0

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True when the c database accesses are used up — the session is over."""
        return self._halted

    @property
    def database_accesses(self) -> int:
        return self._count

    @property
    def served(self) -> int:
        """Queries answered so far (history or database)."""
        return self._served

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def _backend(self):
        """The shared item backend (dense vector or lazy source), if any."""
        return self._source if self._source is not None else self._supports

    @property
    def _backend_size(self) -> int:
        if self._source is not None:
            return int(self._source.n)
        return 0 if self._supports is None else int(self._supports.size)

    def expired(self, now: float) -> bool:
        """Whether the session's TTL has elapsed at clock time *now*."""
        return (
            self.ttl_s is not None
            and self.opened_at is not None
            and float(now) - self.opened_at >= self.ttl_s
        )

    def close(self, note: str = "") -> float:
        """End the session: release unspent budget, audit the release.

        Returns the released epsilon (0 on a second close).  The ledger's
        budget is shut — every further charge raises — and the session
        rejects queries like an exhausted one.
        """
        if self._closed:
            return 0.0
        self._closed = True
        self._halted = True
        amount = self.ledger.release_remaining(note=note or "session closed")
        self.audit.record(
            self.session_id, "evict", mechanism="budget-release",
            epsilon=amount, note=note or "session closed",
        )
        return amount

    @property
    def cohort_key(self) -> tuple:
        """Sessions sharing this key run as one vectorized engine cohort."""
        return (
            self.epsilon,
            self.threshold,
            self.c,
            self.svt_fraction,
            self._sensitivity,
            self.monotonic,
        )

    # ------------------------------------------------------------------
    # Query resolution and estimation.
    # ------------------------------------------------------------------
    def resolve(self, query: QueryLike) -> Tuple[object, float]:
        """``(key, true_answer)`` for one submitted query.

        Raises :class:`PrivacyError` for over-sensitive queries and
        :class:`InvalidParameterError` for queries the backend cannot serve.
        """
        if isinstance(query, Query):
            if query.sensitivity > self._sensitivity:
                raise PrivacyError(
                    f"query sensitivity {query.sensitivity} exceeds the session "
                    f"bound {self._sensitivity}"
                )
            return repr(query), float(query.evaluate(self._dataset))
        if self._backend is not None and isinstance(query, (int, np.integer)):
            item = int(query)
            size = self._backend_size
            if not 0 <= item < size:
                raise InvalidParameterError(
                    f"item {item} outside the backend's {size} items"
                )
            if self._source is not None:
                return item, float(self._source.take([item])[0])
            return item, float(self._supports[item])
        raise InvalidParameterError("answer() expects a Query instance")

    def estimate(self, key, query: QueryLike) -> float:
        """The derived (free) answer for *query* from released history."""
        if self._estimator is not None:
            return float(self._estimator(query, self.history))
        last = self._last_release.get(key)
        if last is not None:
            return last
        if self.history:
            return self._release_sum / len(self.history)
        return 0.0

    # ------------------------------------------------------------------
    # Batch hooks (see repro.service.engine).
    # ------------------------------------------------------------------
    def check_open(self) -> None:
        if self._halted:
            raise PrivacyError(EXHAUSTED_MESSAGE)

    def next_index(self) -> int:
        index = self._served
        self._served += 1
        return index

    def commit_release(
        self, key, query: QueryLike, truth: float, noisy: float, index: int
    ) -> None:
        """Record one gate firing: budget charge, audit trail, history update."""
        self._count += 1
        if self._count >= self.c:
            self._halted = True
        self.ledger.charge(
            "laplace-answer", self._eps_per_answer, note=f"query #{index}"
        )
        self.audit.record(
            self.session_id, "spend", mechanism="laplace-answer",
            epsilon=self._eps_per_answer, note=f"query #{index}",
        )
        self.audit.record(
            self.session_id, "release", mechanism="laplace-answer", value=noisy,
        )
        self.history.append((query, noisy))
        self._last_release[key] = noisy
        self._release_sum += noisy
        if self._halted:
            self.audit.record(self.session_id, "halt", note=f"c={self.c} firings")

    # ------------------------------------------------------------------
    # The streaming path (one query end to end).
    # ------------------------------------------------------------------
    def answer(self, query: QueryLike) -> OnlineAnswer:
        """Serve one query: history if the SVT gate allows, else the database."""
        self.check_open()
        key, truth = self.resolve(query)
        estimate = self.estimate(key, query)
        # Corrected Section-3.4 check: the error |q~ - q(D)| is the SVT query.
        error = abs(estimate - truth)
        nu = float(self._rng.laplace(scale=self.nu_scale))
        index = self.next_index()
        if error + nu < self.threshold + self.rho:
            return OnlineAnswer(value=estimate, from_history=True, query_index=index)
        noisy = truth + float(self._rng.laplace(scale=self.answer_scale))
        self.commit_release(key, query, truth, noisy, index)
        return OnlineAnswer(value=noisy, from_history=False, query_index=index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session({self.session_id!r}, eps={self.epsilon:g}, T={self.threshold:g}, "
            f"c={self.c}, accesses={self._count}, served={self._served}"
            f"{', exhausted' if self._halted else ''})"
        )
