"""One tenant's interactive session: gate state, ledger, and estimator.

A session is the unit of privacy accounting in the service.  It owns

* the **corrected Section-3.4 SVT gate**: one threshold-noise draw ``rho``
  at open (scale ``Delta/eps1`` of the gate's internal split), a firing
  count against the cutoff ``c``, and the noise scales for the per-query
  test ``|q~ - q(D)| + nu >= T + rho`` — noise *outside* the absolute value,
  the fix for the threshold-leaking check of [12, 16];
* a :class:`~repro.accounting.budget.BudgetLedger` charged ``eps_svt`` up
  front and ``eps_answer`` per database access, so the whole session costs
  ``eps_svt + c * eps_answer`` no matter how many queries are asked;
* the answer-history estimator whose derived answers are free (functions of
  released data), kept both as the literal ``(query, answer)`` history list
  (the estimator-callback contract) and as an O(1) last-release/running-mean
  index used by the default estimator.

The streaming entry point :meth:`Session.answer` serves one query end to
end; the ``resolve``/``estimate``/``next_index``/``commit_release`` hooks
expose the same steps separately so
:class:`~repro.service.engine.ServiceEngine` can run the noise-and-compare
middle of many sessions as one vectorized
:func:`~repro.engine.gate.gate_block`.  Both paths mutate the same state in
the same order, which is what makes per-session-stream batching bit-identical
to this loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.accounting.budget import BudgetLedger, BudgetPool
from repro.core.allocation import BudgetAllocation
from repro.data.scores import ScoreSource
from repro.exceptions import InvalidParameterError, PrivacyError, ReproError
from repro.queries.base import Query
from repro.rng import RngLike, ensure_rng
from repro.service.audit import AuditLog

__all__ = [
    "OnlineAnswer",
    "LaneAnswer",
    "Session",
    "EstimatorFn",
    "EXHAUSTED_MESSAGE",
    "DEFAULT_LANE",
    "GRID_MODES",
    "encode_rng_state",
    "decode_rng_state",
]

#: The name under which a session's own (constructor) budget appears in its
#: lane grid; :meth:`Session.add_lane` may not reuse it.
DEFAULT_LANE = "default"

#: Stream modes of :meth:`Session.answer_grid` — mirroring the service
#: engine's shared/per-session split, per budget lane instead of per tenant.
GRID_MODES = ("shared", "per-lane")

#: Rejection text for queries after the c-th firing — shared by the
#: streaming raise and the batched engine's per-row errors so both paths
#: report the identical condition identically.
EXHAUSTED_MESSAGE = (
    "interactive session exhausted: c database accesses used; "
    "further queries would exceed the privacy budget"
)

#: Derives an estimate for a query from the answer history.  Receives the
#: query and the history list of (query, answer) pairs; returns the estimate.
EstimatorFn = Callable[[object, List[tuple]], float]

#: A submitted query: a :class:`~repro.queries.base.Query` evaluated on the
#: backing dataset, or a plain item index into the service's support vector.
QueryLike = Union[Query, int]


def _jsonify_rng(obj):
    if isinstance(obj, dict):
        return {key: _jsonify_rng(value) for key, value in obj.items()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.integer):
        return int(obj)
    return obj


def _unjsonify_rng(obj):
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.asarray(obj["__ndarray__"], dtype=obj["dtype"])
        return {key: _unjsonify_rng(value) for key, value in obj.items()}
    return obj


def encode_rng_state(rng: np.random.Generator) -> dict:
    """A generator's full bit-generator state as a JSON-safe dict.

    Python ints are arbitrary precision and JSON floats round-trip exactly,
    so encode → decode resumes the stream *bit-identically* — the property
    the durable store's recovery contract rests on.
    """
    return _jsonify_rng(rng.bit_generator.state)


def decode_rng_state(state: dict) -> np.random.Generator:
    """Rebuild a generator resuming exactly where :func:`encode_rng_state`
    captured it (the bit-generator class is part of the state)."""
    try:
        bitgen = getattr(np.random, str(state["bit_generator"]))()
    except (KeyError, AttributeError, TypeError) as exc:
        raise InvalidParameterError(f"unusable rng state: {exc}") from None
    bitgen.state = _unjsonify_rng(state)
    return np.random.Generator(bitgen)


@dataclass(frozen=True)
class OnlineAnswer:
    """One served answer and how it was produced.

    ``from_history`` is True when the SVT gate said the derived answer was
    good enough (no budget spent on this query beyond the shared SVT charge).
    """

    value: float
    from_history: bool
    query_index: int


@dataclass(frozen=True)
class LaneAnswer:
    """One lane's outcome of a grid-served query.

    ``answer`` is None exactly when ``error`` says why the lane could not
    serve (exhausted, over-sensitive query, unknown item) — the same typed
    conditions the batched engine reports per row.
    """

    lane: str
    answer: Optional[OnlineAnswer]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.answer is not None


class Session:
    """Answer one tenant's adaptive query stream under a fixed total budget.

    Parameters
    ----------
    dataset:
        The private dataset, passed to ``query.evaluate``.  When *supports*
        is given, plain integer queries index that vector directly (the
        service fast path).
    epsilon:
        Total privacy budget for the whole interactive session.
    error_threshold:
        The T of the SVT test on the derived answer's error: estimates with
        (noisy) error below T are served from history.
    c:
        Maximum number of database accesses (SVT positives).
    svt_fraction:
        Fraction of *epsilon* funding the SVT gate; the rest is split evenly
        across the c Laplace answers.
    monotonic:
        Promise that the error queries form a monotonic family (Section
        4.3), dropping the gate's query-noise scale from ``2c*Delta/eps2``
        to ``c*Delta/eps2``.  The default error query ``|q~ - q(D)|`` is
        generally *not* monotonic even for monotonic q — leave this False
        unless the deployment proves otherwise.
    """

    def __init__(
        self,
        dataset,
        epsilon: float,
        error_threshold: float,
        c: int,
        svt_fraction: float = 0.5,
        sensitivity: float = 1.0,
        monotonic: bool = False,
        estimator: Optional[EstimatorFn] = None,
        rng: RngLike = None,
        supports: Union[np.ndarray, ScoreSource, None] = None,
        tenant: str = "online",
        session_id: Optional[str] = None,
        audit: Optional[AuditLog] = None,
        ttl_s: Optional[float] = None,
        opened_at: Optional[float] = None,
        pool: Optional[BudgetPool] = None,
    ) -> None:
        if not 0.0 < svt_fraction < 1.0:
            raise InvalidParameterError("svt_fraction must be in (0, 1)")
        if error_threshold < 0.0:
            raise InvalidParameterError("error_threshold must be >= 0")
        sensitivity = float(sensitivity)
        if sensitivity <= 0.0 or not np.isfinite(sensitivity):
            # Zero/negative Delta would zero every noise scale and release
            # exact answers — the validation StandardSVT used to provide.
            raise InvalidParameterError(
                f"sensitivity must be finite and > 0, got {sensitivity!r}"
            )
        if ttl_s is not None and float(ttl_s) <= 0.0:
            raise InvalidParameterError("ttl_s must be > 0 (or None for no expiry)")
        self._dataset = dataset
        # The item-query backend: a dense support vector, or a lazy
        # ScoreSource (the 2.3M-item AOL regime — truths come from
        # block/take gathers, never a resident dense copy).
        if supports is None:
            self._supports: Optional[np.ndarray] = None
            self._source: Optional[ScoreSource] = None
        elif isinstance(supports, ScoreSource):
            self._supports = None
            self._source = supports
        else:
            self._supports = np.asarray(supports, dtype=float)
            self._source = None
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.opened_at = None if opened_at is None else float(opened_at)
        self._closed = False
        self.tenant = str(tenant)
        self.session_id = str(session_id) if session_id is not None else self.tenant
        self.audit = audit if audit is not None else AuditLog()
        self._rng = ensure_rng(rng)
        self._estimator = estimator
        self._sensitivity = float(sensitivity)
        self.c = int(c)
        self.epsilon = float(epsilon)
        self.svt_fraction = float(svt_fraction)
        self.monotonic = bool(monotonic)
        self.threshold = float(error_threshold)

        # Multi-budget support: this session's own budget is lane
        # ``DEFAULT_LANE``; further (epsilon, T, c) lanes attach via
        # :meth:`add_lane`.  When a BudgetPool is given, every lane's whole
        # budget — this one included — is drawn from it up front and
        # refunded on close, so the pool bounds the tenant's total exposure.
        self._lanes: Dict[str, "Session"] = {}
        self._pool = pool

        self.ledger = BudgetLedger.with_total(epsilon)
        eps_svt = self.epsilon * self.svt_fraction
        eps_answers = self.epsilon - eps_svt
        # The error query r = |q~ - q(D)| has the same sensitivity as q
        # (|r(D) - r(D')| <= |q(D) - q(D')| by the reverse triangle
        # inequality).  The gate's internal eps1:eps2 split is the Section
        # 4.2 optimum.
        allocation = BudgetAllocation.from_ratio(
            eps_svt, self.c, ratio="optimal", monotonic=self.monotonic
        )
        self.allocation = allocation
        factor = self.c if self.monotonic else 2 * self.c
        self.rho_scale = self._sensitivity / allocation.eps1
        self.nu_scale = factor * self._sensitivity / allocation.eps2
        self._eps_per_answer = eps_answers / self.c
        self.answer_scale = self._sensitivity / self._eps_per_answer
        # Draw from the pool only now, after every validation that can
        # reject this session has passed — a failed constructor must not
        # leak epsilon out of the tenant's shared allowance.
        if pool is not None:
            pool.draw(self.epsilon)
        # Line 1 of Alg. 7: perturb the threshold once for the whole session.
        self.rho = float(self._rng.laplace(scale=self.rho_scale))
        self._count = 0
        self._halted = False
        self._served = 0
        #: Injectable gate fault (see :data:`repro.engine.gate.GATE_FAULTS`)
        #: — the empirical auditor's test-only knob.  Deliberately NOT a
        #: constructor parameter and NOT part of the durable config_state:
        #: the manager stamps it after construction, so the persisted
        #: session schema (and every recovery fingerprint) is unchanged.
        self.gate_fault: Optional[str] = None

        self.audit.record(self.session_id, "open", note=f"tenant {self.tenant}")
        self.ledger.charge("svt-gate", eps_svt, note="threshold test for all queries")
        self.audit.record(
            self.session_id, "spend", mechanism="svt-gate", epsilon=eps_svt,
            note="threshold test for all queries",
        )

        self.history: List[tuple] = []
        # O(1) default-estimator state: last release per query key plus the
        # running sum/count of all releases.  Left-to-right accumulation
        # makes the mean bit-identical to summing the history list afresh.
        self._last_release: dict = {}
        self._release_sum = 0.0

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True when the c database accesses are used up — the session is over."""
        return self._halted

    @property
    def database_accesses(self) -> int:
        return self._count

    @property
    def served(self) -> int:
        """Queries answered so far (history or database)."""
        return self._served

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def _backend(self):
        """The shared item backend (dense vector or lazy source), if any."""
        return self._source if self._source is not None else self._supports

    @property
    def _backend_size(self) -> int:
        if self._source is not None:
            return int(self._source.n)
        return 0 if self._supports is None else int(self._supports.size)

    def expired(self, now: float) -> bool:
        """Whether the session's TTL has elapsed at clock time *now*."""
        return (
            self.ttl_s is not None
            and self.opened_at is not None
            and float(now) - self.opened_at >= self.ttl_s
        )

    def close(self, note: str = "") -> float:
        """End the session: release unspent budget, audit the release.

        Returns the released epsilon (0 on a second close), summed over this
        session *and* its named lanes — closing a tenant closes every budget
        it holds, each lane writing its own terminal ``evict`` record and
        refunding its remainder to the shared :class:`BudgetPool` (if any).
        The ledger's budget is shut — every further charge raises — and the
        session rejects queries like an exhausted one.
        """
        total = 0.0
        for lane in self._lanes.values():
            total += lane.close(note=note)
        if self._closed:
            return total
        self._closed = True
        self._halted = True
        amount = self.ledger.release_remaining(note=note or "session closed")
        self.audit.record(
            self.session_id, "evict", mechanism="budget-release",
            epsilon=amount, note=note or "session closed",
        )
        if self._pool is not None and amount > 0.0:
            self._pool.refund(amount)
        return total + amount

    # ------------------------------------------------------------------
    # Durable-store hooks (see repro.service.store).
    # ------------------------------------------------------------------
    def config_state(self) -> dict:
        """The immutable constructor arguments, as a JSON-safe dict.

        Together with :meth:`snapshot_state` this is everything the durable
        store needs to rebuild the session exactly; sessions carrying a
        custom estimator callback cannot be serialized and are refused.
        """
        if self._estimator is not None:
            raise InvalidParameterError(
                f"session {self.session_id!r} has a custom estimator callback; "
                "callables cannot be persisted to a durable store"
            )
        return {
            "epsilon": self.epsilon,
            "error_threshold": self.threshold,
            "c": self.c,
            "svt_fraction": self.svt_fraction,
            "sensitivity": self._sensitivity,
            "monotonic": self.monotonic,
            "ttl_s": self.ttl_s,
        }

    def snapshot_state(self) -> dict:
        """Every mutable field, as a JSON-safe dict (JSON floats round-trip
        exactly, so a restored session is *bit-identical*, rng stream
        included).  History entries are stored as ``[key, value]`` — for the
        service's item queries the key *is* the query; ``Query`` objects
        collapse to their ``repr`` key, which is all the default estimator
        ever reads."""
        return {
            "rho": self.rho,
            "count": self._count,
            "served": self._served,
            "halted": self._halted,
            "closed": self._closed,
            "released": self.ledger.released,
            "entries": [[e.mechanism, e.epsilon, e.note] for e in self.ledger],
            "history": [
                [
                    int(query) if isinstance(query, (int, np.integer)) else repr(query),
                    float(value),
                ]
                for query, value in self.history
            ],
            "rng": encode_rng_state(self._rng),
        }

    @classmethod
    def restored(
        cls,
        dataset,
        supports,
        config: dict,
        state: dict,
        *,
        tenant: str,
        session_id: str,
        audit: AuditLog,
        pool: Optional[BudgetPool] = None,
        opened_at: Optional[float] = None,
    ) -> "Session":
        """Rebuild a session from :meth:`config_state` + :meth:`snapshot_state`.

        The ordinary constructor has open-time side effects that must *not*
        replay during recovery — it draws rho from the stream, charges the
        gate, draws from the pool, and appends audit records.  This path
        builds the session against throwaway audit/rng objects, then
        overwrites every dynamic field with the persisted values: the ledger
        is re-charged entry by entry (left-to-right float accumulation makes
        ``spent`` bit-identical to the live run), the rng stream resumes
        from its serialized bit-generator state, and the shared audit log —
        which already holds the session's records — is attached untouched.
        TTLs re-arm from *opened_at* (the recovery clock): monotonic open
        times don't survive a reboot, so an expiring session gets a fresh
        lease rather than an instant eviction.
        """
        session = cls(
            dataset,
            epsilon=config["epsilon"],
            error_threshold=config["error_threshold"],
            c=config["c"],
            svt_fraction=config["svt_fraction"],
            sensitivity=config["sensitivity"],
            monotonic=config["monotonic"],
            rng=np.random.default_rng(0),
            supports=supports,
            tenant=tenant,
            session_id=session_id,
            audit=AuditLog(),  # swallow the constructor's open/spend records
            ttl_s=config.get("ttl_s"),
            opened_at=opened_at,
        )
        session.audit = audit
        session._pool = pool  # already accounted in the pool's drawn total
        session.rho = float(state["rho"])
        session._count = int(state["count"])
        session._served = int(state["served"])
        session._halted = bool(state["halted"])
        session._closed = bool(state["closed"])
        ledger = BudgetLedger.with_total(config["epsilon"])
        for mechanism, epsilon, note in state["entries"]:
            ledger.charge(mechanism, epsilon, note=note)
        if state["closed"]:
            ledger.release_remaining()
        else:
            ledger.released = float(state["released"])
        session.ledger = ledger
        session.history = []
        session._last_release = {}
        session._release_sum = 0.0
        for key, value in state["history"]:
            key = int(key) if isinstance(key, int) else str(key)
            value = float(value)
            session.history.append((key, value))
            session._last_release[key] = value
            session._release_sum += value
        session._rng = decode_rng_state(state["rng"])
        return session

    def adopt_lane(self, name: str, lane: "Session") -> None:
        """Attach an already-built lane (the recovery path of add_lane)."""
        self._lanes[str(name)] = lane

    @property
    def cohort_key(self) -> tuple:
        """Sessions sharing this key run as one vectorized engine cohort."""
        return (
            self.epsilon,
            self.threshold,
            self.c,
            self.svt_fraction,
            self._sensitivity,
            self.monotonic,
        )

    # ------------------------------------------------------------------
    # Named budget lanes (multi-budget tenants).
    # ------------------------------------------------------------------
    @property
    def lanes(self) -> Dict[str, "Session"]:
        """The named budget lanes, in attach order (a copy — don't mutate)."""
        return dict(self._lanes)

    @property
    def pool(self) -> Optional[BudgetPool]:
        return self._pool

    def grid_members(self) -> List[Tuple[str, "Session"]]:
        """``(name, lane)`` pairs served by :meth:`answer_grid`, in order:
        this session's own budget first (as ``DEFAULT_LANE``), then the
        named lanes in attach order."""
        return [(DEFAULT_LANE, self), *self._lanes.items()]

    def lane(self, name: Optional[str]) -> "Session":
        """Look up one budget lane; ``None``/``"default"`` is the session itself."""
        if name is None or name == DEFAULT_LANE:
            return self
        try:
            return self._lanes[str(name)]
        except KeyError:
            raise InvalidParameterError(
                f"session {self.session_id!r} has no lane {name!r}; "
                f"known: {[DEFAULT_LANE, *self._lanes]}"
            ) from None

    def add_lane(
        self,
        name: str,
        *,
        epsilon: float,
        error_threshold: float,
        c: int,
        svt_fraction: float = 0.5,
        sensitivity: Optional[float] = None,
        monotonic: bool = False,
        estimator: Optional[EstimatorFn] = None,
        rng: RngLike = None,
    ) -> "Session":
        """Attach a named ``(epsilon, T, c)`` budget lane to this tenant.

        The lane is a full :class:`Session` over the same backend, tenant,
        and audit log — its own gate (fresh rho), ledger, and history — with
        session id ``{parent_id}/{name}``.  Because a lane *is* a session it
        rides every existing path unchanged: the batcher queues against it,
        the engine cohorts it with identically-configured sessions, and
        :func:`~repro.service.audit.verify_audit` replays it like any other.
        What the parent adds on top is :meth:`answer_grid` — one query gated
        under every lane at once through the epsilon-grid kernel — and, when
        a :class:`BudgetPool` is attached, the guarantee that all lanes draw
        from one bounded allowance.

        ``rng=None`` draws fresh entropy; pass a seed/Generator (as the
        :class:`~repro.service.manager.SessionManager` does) to pin the
        lane's stream.  The parent's stream is never consumed.
        """
        name = str(name)
        if self._closed:
            raise PrivacyError(f"cannot add a lane to closed session {self.session_id!r}")
        if name == DEFAULT_LANE:
            raise InvalidParameterError(
                f"lane name {DEFAULT_LANE!r} is reserved for the session's own budget"
            )
        if name in self._lanes:
            raise InvalidParameterError(
                f"session {self.session_id!r} already has a lane {name!r}"
            )
        lane = Session(
            self._dataset,
            epsilon=epsilon,
            error_threshold=error_threshold,
            c=c,
            svt_fraction=svt_fraction,
            sensitivity=self._sensitivity if sensitivity is None else sensitivity,
            monotonic=monotonic,
            estimator=estimator,
            rng=rng,
            supports=self._backend,
            tenant=self.tenant,
            session_id=f"{self.session_id}/{name}",
            audit=self.audit,
            ttl_s=self.ttl_s,
            opened_at=self.opened_at,
            pool=self._pool,
        )
        lane.gate_fault = self.gate_fault
        self._lanes[name] = lane
        return lane

    def answer_grid(
        self, query: QueryLike, mode: str = "shared", rng: RngLike = None
    ) -> Dict[str, LaneAnswer]:
        """Serve one query under EVERY budget lane at once.

        The multi-budget analog of :meth:`answer`: each lane gates the query
        against its own threshold, rho, and history-derived estimate, and
        each firing lane charges its own ledger — one call, many budgets.
        The vectorized compare is :func:`repro.engine.gate.gate_grid`:

        * ``mode="shared"`` — one unit Laplace draw (from *rng*, defaulting
          to this session's stream) rescaled per lane, the epsilon-grid
          noise-sharing trick.  Lane outcomes are correlated, each lane's
          marginal distribution exact;
        * ``mode="per-lane"`` — every lane draws from its own stream in
          streaming order, **bit-identical** to asking the same query of
          independent single-budget sessions (the contract
          ``tests/service/test_lanes.py`` enforces).

        Lanes that cannot serve (exhausted, resolve failure) report a typed
        per-lane error; the other lanes proceed.  Returns ``{lane name:``
        :class:`LaneAnswer` ``}`` covering every lane.
        """
        from repro.engine.gate import gate_grid

        if mode not in GRID_MODES:
            raise InvalidParameterError(
                f"unknown grid mode {mode!r}; known: {GRID_MODES}"
            )
        answers: Dict[str, LaneAnswer] = {}
        live: List[Tuple[str, "Session", object, float, float]] = []
        for name, lane in self.grid_members():
            if lane._halted:
                answers[name] = LaneAnswer(lane=name, answer=None, error=EXHAUSTED_MESSAGE)
                continue
            try:
                key, truth = lane.resolve(query)
            except ReproError as exc:
                answers[name] = LaneAnswer(lane=name, answer=None, error=str(exc))
                continue
            live.append((name, lane, key, truth, lane.estimate(key, query)))
        if not live:
            return answers

        count = len(live)
        truths = np.fromiter((entry[3] for entry in live), dtype=float, count=count)
        estimates = np.fromiter((entry[4] for entry in live), dtype=float, count=count)
        if mode == "per-lane":
            gen: Union[List[np.random.Generator], np.random.Generator] = [
                entry[1]._rng for entry in live
            ]
        else:
            gen = ensure_rng(rng) if rng is not None else self._rng
        grid = gate_grid(
            np.abs(estimates - truths),
            np.fromiter((e[1].threshold for e in live), dtype=float, count=count),
            np.fromiter((e[1].rho for e in live), dtype=float, count=count),
            np.fromiter((e[1].nu_scale for e in live), dtype=float, count=count),
            np.fromiter((e[1].answer_scale for e in live), dtype=float, count=count),
            truths,
            rng=gen,
            fault=self.gate_fault,
        )
        for position, (name, lane, key, truth, estimate) in enumerate(live):
            index = lane.next_index()
            if grid.above[position]:
                noisy = float(grid.released[position])
                lane.commit_release(key, query, truth, noisy, index=index)
                served = OnlineAnswer(value=noisy, from_history=False, query_index=index)
            else:
                served = OnlineAnswer(value=estimate, from_history=True, query_index=index)
            answers[name] = LaneAnswer(lane=name, answer=served)
        return answers

    # ------------------------------------------------------------------
    # Query resolution and estimation.
    # ------------------------------------------------------------------
    def resolve(self, query: QueryLike) -> Tuple[object, float]:
        """``(key, true_answer)`` for one submitted query.

        Raises :class:`PrivacyError` for over-sensitive queries and
        :class:`InvalidParameterError` for queries the backend cannot serve.
        """
        if isinstance(query, Query):
            if query.sensitivity > self._sensitivity:
                raise PrivacyError(
                    f"query sensitivity {query.sensitivity} exceeds the session "
                    f"bound {self._sensitivity}"
                )
            return repr(query), float(query.evaluate(self._dataset))
        if self._backend is not None and isinstance(query, (int, np.integer)):
            item = int(query)
            size = self._backend_size
            if not 0 <= item < size:
                raise InvalidParameterError(
                    f"item {item} outside the backend's {size} items"
                )
            if self._source is not None:
                return item, float(self._source.take([item])[0])
            return item, float(self._supports[item])
        raise InvalidParameterError("answer() expects a Query instance")

    def estimate(self, key, query: QueryLike) -> float:
        """The derived (free) answer for *query* from released history."""
        if self._estimator is not None:
            return float(self._estimator(query, self.history))
        last = self._last_release.get(key)
        if last is not None:
            return last
        if self.history:
            return self._release_sum / len(self.history)
        return 0.0

    # ------------------------------------------------------------------
    # Batch hooks (see repro.service.engine).
    # ------------------------------------------------------------------
    def check_open(self) -> None:
        if self._halted:
            raise PrivacyError(EXHAUSTED_MESSAGE)

    def next_index(self) -> int:
        index = self._served
        self._served += 1
        return index

    def commit_release(
        self, key, query: QueryLike, truth: float, noisy: float, index: int
    ) -> None:
        """Record one gate firing: budget charge, audit trail, history update."""
        self._count += 1
        if self._count >= self.c:
            self._halted = True
        self.ledger.charge(
            "laplace-answer", self._eps_per_answer, note=f"query #{index}"
        )
        self.audit.record(
            self.session_id, "spend", mechanism="laplace-answer",
            epsilon=self._eps_per_answer, note=f"query #{index}",
        )
        self.audit.record(
            self.session_id, "release", mechanism="laplace-answer", value=noisy,
        )
        self.history.append((query, noisy))
        self._last_release[key] = noisy
        self._release_sum += noisy
        if self._halted:
            self.audit.record(self.session_id, "halt", note=f"c={self.c} firings")

    # ------------------------------------------------------------------
    # The streaming path (one query end to end).
    # ------------------------------------------------------------------
    def answer(self, query: QueryLike) -> OnlineAnswer:
        """Serve one query: history if the SVT gate allows, else the database."""
        self.check_open()
        key, truth = self.resolve(query)
        estimate = self.estimate(key, query)
        # Corrected Section-3.4 check: the error |q~ - q(D)| is the SVT query.
        error = abs(estimate - truth)
        if self.gate_fault == "rho-reuse":
            # The injected stale-noise-buffer bug: rho stands in for nu and
            # the fresh draw never happens, collapsing the gate to the
            # noiseless ``error >= T``.
            nu = self.rho
        else:
            nu = float(self._rng.laplace(scale=self.nu_scale))
        index = self.next_index()
        if error + nu < self.threshold + self.rho:
            return OnlineAnswer(value=estimate, from_history=True, query_index=index)
        noisy = truth + float(self._rng.laplace(scale=self.answer_scale))
        self.commit_release(key, query, truth, noisy, index)
        return OnlineAnswer(value=noisy, from_history=False, query_index=index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session({self.session_id!r}, eps={self.epsilon:g}, T={self.threshold:g}, "
            f"c={self.c}, accesses={self._count}, served={self._served}"
            f"{', exhausted' if self._halted else ''})"
        )
