"""Session lifecycle: one manager per service, one session per tenant.

The manager owns what sessions share — the private dataset (with its
support-vector fast path when the backend is a
:class:`~repro.data.generators.ScoreDataset`, a plain array, or a lazy
:class:`~repro.data.scores.ScoreSource` for AOL-scale item universes), the
audit log, and the seed material from which every session's noise stream is
derived.  Per-session streams come from :func:`repro.rng.derive_rng` keyed
by ``(tenant, epoch)``, so a tenant's stream never depends on *when* its
session was opened relative to other tenants — the property that lets the
bit-identity tests drive the same tenants through the batched service and
through independent streaming loops.

Sessions can carry a TTL (``open_session(ttl_s=...)``).  Expiry is driven
by an injectable *clock* — deterministic in tests, ``time.monotonic`` in
production — and :meth:`SessionManager.evict` / :meth:`expire` close the
session, release its unspent budget back to the tenant's account through
the ledger, and append the release to the audit log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np

from repro.accounting.budget import BudgetPool
from repro.data.scores import ScoreSource
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, derive_rng
from repro.service.audit import AuditLog
from repro.service.session import EstimatorFn, Session

__all__ = ["SessionManager", "ClosedSession"]


@dataclass(frozen=True)
class ClosedSession:
    """The audit-relevant view of a session that no longer exists.

    Exactly what :func:`repro.service.audit.verify_audit` needs (``epsilon``,
    ``svt_fraction``, ``c``) plus the spend/release totals at close, so a
    persisted audit log remains verifiable after its sessions are evicted.
    """

    session_id: str
    tenant: str
    epsilon: float
    svt_fraction: float
    c: int
    spent: float
    released: float


def _extract_supports(dataset) -> Union[np.ndarray, ScoreSource, None]:
    """The backend's item-support vector (dense or lazy), when it has one."""
    if isinstance(dataset, ScoreSource):
        return dataset
    supports = getattr(dataset, "supports", None)
    if isinstance(supports, ScoreSource):
        return supports
    if supports is None and isinstance(dataset, (np.ndarray, list, tuple)):
        supports = dataset
    if supports is None:
        return None
    return np.asarray(supports, dtype=float)


class SessionManager:
    """Open, look up, expire, and close per-tenant sessions over one dataset."""

    def __init__(
        self,
        dataset,
        seed: RngLike = None,
        audit: Optional[AuditLog] = None,
        clock: Optional[Callable[[], float]] = None,
        gate_fault: Optional[str] = None,
    ) -> None:
        self._dataset = dataset
        self._supports = _extract_supports(dataset)
        self.audit = audit if audit is not None else AuditLog()
        self._clock = clock if clock is not None else time.monotonic
        #: Injectable gate fault stamped onto every session this manager
        #: opens or adopts (the empirical auditor's broken-gate mode; see
        #: :data:`repro.engine.gate.GATE_FAULTS`).  None in production.
        self.gate_fault = gate_fault
        #: Unspent epsilon returned to each tenant by evictions.
        self.released_budget: Dict[str, float] = {}
        # Resolve the seed material once so per-session derivations are a
        # pure function of (tenant, epoch), not of open order.
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        elif isinstance(seed, np.random.Generator):
            seed = int(seed.integers(0, 2**32))
        self._seed = seed
        self._sessions: Dict[str, Session] = {}
        self._epochs: Dict[str, int] = {}
        self._closed: Dict[str, ClosedSession] = {}

    @property
    def dataset(self):
        return self._dataset

    @property
    def seed(self) -> int:
        """The resolved seed material (an int — persisted by the durable
        store so per-session stream derivation survives a reboot)."""
        return self._seed

    def now(self) -> float:
        """The manager clock's current reading (TTL re-arming at recovery)."""
        return self._clock()

    # ------------------------------------------------------------------
    # Durable-store hooks (see repro.service.store.recovery).
    # ------------------------------------------------------------------
    def epochs(self) -> Dict[str, int]:
        """Per-tenant epoch counters (a copy) — persisted so a recovered
        manager never re-derives an already-used session stream."""
        return dict(self._epochs)

    def restore_epochs(self, epochs: Dict[str, int]) -> None:
        self._epochs = {str(t): int(e) for t, e in epochs.items()}

    def adopt_session(self, session: Session) -> None:
        """Install an already-built session for its tenant (recovery path —
        no eviction, no epoch bump, no open-time side effects)."""
        session.gate_fault = self.gate_fault
        for lane in session.lanes.values():
            lane.gate_fault = self.gate_fault
        self._sessions[session.tenant] = session

    def restore_closed(self, closed: Dict[str, ClosedSession]) -> None:
        self._closed = dict(closed)

    @property
    def supports(self) -> Union[np.ndarray, ScoreSource, None]:
        return self._supports

    @property
    def num_items(self) -> Optional[int]:
        if self._supports is None:
            return None
        if isinstance(self._supports, ScoreSource):
            return int(self._supports.n)
        return int(self._supports.size)

    def open_session(
        self,
        tenant: str,
        epsilon: float,
        error_threshold: float,
        c: int,
        svt_fraction: float = 0.5,
        sensitivity: float = 1.0,
        monotonic: bool = False,
        estimator: Optional[EstimatorFn] = None,
        rng: RngLike = None,
        ttl_s: Optional[float] = None,
        pool: Optional[BudgetPool] = None,
    ) -> Session:
        """Open a fresh session for *tenant*; its previous one (if any) ends.

        ``rng=None`` derives the session stream from the manager seed keyed
        by tenant and epoch; pass an explicit seed/Generator to pin it.
        ``ttl_s`` arms the session for :meth:`expire`: once the manager
        clock advances past ``open time + ttl_s`` the session is evicted
        and its unspent budget released.  ``pool`` caps the tenant's total
        exposure across this session and every lane later attached to it
        (see :meth:`open_lane`).
        """
        tenant = str(tenant)
        if tenant in self._sessions:
            # "its previous one (if any) ends" — for real: the old epoch is
            # evicted (budget released, terminal audit record, ClosedSession
            # view kept) so total_spent()/audit_sessions() never lose it.
            # Silently dropping it would leak its unspent epsilon and make
            # verify_audit flag the old epoch's spends as an unknown session.
            self.evict(tenant)
        epoch = self._epochs.get(tenant, 0)
        self._epochs[tenant] = epoch + 1
        if rng is None:
            rng = derive_rng(self._seed, "service-session", tenant, epoch)
        session = Session(
            self._dataset,
            epsilon=epsilon,
            error_threshold=error_threshold,
            c=c,
            svt_fraction=svt_fraction,
            sensitivity=sensitivity,
            monotonic=monotonic,
            estimator=estimator,
            rng=rng,
            supports=self._supports,
            tenant=tenant,
            session_id=f"{tenant}#{epoch}",
            audit=self.audit,
            ttl_s=ttl_s,
            opened_at=self._clock(),
            pool=pool,
        )
        session.gate_fault = self.gate_fault
        self._sessions[tenant] = session
        return session

    def open_lane(self, tenant: str, name: str, rng: RngLike = None, **config) -> Session:
        """Attach a named budget lane to *tenant*'s open session.

        ``rng=None`` derives the lane stream from the manager seed keyed by
        (tenant, epoch, lane name) — like sessions, a lane's stream never
        depends on when it was opened relative to other lanes or tenants.
        """
        session = self.session(tenant)
        epoch = self._epochs.get(str(tenant), 1) - 1
        if rng is None:
            rng = derive_rng(self._seed, "service-lane", str(tenant), epoch, str(name))
        return session.add_lane(name, rng=rng, **config)

    def session(self, tenant: str) -> Session:
        try:
            return self._sessions[str(tenant)]
        except KeyError:
            raise InvalidParameterError(f"no open session for tenant {tenant!r}") from None

    def close_session(self, tenant: str) -> None:
        self._sessions.pop(str(tenant), None)

    def evict(self, tenant: str) -> float:
        """Close *tenant*'s session and release its unspent budget.

        Returns the released epsilon; it is also accumulated per tenant in
        :attr:`released_budget` (the tenant's account gets it back), and the
        session's audit trail gains a terminal ``evict`` record.
        """
        tenant = str(tenant)
        session = self.session(tenant)
        amount = session.close(note=f"evicted tenant {tenant}")
        del self._sessions[tenant]
        self.released_budget[tenant] = self.released_budget.get(tenant, 0.0) + amount
        # One closed view per budget the tenant held — lanes are sessions in
        # the audit log, so each needs its own replayable configuration.
        for member in (session, *session.lanes.values()):
            self._closed[member.session_id] = ClosedSession(
                session_id=member.session_id,
                tenant=tenant,
                epsilon=member.epsilon,
                svt_fraction=member.svt_fraction,
                c=member.c,
                spent=member.ledger.spent,
                released=member.ledger.released,
            )
        return amount

    def closed_sessions(self) -> Dict[str, ClosedSession]:
        """Audit views of every evicted session, keyed by session id."""
        return dict(self._closed)

    def audit_sessions(self) -> Dict[str, object]:
        """Every session the audit log may reference — live and evicted.

        Feed this to :func:`repro.service.audit.verify_audit`: without the
        closed views, spends of an evicted session would be flagged as
        belonging to an unknown session.  Named budget lanes are sessions of
        their own in the log, so they are included alongside their parents.
        """
        live = {}
        for session in self._sessions.values():
            live[session.session_id] = session
            for lane in session.lanes.values():
                live[lane.session_id] = lane
        return {**self._closed, **live}

    def total_spent(self) -> float:
        """Epsilon spent across live *and* evicted sessions (lanes included)."""
        live = 0.0
        for session in self._sessions.values():
            live += session.ledger.spent
            live += sum(lane.ledger.spent for lane in session.lanes.values())
        return live + sum(c.spent for c in self._closed.values())

    def expire(self, now: Optional[float] = None) -> List[str]:
        """Evict every session whose TTL has elapsed; returns the tenants.

        *now* defaults to the manager clock — pass an explicit time for
        deterministic replay of an eviction schedule.
        """
        now = self._clock() if now is None else float(now)
        expired = [
            tenant for tenant, s in self._sessions.items() if s.expired(now)
        ]
        for tenant in expired:
            self.evict(tenant)
        return expired

    def __contains__(self, tenant: str) -> bool:
        return str(tenant) in self._sessions

    def __iter__(self) -> Iterator[Session]:
        return iter(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)
