"""Session lifecycle: one manager per service, one session per tenant.

The manager owns what sessions share — the private dataset (with its
support-vector fast path when the backend is a
:class:`~repro.data.generators.ScoreDataset` or a plain array), the audit
log, and the seed material from which every session's noise stream is
derived.  Per-session streams come from :func:`repro.rng.derive_rng` keyed
by ``(tenant, epoch)``, so a tenant's stream never depends on *when* its
session was opened relative to other tenants — the property that lets the
bit-identity tests drive the same tenants through the batched service and
through independent streaming loops.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, derive_rng
from repro.service.audit import AuditLog
from repro.service.session import EstimatorFn, Session

__all__ = ["SessionManager"]


def _extract_supports(dataset) -> Optional[np.ndarray]:
    """The backend's item-support vector, when it has one."""
    supports = getattr(dataset, "supports", None)
    if supports is None and isinstance(dataset, (np.ndarray, list, tuple)):
        supports = dataset
    if supports is None:
        return None
    return np.asarray(supports, dtype=float)


class SessionManager:
    """Open, look up, and close per-tenant sessions over one shared dataset."""

    def __init__(self, dataset, seed: RngLike = None, audit: Optional[AuditLog] = None) -> None:
        self._dataset = dataset
        self._supports = _extract_supports(dataset)
        self.audit = audit if audit is not None else AuditLog()
        # Resolve the seed material once so per-session derivations are a
        # pure function of (tenant, epoch), not of open order.
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        elif isinstance(seed, np.random.Generator):
            seed = int(seed.integers(0, 2**32))
        self._seed = seed
        self._sessions: Dict[str, Session] = {}
        self._epochs: Dict[str, int] = {}

    @property
    def dataset(self):
        return self._dataset

    @property
    def supports(self) -> Optional[np.ndarray]:
        return self._supports

    @property
    def num_items(self) -> Optional[int]:
        return None if self._supports is None else int(self._supports.size)

    def open_session(
        self,
        tenant: str,
        epsilon: float,
        error_threshold: float,
        c: int,
        svt_fraction: float = 0.5,
        sensitivity: float = 1.0,
        monotonic: bool = False,
        estimator: Optional[EstimatorFn] = None,
        rng: RngLike = None,
    ) -> Session:
        """Open a fresh session for *tenant*; its previous one (if any) ends.

        ``rng=None`` derives the session stream from the manager seed keyed
        by tenant and epoch; pass an explicit seed/Generator to pin it.
        """
        tenant = str(tenant)
        epoch = self._epochs.get(tenant, 0)
        self._epochs[tenant] = epoch + 1
        if rng is None:
            rng = derive_rng(self._seed, "service-session", tenant, epoch)
        session = Session(
            self._dataset,
            epsilon=epsilon,
            error_threshold=error_threshold,
            c=c,
            svt_fraction=svt_fraction,
            sensitivity=sensitivity,
            monotonic=monotonic,
            estimator=estimator,
            rng=rng,
            supports=self._supports,
            tenant=tenant,
            session_id=f"{tenant}#{epoch}",
            audit=self.audit,
        )
        self._sessions[tenant] = session
        return session

    def session(self, tenant: str) -> Session:
        try:
            return self._sessions[str(tenant)]
        except KeyError:
            raise InvalidParameterError(f"no open session for tenant {tenant!r}") from None

    def close_session(self, tenant: str) -> None:
        self._sessions.pop(str(tenant), None)

    def __contains__(self, tenant: str) -> bool:
        return str(tenant) in self._sessions

    def __iter__(self) -> Iterator[Session]:
        return iter(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)
