"""The service audit log: every spend and release, verifiable after the fact.

A multi-tenant privacy service lives or dies by its accounting.  The ledger
inside each session *enforces* the budget at serve time; the audit log is the
independent, append-only record that lets an auditor re-derive the claim
afterwards: every ``svt-gate`` and ``laplace-answer`` spend, every database
release, in global order.  :func:`verify_audit` replays that record against
the sessions' declared configurations — totals, per-spend amounts, firing
cutoffs, spend/release pairing — and :func:`gate_mechanism_spec` bridges to
the exact Eq.-(5) verifier so the gate's *claimed* epsilon itself can be
certified on adversarial instances, not just its bookkeeping.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional

from repro.accounting.budget import _EPS_SLACK
from repro.core.allocation import BudgetAllocation
from repro.exceptions import InvalidParameterError

__all__ = [
    "AuditRecord",
    "AuditLog",
    "AuditReport",
    "verify_audit",
    "gate_mechanism_spec",
]

#: Record kinds: a budget spend, a database release (numeric answer), the
#: gate reaching its firing cutoff, or an eviction returning unspent budget
#: (``epsilon`` then carries the released amount).
KINDS = ("open", "spend", "release", "halt", "evict")


class AuditRecord(NamedTuple):
    """One audited event, in global service order.

    ``epsilon`` is the amount spent (0 for non-spend records); ``value`` is
    the released numeric answer for ``release`` records.  (A NamedTuple, not
    a dataclass: records are appended on the serving hot path.)
    """

    seq: int
    session: str
    kind: str
    mechanism: str = ""
    epsilon: float = 0.0
    value: Optional[float] = None
    note: str = ""


class AuditLog:
    """Append-only event log shared by every session of one service.

    Appends are serialized under a lock: the concurrent runtime lets many
    sessions record from many threads, and ``seq`` assignment (read length,
    append) is a race without it — two racing spends could claim the same
    sequence number, which is exactly the kind of gap/duplicate
    :meth:`replay` is built to reject.
    """

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []
        self._lock = threading.Lock()
        # Sequence numbers are assigned from a counter, not len(_records):
        # a log rebuilt from a compacted store starts mid-sequence (archived
        # records are gone) and fresh appends must continue the global
        # numbering, never reuse an archived seq.
        self._next_seq = 0
        # Write-ahead hooks: each freshly appended record is handed to every
        # sink under the append lock, so a durable store sees records in
        # exactly seq order.  Sinks must be cheap and must not re-enter the
        # log.
        self._sinks: List[Callable[[AuditRecord], None]] = []

    @property
    def next_seq(self) -> int:
        """The sequence number the next record will take."""
        return self._next_seq

    def add_sink(self, sink: Callable[[AuditRecord], None]) -> None:
        """Register a callback invoked (in seq order) for every new record."""
        with self._lock:
            self._sinks.append(sink)

    @classmethod
    def from_records(cls, records, next_seq: Optional[int] = None) -> "AuditLog":
        """Rebuild a log from already-validated records (recovery path).

        Seq numbers must be strictly increasing in *records* order but need
        not start at 0 or be contiguous — compaction archives whole closed
        sessions out of the store, leaving gaps.  ``next_seq`` pins the next
        number to assign (defaults to one past the largest seen).
        """
        log = cls()
        last = -1
        for record in records:
            if not isinstance(record, AuditRecord):
                record = AuditRecord(**record)
            if record.kind not in KINDS:
                raise InvalidParameterError(
                    f"unknown audit kind {record.kind!r}; known: {KINDS}"
                )
            if record.seq <= last:
                raise InvalidParameterError(
                    f"audit records out of order: seq {record.seq} after {last}"
                )
            last = record.seq
            log._records.append(record)
        log._next_seq = last + 1 if next_seq is None else int(next_seq)
        if log._next_seq <= last:
            raise InvalidParameterError(
                f"next_seq {log._next_seq} would reuse an existing seq (max {last})"
            )
        return log

    def record(
        self,
        session: str,
        kind: str,
        mechanism: str = "",
        epsilon: float = 0.0,
        value: Optional[float] = None,
        note: str = "",
    ) -> AuditRecord:
        if kind not in KINDS:
            raise InvalidParameterError(f"unknown audit kind {kind!r}; known: {KINDS}")
        with self._lock:
            entry = AuditRecord(
                seq=self._next_seq,
                session=str(session),
                kind=kind,
                mechanism=mechanism,
                epsilon=float(epsilon),
                value=value,
                note=note,
            )
            self._next_seq += 1
            self._records.append(entry)
            for sink in self._sinks:
                sink(entry)
        return entry

    def for_session(self, session: str) -> List[AuditRecord]:
        return [r for r in self._records if r.session == str(session)]

    def spend_by_session(self) -> Dict[str, float]:
        """Total audited epsilon per session id."""
        totals: Dict[str, float] = {}
        for r in self._records:
            if r.kind == "spend":
                totals[r.session] = totals.get(r.session, 0.0) + r.epsilon
        return totals

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Persistence: an in-memory log is no audit trail at all.
    # ------------------------------------------------------------------
    def to_jsonl(self, path) -> int:
        """Write every record as one JSON line; returns the record count.

        The format is the NamedTuple's fields verbatim (``seq`` included),
        so a replayed log is field-for-field the original and
        :func:`verify_audit` runs on it unchanged.
        """
        with self._lock:
            records = list(self._records)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record._asdict(), sort_keys=False) + "\n")
        return len(records)

    @classmethod
    def replay(cls, path, tolerate_torn_tail: bool = False) -> "AuditLog":
        """Load a :meth:`to_jsonl` file back into an append-only log.

        Append-only integrity is enforced on the way in: records must carry
        the contiguous ``seq`` numbers 0..N-1 in file order and only known
        kinds — a truncated, reordered, or hand-edited file is rejected
        rather than silently re-sequenced.

        ``tolerate_torn_tail=True`` is the crash-recovery mode: a *final*
        line that fails to parse (the classic torn write — the process died
        mid-append) is dropped and the intact prefix is returned.  Only the
        physically last line gets this grace; a malformed line with records
        after it is mid-file corruption and still raises.  A torn tail can
        only ever *shorten* the log — it can never admit a record that the
        strict mode would reject, so a recovered log is always some exact
        committed prefix of the original.
        """
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        # Trailing blank/whitespace lines don't count as records when
        # deciding which line is "last".
        while lines and not lines[-1].strip():
            lines.pop()
        log = cls()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            is_last = lineno == len(lines) - 1
            try:
                payload = json.loads(line)
                record = AuditRecord(**payload)
            except (ValueError, TypeError) as exc:
                if tolerate_torn_tail and is_last:
                    break
                raise InvalidParameterError(
                    f"{path}: line {lineno + 1} is not an audit record: {exc}"
                ) from None
            if record.kind not in KINDS:
                if tolerate_torn_tail and is_last:
                    break
                raise InvalidParameterError(
                    f"{path}: line {lineno + 1} has unknown kind {record.kind!r}"
                )
            if record.seq != len(log._records):
                if tolerate_torn_tail and is_last:
                    break
                raise InvalidParameterError(
                    f"{path}: line {lineno + 1} has seq {record.seq}, "
                    f"expected {len(log._records)} (log not append-only?)"
                )
            log._records.append(record)
        log._next_seq = len(log._records)
        return log


@dataclass
class AuditReport:
    """Outcome of an audit replay: per-session spend plus any violations."""

    spend_by_session: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            lines = ["audit OK"]
        else:
            lines = [f"audit FAILED ({len(self.violations)} violations)"]
            lines += [f"  - {v}" for v in self.violations]
        for sid, spent in sorted(self.spend_by_session.items()):
            lines.append(f"  {sid}: spent {spent:.6g}")
        return "\n".join(lines)


def verify_audit(log: AuditLog, sessions) -> AuditReport:
    """Replay the audit log against the sessions' declared configurations.

    *sessions* maps session id to anything exposing ``epsilon``,
    ``svt_fraction``, and ``c`` (a :class:`~repro.service.session.Session`
    does); an iterable of sessions with ``session_id`` works too.  Checks,
    per session:

    * total audited spend <= epsilon (within the ledger's float slack);
    * the first spend is the up-front ``svt-gate`` charge of
      ``epsilon * svt_fraction``;
    * at most c ``laplace-answer`` spends, each of the per-answer epsilon;
    * every spend after the gate charge pairs with a ``release`` record of
      the same mechanism (no unaccounted releases, no phantom spends);
    * an ``evict`` record, if present, is unique, terminal for its session,
      and its released amount plus the audited spend covers the whole
      budget (nothing silently vanishes on eviction).
    """
    if not isinstance(sessions, dict):
        sessions = {s.session_id: s for s in sessions}
    report = AuditReport(spend_by_session=log.spend_by_session())
    for sid, spent in report.spend_by_session.items():
        if sid not in sessions:
            report.violations.append(f"{sid}: audited spends for an unknown session")
    # One pass over the log; per-session rescans would make a 256-tenant
    # replay quadratic in the record count.
    by_session: Dict[str, List[AuditRecord]] = {}
    for record in log:
        by_session.setdefault(record.session, []).append(record)
    for sid, session in sessions.items():
        epsilon = float(session.epsilon)
        svt_fraction = float(session.svt_fraction)
        c = int(session.c)
        eps_svt = epsilon * svt_fraction
        eps_answer = (epsilon - eps_svt) / c
        records = by_session.get(sid, [])
        spends = [r for r in records if r.kind == "spend"]
        releases = [r for r in records if r.kind == "release"]
        total = sum(r.epsilon for r in spends)
        if total > epsilon + _EPS_SLACK:
            report.violations.append(
                f"{sid}: audited spend {total:.6g} exceeds budget {epsilon:.6g}"
            )
        if not spends:
            report.violations.append(f"{sid}: no audited svt-gate charge")
            continue
        head = spends[0]
        if head.mechanism != "svt-gate" or not math.isclose(
            head.epsilon, eps_svt, rel_tol=1e-12, abs_tol=_EPS_SLACK
        ):
            report.violations.append(
                f"{sid}: first spend must be the svt-gate charge of {eps_svt:.6g}, "
                f"got {head.mechanism!r} for {head.epsilon:.6g}"
            )
        answers = [r for r in spends[1:] if r.mechanism == "laplace-answer"]
        if len(answers) != len(spends) - 1:
            extras = {r.mechanism for r in spends[1:]} - {"laplace-answer"}
            report.violations.append(f"{sid}: unexpected spend mechanisms {sorted(extras)}")
        if len(answers) > c:
            report.violations.append(
                f"{sid}: {len(answers)} laplace-answer spends exceed the cutoff c={c}"
            )
        for r in answers:
            if not math.isclose(r.epsilon, eps_answer, rel_tol=1e-12, abs_tol=_EPS_SLACK):
                report.violations.append(
                    f"{sid}: laplace-answer spend {r.epsilon:.6g} != "
                    f"per-answer epsilon {eps_answer:.6g}"
                )
        evicts = [r for r in records if r.kind == "evict"]
        if evicts:
            if len(evicts) > 1:
                report.violations.append(f"{sid}: {len(evicts)} evict records (max 1)")
            if records[-1].kind != "evict":
                report.violations.append(
                    f"{sid}: records appended after eviction (#{evicts[0].seq})"
                )
            returned = evicts[-1].epsilon
            if returned < -_EPS_SLACK or abs(total + returned - epsilon) > _EPS_SLACK:
                report.violations.append(
                    f"{sid}: evict released {returned:.6g} but {total:.6g} was "
                    f"spent of a {epsilon:.6g} budget (spend + release != budget)"
                )
        db_releases = [r for r in releases if r.mechanism == "laplace-answer"]
        if len(db_releases) != len(answers):
            report.violations.append(
                f"{sid}: {len(db_releases)} database releases vs "
                f"{len(answers)} laplace-answer spends"
            )
        else:
            for spend, release in zip(answers, db_releases):
                if release.seq < spend.seq:
                    report.violations.append(
                        f"{sid}: release #{release.seq} precedes its spend #{spend.seq}"
                    )
    return report


def gate_mechanism_spec(
    epsilon: float,
    c: int,
    svt_fraction: float = 0.5,
    sensitivity: float = 1.0,
    monotonic: bool = False,
):
    """The session gate's noise structure as a verifier :class:`MechanismSpec`.

    The audit log claims the gate costs ``epsilon * svt_fraction`` for the
    whole session regardless of query count.  This bridge lets a test (or an
    auditor) certify that claim *exactly*: feed the spec to
    :func:`repro.analysis.verifier.empirical_epsilon` with adversarial
    neighboring error vectors (the error query has sensitivity <= Delta by
    the reverse triangle inequality) and check the worst-case privacy loss
    stays <= ``eps_svt``.
    """
    from repro.analysis.verifier import MechanismSpec

    eps_svt = float(epsilon) * float(svt_fraction)
    if eps_svt <= 0.0 or not math.isfinite(eps_svt):
        raise InvalidParameterError("epsilon * svt_fraction must be finite and > 0")
    allocation = BudgetAllocation.from_ratio(
        eps_svt, int(c), ratio="optimal", monotonic=monotonic
    )
    delta = float(sensitivity)
    factor = c if monotonic else 2 * c
    return MechanismSpec(
        threshold_scale=delta / allocation.eps1,
        query_scale=factor * delta / allocation.eps2,
    )
