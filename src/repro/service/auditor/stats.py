"""Binomial-test epsilon lower bounds: the auditor's statistics core.

An empirical privacy audit reduces to a guessing game: per trial a secret
bit picks one of two *neighboring* planted inputs, the attacker observes the
mechanism's output and guesses the bit.  Under eps-DP the guess is a
randomized-response channel with accuracy at most ``q = 1/(1+e^-eps))``, so
``v`` correct out of ``r`` guesses admits an exact binomial test: the
p-value is the chance an eps-DP mechanism produces at least ``v`` hits, and
inverting the test over eps yields a **lower bound on the epsilon the
mechanism actually leaks** at the chosen confidence.  This is the DP-FTRL
auditing recipe (``p_value_DP_audit`` / ``get_eps_audit``), reimplemented
here over ``math.lgamma`` so the live service's auditor never needs scipy —
the reference tests pin our tails against scipy-generated values instead of
importing it.

Everything is exact-tail computation, not a normal approximation: pmf terms
are summed in log space on the side of the distribution actually requested,
so there is no ``1 - cdf`` cancellation and the values match scipy to
~1e-12 relative at the sample sizes an audit uses (hundreds of trials).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "log_binom_pmf",
    "binom_pmf",
    "binom_cdf",
    "binom_sf",
    "p_value_dp_audit",
    "eps_lower_bound",
    "clopper_pearson",
    "accuracy_to_eps",
    "AuditAccumulator",
]

#: Bisection depth: 2^-60 interval width, far below audit resolution.
_BISECT_ITERS = 60
#: get_eps_audit's growth cap — an audit never certifies eps this large.
_EPS_CEILING = 128.0


def log_binom_pmf(k: int, n: int, q: float) -> float:
    """``log P[Binomial(n, q) = k]`` via lgamma (−inf outside the support)."""
    if k < 0 or k > n:
        return -math.inf
    if q <= 0.0:
        return 0.0 if k == 0 else -math.inf
    if q >= 1.0:
        return 0.0 if k == n else -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
        + k * math.log(q) + (n - k) * math.log1p(-q)
    )


def binom_pmf(k: int, n: int, q: float) -> float:
    """``P[Binomial(n, q) = k]``."""
    return math.exp(log_binom_pmf(k, n, q))


def _tail_sum(lo: int, hi: int, n: int, q: float) -> float:
    """Sum pmf(k) for k in [lo, hi] — ascending magnitude never matters
    here (every term is positive; no cancellation), so plain order is fine."""
    return math.fsum(binom_pmf(k, n, q) for k in range(lo, hi + 1))


def binom_cdf(k: int, n: int, q: float) -> float:
    """``P[Binomial(n, q) <= k]``, summed over the lower tail directly."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    return min(_tail_sum(0, int(k), n, q), 1.0)


def binom_sf(k: int, n: int, q: float) -> float:
    """``P[Binomial(n, q) > k]`` (scipy ``binom.sf`` semantics), summed over
    the upper tail directly — accurate even when the tail is tiny."""
    if k < 0:
        return 1.0
    if k >= n:
        return 0.0
    return min(_tail_sum(int(k) + 1, n, n, q), 1.0)


def p_value_dp_audit(m: int, r: int, v: int, eps: float,
                     delta: float = 0.0) -> float:
    """P[an (eps, delta)-DP mechanism yields >= *v* correct of *r* guesses].

    *m* is the number of trials (guesses plus abstentions).  The delta
    correction term (``alpha * delta * 2m``) vanishes at ``delta=0`` — the
    pure-eps SVT gate — but is kept so the machinery matches the DP-FTRL
    evaluator it derives from.
    """
    if not 0 <= v <= r <= m:
        raise ValueError(f"need 0 <= v <= r <= m, got v={v} r={r} m={m}")
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"delta must be in [0, 1], got {delta}")
    q = 1.0 / (1.0 + math.exp(-eps))  # randomized-response accuracy
    beta = binom_sf(v - 1, r, q)  # = P[Binomial(r, q) >= v]
    alpha = 0.0
    if delta > 0.0:
        running = 0.0  # = P[v > Binomial(r, q) >= v - i]
        for i in range(1, v + 1):
            running += binom_pmf(v - i, r, q)
            if running > i * alpha:
                alpha = running / i
    return min(beta + alpha * delta * 2 * m, 1.0)


def eps_lower_bound(m: int, r: int, v: int, delta: float = 0.0,
                    p: float = 0.05) -> float:
    """The largest eps the guess record rejects at p-value *p*.

    The audited mechanism is provably **not** (eps, delta)-DP for any eps
    below the returned bound, at confidence ``1 - p``.  Returns 0.0 when
    the record is consistent even with a perfectly private mechanism (the
    healthy-gate outcome: accuracy near coin-flip).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if p_value_dp_audit(m, r, v, 0.0, delta) >= p:
        return 0.0
    eps_min = 0.0  # invariant: p_value(eps_min) < p
    eps_max = 1.0  # invariant: p_value(eps_max) >= p
    while p_value_dp_audit(m, r, v, eps_max, delta) < p:
        eps_max += 1.0
        if eps_max >= _EPS_CEILING:
            break
    for _ in range(_BISECT_ITERS):
        eps = (eps_min + eps_max) / 2.0
        if p_value_dp_audit(m, r, v, eps, delta) < p:
            eps_min = eps
        else:
            eps_max = eps
    return eps_min


def clopper_pearson(v: int, r: int, confidence: float = 0.95
                    ) -> Tuple[float, float]:
    """The exact (Clopper–Pearson) two-sided CI for *v* successes of *r*.

    Solved by bisection on the success probability against the binomial
    tails (the Beta-quantile formulation without scipy): both tails are
    monotone in q, so each endpoint is a 1-D root find.
    """
    if not 0 <= v <= r:
        raise ValueError(f"need 0 <= v <= r, got v={v} r={r}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if r == 0:
        return 0.0, 1.0
    half_alpha = (1.0 - confidence) / 2.0

    def solve(target, tail, lo=0.0, hi=1.0):
        # tail(q) is increasing in q for sf, decreasing for cdf; bisect on
        # the sign of (tail - target) with the orientation handled by the
        # caller passing a monotone-increasing residual.
        for _ in range(_BISECT_ITERS + 20):
            mid = (lo + hi) / 2.0
            if tail(mid) < target:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    # Lower endpoint: largest q with P[X >= v] <= alpha/2.
    lower = 0.0 if v == 0 else solve(half_alpha, lambda q: binom_sf(v - 1, r, q))
    # Upper endpoint: smallest q with P[X <= v] <= alpha/2; cdf decreases
    # in q, so bisect its negation to keep the residual increasing.
    upper = 1.0 if v == r else solve(-half_alpha, lambda q: -binom_cdf(v, r, q))
    return lower, upper


def accuracy_to_eps(accuracy: float) -> float:
    """The eps whose randomized-response accuracy equals *accuracy* —
    ``ln(acc / (1-acc))``, floored at 0 (sub-coin-flip accuracy certifies
    nothing).  The point estimate behind the test-inverted bound."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
    if accuracy <= 0.5:
        return 0.0
    if accuracy >= 1.0:
        return math.inf
    return math.log(accuracy / (1.0 - accuracy))


@dataclass
class AuditAccumulator:
    """Running guess outcomes -> bounds; the driver's scoreboard.

    ``trials`` (m) counts every completed trial, ``guesses`` (r) those where
    the distinguisher committed to a guess, ``correct`` (v) the hits.
    """

    trials: int = 0
    guesses: int = 0
    correct: int = 0

    def record(self, guessed: bool, correct: bool) -> None:
        self.trials += 1
        if guessed:
            self.guesses += 1
            if correct:
                self.correct += 1

    @property
    def accuracy(self) -> Optional[float]:
        return self.correct / self.guesses if self.guesses else None

    def accuracy_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        return clopper_pearson(self.correct, self.guesses, confidence)

    def eps_lower_bound(self, delta: float = 0.0,
                        confidence: float = 0.95) -> float:
        return eps_lower_bound(self.trials, self.guesses, self.correct,
                               delta=delta, p=1.0 - confidence)

    def summary(self, charged_eps: Optional[float] = None, delta: float = 0.0,
                confidence: float = 0.95) -> dict:
        """The report fragment every surface shares (driver artifact,
        ``audit_report`` op payload, tests)."""
        eps_lb = self.eps_lower_bound(delta=delta, confidence=confidence)
        ci = self.accuracy_interval(confidence) if self.guesses else (0.0, 1.0)
        out = {
            "trials": self.trials,
            "guesses": self.guesses,
            "correct": self.correct,
            "accuracy": self.accuracy,
            "accuracy_ci": [ci[0], ci[1]],
            "eps_lb": eps_lb,
            # Point estimate, ceiling-capped so perfect accuracy stays
            # JSON-representable (inf is not valid JSON).
            "eps_point": (min(accuracy_to_eps(self.accuracy), _EPS_CEILING)
                          if self.accuracy is not None else 0.0),
            "confidence": confidence,
            "delta": delta,
        }
        if charged_eps is not None:
            out["charged_eps"] = float(charged_eps)
            out["caught"] = bool(eps_lb > float(charged_eps))
        return out
