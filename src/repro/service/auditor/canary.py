"""Canary construction: planted neighboring inputs for the SVT gate.

The corrected Section-3.4 gate answers item queries through
``|q~ - q(D)| + nu >= T + rho``.  For a **fresh** session no history exists,
the derived estimate is 0, and the gate's error query is exactly the item's
true support.  That gives a clean neighboring-database emulation without
touching the service's data path: plant two items whose supports straddle
the threshold at exactly the query sensitivity —

    ``score_lo = T - Delta/2``        ``score_hi = T + Delta/2``

so ``|score_hi - score_lo| = Delta``.  A fresh session asked item ``lo`` and
a fresh session asked item ``hi`` see gate inputs that differ by one query's
worth of sensitivity: distributionally identical to running the *same*
query against two neighboring databases ``D``, ``D'``.  Per audit trial a
secret bit picks which planted item a throwaway canary tenant queries; the
distinguisher guesses the bit from the response.  Under an eps-DP gate the
guess accuracy is at most ``1/(1+e^-eps)`` (:mod:`.stats` inverts that into
the epsilon lower bound).

Canary sessions open with ``c=1`` and fixed budget knobs so the charged
epsilon — the ledger's per-session price, which the audited bound must stay
below — is a known constant of the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "CanaryPlan",
    "GUESS_RULES",
    "plant_canaries",
    "write_planted_scores",
    "load_planted_plan",
]

#: Distinguisher registry: ``rule(plan, response) -> 1 | 0 | None``.
#: The guess is which planted item the trial queried (1 = hi); None
#: abstains (the trial still counts toward m, not toward r).
GuessRule = Callable[["CanaryPlan", dict], Optional[int]]


def _rule_fire_high(plan: "CanaryPlan", response: dict) -> Optional[int]:
    """Guess hi iff the gate fired (the response left the history path).

    The hi canary sits above the threshold, the lo canary below, so a
    firing is evidence of hi.  Against the healthy gate the nu/rho noise
    floor (scales >> Delta at audit budgets) drives accuracy to ~0.5; the
    noiseless broken gate makes the firing a deterministic tell.
    """
    return 0 if response.get("from_history") else 1


def _rule_release_value(plan: "CanaryPlan", response: dict) -> Optional[int]:
    """Abstain unless the gate fired; then threshold the released value.

    The released answer is ``truth + Lap(answer_scale)`` — centered on the
    planted score, so comparing against T reads the bit directly.  Fewer
    guesses (r < m) than fire-high, exercising the abstention arm of the
    binomial test.
    """
    if response.get("from_history"):
        return None
    value = response.get("value")
    if value is None:
        return None
    return 1 if float(value) >= plan.threshold else 0


GUESS_RULES: Dict[str, GuessRule] = {
    "fire-high": _rule_fire_high,
    "release-value": _rule_release_value,
}


@dataclass(frozen=True)
class CanaryPlan:
    """Everything a driver needs to run trials against planted canaries."""

    item_lo: int
    item_hi: int
    score_lo: float
    score_hi: float
    threshold: float
    sensitivity: float = 1.0
    #: Session knobs for every canary open — also the charged price.
    epsilon: float = 1.0
    c: int = 1
    svt_fraction: float = 0.5
    monotonic: bool = False
    rule: str = "fire-high"

    def __post_init__(self) -> None:
        if self.rule not in GUESS_RULES:
            raise ValueError(
                f"unknown guess rule {self.rule!r}; known: {sorted(GUESS_RULES)}"
            )

    @property
    def charged_eps(self) -> float:
        """The ledger's price for one canary session — the audit's null."""
        return self.epsilon

    def item_for(self, bit: int) -> int:
        return self.item_hi if bit else self.item_lo

    def guess(self, response: dict) -> Optional[int]:
        return GUESS_RULES[self.rule](self, response)

    def open_payload(self, tenant: str) -> dict:
        """The JSONL ``open`` op for one canary session."""
        return {
            "op": "open",
            "tenant": tenant,
            "epsilon": self.epsilon,
            "threshold": self.threshold,
            "c": self.c,
            "svt_fraction": self.svt_fraction,
            "monotonic": self.monotonic,
        }

    def as_dict(self) -> dict:
        return {
            "item_lo": self.item_lo,
            "item_hi": self.item_hi,
            "score_lo": self.score_lo,
            "score_hi": self.score_hi,
            "threshold": self.threshold,
            "sensitivity": self.sensitivity,
            "epsilon": self.epsilon,
            "c": self.c,
            "svt_fraction": self.svt_fraction,
            "monotonic": self.monotonic,
            "rule": self.rule,
        }


def plant_canaries(
    supports,
    threshold: float,
    sensitivity: float = 1.0,
    epsilon: float = 1.0,
    c: int = 1,
    svt_fraction: float = 0.5,
    monotonic: bool = False,
    rule: str = "fire-high",
) -> Tuple[np.ndarray, CanaryPlan]:
    """Append the neighboring pair to *supports*' tail; return the plan.

    The pair rides at the last two indices — item queries resolve by index,
    so appending never disturbs existing tenants' answers, and the
    convention lets an attaching auditor find the plants without a side
    channel (:func:`load_planted_plan`).
    """
    threshold = float(threshold)
    sensitivity = float(sensitivity)
    if sensitivity <= 0.0:
        raise ValueError(f"sensitivity must be > 0, got {sensitivity}")
    if threshold <= sensitivity / 2.0:
        raise ValueError(
            f"threshold {threshold} too small to straddle: the lo plant "
            f"(T - {sensitivity / 2.0}) must stay a valid support >= 0"
        )
    base = np.asarray(supports, dtype=float).ravel()
    lo = threshold - sensitivity / 2.0
    hi = threshold + sensitivity / 2.0
    planted = np.concatenate([base, [lo, hi]])
    plan = CanaryPlan(
        item_lo=base.size,
        item_hi=base.size + 1,
        score_lo=lo,
        score_hi=hi,
        threshold=threshold,
        sensitivity=sensitivity,
        epsilon=float(epsilon),
        c=int(c),
        svt_fraction=float(svt_fraction),
        monotonic=bool(monotonic),
        rule=rule,
    )
    return planted, plan


def write_planted_scores(path, supports) -> int:
    """Write a planted support vector in ``repro serve``'s score-file
    format (one value per line); returns the item count.

    CI's audit-smoke job writes this file once, boots ``repro serve`` on
    it, and attaches ``repro audit-live --connect`` — the tail-pair
    convention carries the plan across the process boundary.
    """
    values = np.asarray(supports, dtype=float).ravel()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(f"{v:.17g}" for v in values) + "\n")
    return int(values.size)


def load_planted_plan(
    supports,
    epsilon: float = 1.0,
    c: int = 1,
    svt_fraction: float = 0.5,
    monotonic: bool = False,
    rule: str = "fire-high",
) -> CanaryPlan:
    """Recover the :class:`CanaryPlan` from a planted support vector.

    Inverts the tail-pair convention: the last two entries are the plants,
    the threshold is their midpoint, and the sensitivity their gap.
    """
    values = np.asarray(supports, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("planted support vector needs at least the tail pair")
    lo, hi = float(values[-2]), float(values[-1])
    if not hi > lo:
        raise ValueError(
            f"tail pair ({lo}, {hi}) is not an ascending planted pair — "
            "was this score file written by write_planted_scores?"
        )
    return CanaryPlan(
        item_lo=values.size - 2,
        item_hi=values.size - 1,
        score_lo=lo,
        score_hi=hi,
        threshold=(lo + hi) / 2.0,
        sensitivity=hi - lo,
        epsilon=float(epsilon),
        c=int(c),
        svt_fraction=float(svt_fraction),
        monotonic=bool(monotonic),
        rule=rule,
    )
