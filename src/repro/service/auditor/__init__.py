"""Continuous privacy auditing: empirical eps-attacks on the live service.

Three layers, importable separately:

- :mod:`.stats` — pure binomial-test machinery (no scipy at runtime):
  exact tails, Clopper–Pearson intervals, and the DP-FTRL-style inversion
  of a guessing-game record into an epsilon **lower bound**.
- :mod:`.canary` — planted neighboring inputs: a pair of support scores
  straddling the SVT threshold at exactly the query sensitivity, plus the
  distinguisher rules that guess which one a trial queried.
- :mod:`.driver` — the attack loop against a *live* server over the JSONL
  protocol (stdio, TCP, or the shard router), interleaved with background
  Zipf traffic, reporting into the service's own metrics plane.

The audit's contract: against the healthy corrected gate the bound stays
below the charged epsilon; against the ``rho-reuse`` fault knob (the
noiseless-gate bug class of Alg. 4 / GPTT) the bound must exceed it —
the auditor proves its teeth on a mechanism known to be broken.
"""

from repro.service.auditor.canary import (
    GUESS_RULES,
    CanaryPlan,
    load_planted_plan,
    plant_canaries,
    write_planted_scores,
)
from repro.service.auditor.driver import (
    AuditConfig,
    JsonLineClient,
    run_audit,
    write_report,
)
from repro.service.auditor.stats import (
    AuditAccumulator,
    accuracy_to_eps,
    binom_cdf,
    binom_pmf,
    binom_sf,
    clopper_pearson,
    eps_lower_bound,
    log_binom_pmf,
    p_value_dp_audit,
)

__all__ = [
    "AuditAccumulator",
    "AuditConfig",
    "CanaryPlan",
    "GUESS_RULES",
    "JsonLineClient",
    "accuracy_to_eps",
    "binom_cdf",
    "binom_pmf",
    "binom_sf",
    "clopper_pearson",
    "eps_lower_bound",
    "load_planted_plan",
    "log_binom_pmf",
    "p_value_dp_audit",
    "plant_canaries",
    "run_audit",
    "write_planted_scores",
    "write_report",
]
