"""The audit driver: canary trials through the *real* server, end to end.

This module never touches the service in-process: it speaks the JSONL
protocol through whatever byte stream it is handed — a TCP socket, a
``repro serve`` subprocess's stdio, or the shard router's listener — so an
audit exercises the exact stack a tenant does (ingress queue, batcher, gate
kernels, durable store, sharded routing included).

Per trial: a secret bit picks one of the two planted canary items
(:mod:`.canary`), a throwaway canary tenant opens a fresh session with the
plan's budget knobs, queries that item once, the distinguisher guesses the
bit from the typed ``answer`` frame, and the session closes (releasing its
unspent budget — an audit must not distort the ledger it polices).  Trials
interleave with background Zipf traffic from :mod:`repro.service.workload`
so the gate answers canaries inside real mixed cohorts, not on an idle box.
Running totals post to the server's ``audit_report`` op every
``report_every`` trials, which feeds the ``audited_eps_lb`` gauge and the
``/audit/eps`` admin route; the final summary lands in
``AUDIT_report.json`` via :func:`write_report`.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass
from typing import Dict, IO, Optional, Sequence

import numpy as np

from repro.service.auditor.canary import CanaryPlan
from repro.service.auditor.stats import AuditAccumulator
from repro.service.workload import WorkloadSpec, generate_workload

__all__ = ["AuditConfig", "JsonLineClient", "run_audit", "write_report"]


@dataclass(frozen=True)
class AuditConfig:
    """Knobs for one audit run (the ``repro audit-live`` surface)."""

    trials: int = 200
    confidence: float = 0.95
    delta: float = 0.0
    seed: int = 0
    #: Background Zipf queries sent between trials (0 = idle-box audit).
    background_every: int = 4
    background_tenants: int = 8
    #: Post running totals to the server every N trials (0 = final only).
    report_every: int = 50
    tenant_prefix: str = "canary"

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be > 0")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")


class JsonLineClient:
    """A blocking, id-matched JSONL protocol client.

    Works over any (binary read, binary write) file pair: a TCP socket's
    makefile views or a subprocess's stdout/stdin.  Requests carry
    monotonically increasing ids; :meth:`wait` reads frames — parking
    out-of-order ones — until the wanted id answers, so pipelined queries,
    forced drains, and interleaved background traffic share one connection
    without a demultiplexing thread.
    """

    def __init__(self, reader: IO[bytes], writer: IO[bytes],
                 on_close=None) -> None:
        self._reader = reader
        self._writer = writer
        self._on_close = on_close
        self._next_id = 0
        self._parked: Dict[int, dict] = {}

    @classmethod
    def connect_tcp(cls, host: str, port: int,
                    timeout: float = 30.0) -> "JsonLineClient":
        sock = socket.create_connection((host, int(port)), timeout=timeout)
        sock.settimeout(timeout)
        reader = sock.makefile("rb")
        writer = sock.makefile("wb")

        def close() -> None:
            try:
                sock.close()
            except OSError:
                pass

        return cls(reader, writer, on_close=close)

    @classmethod
    def from_process(cls, process) -> "JsonLineClient":
        """Speak the protocol over a ``repro serve`` subprocess's stdio."""
        return cls(process.stdout, process.stdin)

    def close(self) -> None:
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        if self._on_close is not None:
            self._on_close()

    # ------------------------------------------------------------------
    def send(self, payload: dict) -> int:
        """Write one request with a fresh id; returns the id (no read)."""
        self._next_id += 1
        request_id = self._next_id
        line = json.dumps({**payload, "id": request_id}) + "\n"
        self._writer.write(line.encode())
        self._writer.flush()
        return request_id

    def wait(self, request_id: int) -> dict:
        """Read frames until *request_id* answers (others park by id)."""
        if request_id in self._parked:
            return self._parked.pop(request_id)
        while True:
            raw = self._reader.readline()
            if not raw:
                raise ConnectionError(
                    f"server closed the stream while waiting for id {request_id}"
                )
            if not raw.strip():
                continue
            frame = json.loads(raw)
            got = frame.get("id")
            if got == request_id:
                return frame
            if got is not None:
                self._parked[int(got)] = frame
            # id-less frames (e.g. a drain ack for someone else) drop.

    def call(self, payload: dict) -> dict:
        return self.wait(self.send(payload))

    def query(self, tenant: str, item: int) -> dict:
        """One drained query round trip: query + forced drain, answer back."""
        qid = self.send({"op": "query", "tenant": tenant, "item": int(item)})
        self.send({"op": "drain"})
        return self.wait(qid)


def _raise_on_error(frame: dict, context: str) -> dict:
    if frame.get("type") in ("error", "overloaded", "unavailable"):
        raise RuntimeError(
            f"audit {context} failed: {frame.get('error', frame.get('type'))}"
        )
    return frame


class _BackgroundTraffic:
    """A drip of real Zipf requests between canary trials.

    Sessions auto-open with the *server's* default budget config — the
    point is realistic cohort mixing in the drains the canaries ride, not
    controlled sessions.  Overloaded/exhausted responses are expected under
    pressure and simply ignored."""

    def __init__(self, client: JsonLineClient, tenants: int, seed: int,
                 num_items: int) -> None:
        spec = WorkloadSpec(
            tenants=max(int(tenants), 1),
            requests=4096,
            dataset="Zipf",
            dataset_scale=0.02,
        )
        workload = generate_workload(spec, rng=seed)
        self._client = client
        self._tenants = workload.tenants
        # The audited server has its own support vector; fold the
        # workload's item stream onto it (minus the planted tail pair).
        self._items = workload.items % max(int(num_items), 1)
        self._cursor = 0

    def burst(self, count: int) -> None:
        ids = []
        for _ in range(int(count)):
            i = self._cursor % self._items.size
            self._cursor += 1
            ids.append(self._client.send({
                "op": "query",
                "tenant": f"bg-{int(self._tenants[i]):04d}",
                "item": int(self._items[i]),
            }))
        if ids:
            self._client.send({"op": "drain"})
            for request_id in ids:
                self._client.wait(request_id)


def run_audit(
    client: JsonLineClient,
    plan: CanaryPlan,
    config: AuditConfig = AuditConfig(),
    num_items: Optional[int] = None,
    tenant_names: Optional[Sequence[str]] = None,
    accumulator: Optional[AuditAccumulator] = None,
) -> dict:
    """Run the guessing game against a live server; returns the report.

    *num_items* (the backend's item count, planted pair included) enables
    background traffic; *tenant_names* overrides canary tenant naming (the
    sharded tests pass names pinned to distinct shards).  Pass an
    *accumulator* to resume/extend a previous run's totals.
    """
    if tenant_names is not None and len(tenant_names) < config.trials:
        raise ValueError(
            f"{len(tenant_names)} tenant names for {config.trials} trials"
        )
    rng = np.random.default_rng(config.seed)
    acc = accumulator if accumulator is not None else AuditAccumulator()
    background = None
    if config.background_every > 0 and num_items:
        background = _BackgroundTraffic(
            client, config.background_tenants, config.seed, num_items
        )

    def post_report() -> None:
        summary = acc.summary(charged_eps=plan.charged_eps,
                              delta=config.delta,
                              confidence=config.confidence)
        _raise_on_error(client.call({
            "op": "audit_report",
            "trials": summary["trials"],
            "guesses": summary["guesses"],
            "correct": summary["correct"],
            "eps_lb": summary["eps_lb"],
            "charged_eps": summary["charged_eps"],
            "confidence": config.confidence,
            "delta": config.delta,
            "rule": plan.rule,
        }), "report")

    for trial in range(config.trials):
        bit = int(rng.integers(2))
        tenant = (tenant_names[trial] if tenant_names is not None
                  else f"{config.tenant_prefix}-{trial:05d}")
        _raise_on_error(client.call(plan.open_payload(tenant)),
                        f"open (trial {trial})")
        answer = _raise_on_error(
            client.query(tenant, plan.item_for(bit)), f"query (trial {trial})"
        )
        guess = plan.guess(answer)
        acc.record(guessed=guess is not None, correct=guess == bit)
        _raise_on_error(client.call({"op": "close", "tenant": tenant}),
                        f"close (trial {trial})")
        if background is not None:
            background.burst(config.background_every)
        if config.report_every and (trial + 1) % config.report_every == 0:
            post_report()

    post_report()
    report = acc.summary(charged_eps=plan.charged_eps, delta=config.delta,
                         confidence=config.confidence)
    report["canary"] = plan.as_dict()
    report["seed"] = config.seed
    return report


def write_report(path, report: dict) -> str:
    """Write ``AUDIT_report.json`` (schema-stamped); returns the path."""
    payload = {"schema": 1, **report}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return str(path)
