"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish privacy-accounting problems from plain
configuration mistakes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PrivacyError",
    "BudgetExhaustedError",
    "NonPrivateMechanismError",
    "InvalidParameterError",
    "DatasetError",
    "QueryError",
    "StoreUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class PrivacyError(ReproError):
    """Raised when an operation would violate a privacy guarantee."""


class BudgetExhaustedError(PrivacyError):
    """Raised when a privacy budget has been fully consumed.

    Carries the amount that was requested and the amount remaining so callers
    can decide whether to re-plan, stop, or report.
    """

    def __init__(self, requested: float, remaining: float) -> None:
        self.requested = float(requested)
        self.remaining = float(remaining)
        super().__init__(
            f"privacy budget exhausted: requested epsilon={requested:g}, "
            f"remaining epsilon={remaining:g}"
        )


class NonPrivateMechanismError(PrivacyError):
    """Raised when a known-non-private mechanism is used without explicit opt-in.

    The broken SVT variants from the paper (Alg. 3, 5, 6 — and Alg. 4 whose
    real guarantee is far weaker than advertised) are implemented for study
    and attack demonstrations.  They refuse to run unless the caller passes
    ``allow_non_private=True``, so nobody adopts them by accident.
    """


class InvalidParameterError(ReproError, ValueError):
    """Raised for invalid mechanism or experiment parameters."""


class DatasetError(ReproError):
    """Raised for malformed datasets or impossible generator configurations."""


class QueryError(ReproError):
    """Raised for malformed queries or query/dataset mismatches."""


class StoreUnavailableError(ReproError):
    """Raised when the durable store cannot commit after bounded retries.

    The runtime treats this as a *degradation*, not a crash: answers whose
    durability could not be guaranteed are replaced by typed ``unavailable``
    responses while the connection (and the already-committed state) lives
    on.  Carries ``attempts`` so operators can see how hard the store tried.
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        self.attempts = int(attempts)
        super().__init__(message)
