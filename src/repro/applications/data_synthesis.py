"""PrivBayes-style private data synthesis (the [19] workflow, end to end).

Chen et al.'s broken SVT usage [1] sat inside a bigger pipeline — learn a
Bayesian-network structure privately, then release noisy conditionals, then
sample synthetic data (PrivBayes [19] is the canonical form).  This module
implements the whole pipeline on this library's correct primitives, for
binary attribute data:

1. **Structure** — score attribute pairs by mutual information and select
   high-MI edges privately (EM or correct SVT via
   :func:`repro.applications.bayes_net.private_structure_edges`), then take a
   maximum spanning tree → a Chow–Liu dependency tree.
2. **Parameters** — for each node, release its conditional distribution
   given its tree parent with the Laplace mechanism (sensitivity-1 counts).
3. **Sampling** — ancestral sampling from the released network.

Budget: ``structure_fraction`` of eps funds step 1; the rest splits evenly
across the d conditional-count releases (each a histogram over at most 4
cells with add/remove-one sensitivity 1).  Total: eps-DP by composition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.accounting.composition import split_budget
from repro.applications.bayes_net import (
    EdgeScore,
    maximum_spanning_tree,
    private_structure_edges,
)
from repro.exceptions import InvalidParameterError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.rng import RngLike, derive_rng, ensure_rng

__all__ = ["SynthesisModel", "synthesize_binary_data", "total_variation_by_attribute"]


@dataclass
class SynthesisModel:
    """A released (public) Bayesian network over binary attributes.

    ``order`` is a topological order of the tree; ``parent[i]`` is the tree
    parent of attribute i (None for roots); ``marginals[i]`` is
    ``Pr[X_i = 1]`` for roots and ``conditionals[i][v]`` is
    ``Pr[X_i = 1 | parent = v]`` otherwise.  Everything here is
    post-processing of noisy releases — safe to publish.
    """

    num_attributes: int
    order: List[int]
    parent: Dict[int, Optional[int]]
    marginals: Dict[int, float] = field(default_factory=dict)
    conditionals: Dict[int, Dict[int, float]] = field(default_factory=dict)
    edges: List[EdgeScore] = field(default_factory=list)

    def sample(self, num_records: int, rng: RngLike = None) -> np.ndarray:
        """Ancestral sampling of *num_records* synthetic rows."""
        if num_records <= 0:
            raise InvalidParameterError("num_records must be positive")
        gen = ensure_rng(rng)
        data = np.zeros((num_records, self.num_attributes), dtype=np.int8)
        for node in self.order:
            parent = self.parent[node]
            if parent is None:
                p_one = self.marginals[node]
                data[:, node] = gen.random(num_records) < p_one
            else:
                parent_values = data[:, parent]
                p_one = np.where(
                    parent_values == 1,
                    self.conditionals[node][1],
                    self.conditionals[node][0],
                )
                data[:, node] = gen.random(num_records) < p_one
        return data


def _clamped_probability(noisy_count: float, noisy_total: float) -> float:
    """Turn noisy (count, total) into a probability in [1e-3, 1 - 1e-3].

    Post-processing: clamping after the Laplace release costs nothing.  The
    floor keeps the sampler from collapsing onto deterministic attributes
    when noise swamps a small cell.
    """
    if noisy_total <= 1.0:
        return 0.5
    return float(min(1.0 - 1e-3, max(1e-3, noisy_count / noisy_total)))


def _tree_order(num_attributes: int, edges: List[EdgeScore]) -> Tuple[List[int], Dict[int, Optional[int]]]:
    """Root each tree component and return (topological order, parent map)."""
    adjacency: Dict[int, List[int]] = {i: [] for i in range(num_attributes)}
    for edge in edges:
        i, j = edge.pair
        adjacency[i].append(j)
        adjacency[j].append(i)
    order: List[int] = []
    parent: Dict[int, Optional[int]] = {}
    visited = [False] * num_attributes
    for root in range(num_attributes):
        if visited[root]:
            continue
        parent[root] = None
        stack = [root]
        visited[root] = True
        while stack:
            node = stack.pop()
            order.append(node)
            for neighbor in adjacency[node]:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    parent[neighbor] = node
                    stack.append(neighbor)
    return order, parent


def synthesize_binary_data(
    data: np.ndarray,
    epsilon: float,
    structure_fraction: float = 0.3,
    structure_method: str = "em",
    rng: RngLike = None,
) -> SynthesisModel:
    """Fit an eps-DP Chow-Liu model to binary *data* and return it.

    Parameters
    ----------
    data:
        (records x attributes) matrix with entries in {0, 1}.
    structure_fraction:
        Share of *epsilon* spent selecting the d-1 tree edges; the rest funds
        the conditional releases.
    structure_method:
        ``"em"`` (recommended) or ``"svt"``/``"svt-retraversal"`` for the edge
        selection — the exact choice the paper's Section 5 analysis informs.
    """
    matrix = np.asarray(data)
    if matrix.ndim != 2 or matrix.shape[1] < 2:
        raise InvalidParameterError("data must be 2-D with at least 2 attributes")
    if not np.isin(matrix, (0, 1)).all():
        raise InvalidParameterError("attributes must be binary (0/1)")
    if not 0.0 < structure_fraction < 1.0:
        raise InvalidParameterError("structure_fraction must be in (0, 1)")
    n, d = matrix.shape

    structure_eps, parameter_eps = split_budget(
        epsilon, [structure_fraction, 1.0 - structure_fraction]
    )

    # Step 1: private structure.  Select d-1 edges (a tree's worth), possibly
    # fewer after the spanning-tree filter on small/independent data.
    num_edges = d - 1
    candidates = private_structure_edges(
        matrix,
        epsilon=structure_eps,
        c=min(num_edges, d * (d - 1) // 2),
        method=structure_method,
        threshold=None if structure_method == "em" else 0.05,
        rng=derive_rng(rng, "synthesis", "structure"),
    )
    tree_edges = maximum_spanning_tree(candidates, d)
    order, parent = _tree_order(d, tree_edges)

    # Step 2: noisy conditionals.  Each node releases two counts (cells of a
    # 2x2 or 1x2 table); by add/remove-one-record neighbors the whole table
    # release per node is sensitivity-1, so eps_node funds it outright.
    eps_node = parameter_eps / d
    release_rng = derive_rng(rng, "synthesis", "parameters")
    model = SynthesisModel(num_attributes=d, order=order, parent=parent, edges=tree_edges)
    mech = LaplaceMechanism(epsilon=eps_node, sensitivity=1.0)
    noisy_n = float(mech.release(float(n), rng=release_rng))
    for node in order:
        node_parent = parent[node]
        if node_parent is None:
            ones = float(matrix[:, node].sum())
            noisy_ones = float(mech.release(ones, rng=release_rng))
            model.marginals[node] = _clamped_probability(noisy_ones, noisy_n)
        else:
            model.conditionals[node] = {}
            for value in (0, 1):
                mask = matrix[:, node_parent] == value
                total = float(mask.sum())
                ones = float(matrix[mask, node].sum())
                noisy_total = float(mech.release(total, rng=release_rng))
                noisy_ones = float(mech.release(ones, rng=release_rng))
                model.conditionals[node][value] = _clamped_probability(
                    noisy_ones, noisy_total
                )
    return model


def total_variation_by_attribute(real: np.ndarray, synthetic: np.ndarray) -> np.ndarray:
    """Per-attribute total-variation distance between two binary datasets.

    The standard one-way-marginal quality metric for synthesizers; pure
    evaluation (uses the real data), not a release.
    """
    real = np.asarray(real)
    synthetic = np.asarray(synthetic)
    if real.ndim != 2 or synthetic.ndim != 2 or real.shape[1] != synthetic.shape[1]:
        raise InvalidParameterError("datasets must be 2-D with matching attribute count")
    real_means = real.mean(axis=0)
    synth_means = synthetic.mean(axis=0)
    return np.abs(real_means - synth_means)
