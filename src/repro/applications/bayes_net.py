"""Private Bayesian-network structure edges (the Chen et al. [1] task).

[1] selected attribute pairs with mutual information above a noisy threshold
using Alg. 6 (∞-DP).  Here the same selection runs on correct mechanisms:
score every attribute pair by (empirical) mutual information, select the
top-c pairs with EM or correct SVT using the known sensitivity bound of MI,
and optionally assemble a Chow-Liu-style tree from the selected edges.

Sensitivity: for n records, changing one record changes the empirical mutual
information of a pair of binary attributes by at most

    Delta_I(n) = (1/n) * log2(n) + ((n-1)/n) * log2(n / (n-1)),

the bound used by PrivBayes [19] (Zhang et al.).  MI queries are *not*
monotonic — a record change can raise one pair's MI and lower another's — so
the general (non-monotonic) noise scales apply, unlike the counting-query
applications.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.selection import select_top_c
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, derive_rng

__all__ = [
    "mutual_information",
    "mutual_information_sensitivity",
    "EdgeScore",
    "private_structure_edges",
    "maximum_spanning_tree",
]


def mutual_information(x: np.ndarray, y: np.ndarray, base: float = 2.0) -> float:
    """Empirical mutual information of two discrete columns (in bits by default)."""
    x = np.asarray(x).ravel()
    y = np.asarray(y).ravel()
    if x.size != y.size or x.size == 0:
        raise InvalidParameterError("x and y must be equal-length, non-empty")
    n = x.size
    xs, x_inv = np.unique(x, return_inverse=True)
    ys, y_inv = np.unique(y, return_inverse=True)
    joint = np.zeros((xs.size, ys.size))
    np.add.at(joint, (x_inv, y_inv), 1.0)
    joint /= n
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = joint * np.log(joint / (px * py))
    value = float(np.nansum(terms)) / math.log(base)
    return max(0.0, value)


def mutual_information_sensitivity(n: int, base: float = 2.0) -> float:
    """The PrivBayes sensitivity bound on empirical MI for n records."""
    if not isinstance(n, (int, np.integer)) or n < 2:
        raise InvalidParameterError(f"n must be an integer >= 2, got {n!r}")
    log = lambda v: math.log(v) / math.log(base)
    return (1.0 / n) * log(n) + ((n - 1.0) / n) * log(n / (n - 1.0))


@dataclass(frozen=True)
class EdgeScore:
    """One attribute pair and its MI score."""

    pair: Tuple[int, int]
    score: float


def score_all_pairs(data: np.ndarray) -> List[EdgeScore]:
    """MI of every attribute pair of a (records × attributes) matrix."""
    if data.ndim != 2 or data.shape[1] < 2:
        raise InvalidParameterError("data must be 2-D with at least 2 attributes")
    d = data.shape[1]
    scores: List[EdgeScore] = []
    for i in range(d):
        for j in range(i + 1, d):
            scores.append(
                EdgeScore(pair=(i, j), score=mutual_information(data[:, i], data[:, j]))
            )
    return scores


def private_structure_edges(
    data: np.ndarray,
    epsilon: float,
    c: int,
    method: str = "em",
    threshold: Optional[float] = None,
    rng: RngLike = None,
) -> List[EdgeScore]:
    """Privately select the c attribute pairs with the highest MI.

    This is exactly [1]'s selection step with the broken SVT replaced by a
    correct mechanism; the MI sensitivity bound supplies Delta, and the
    general (non-monotonic) noise scales are used.
    """
    edges = score_all_pairs(np.asarray(data))
    if len(edges) < c:
        raise InvalidParameterError(f"only {len(edges)} pairs for c={c}")
    scores = np.array([e.score for e in edges])
    sensitivity = mutual_information_sensitivity(int(data.shape[0]))
    picked = select_top_c(
        scores,
        epsilon,
        c,
        method=method,
        sensitivity=sensitivity,
        monotonic=False,  # MI moves both directions between neighbors
        threshold=threshold,
        rng=derive_rng(rng, "bayes-net", "select"),
    )
    return [edges[int(i)] for i in picked]


def maximum_spanning_tree(edges: Sequence[EdgeScore], num_nodes: int) -> List[EdgeScore]:
    """Kruskal maximum spanning forest over the selected edges (Chow-Liu step).

    Pure post-processing of already-released edges — no privacy cost.
    Implemented directly (union-find) so the core library has no hard
    networkx dependency.
    """
    parent = list(range(num_nodes))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    chosen: List[EdgeScore] = []
    for edge in sorted(edges, key=lambda e: -e.score):
        i, j = edge.pair
        if not (0 <= i < num_nodes and 0 <= j < num_nodes):
            raise InvalidParameterError(f"edge {edge.pair} out of range for {num_nodes} nodes")
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
            chosen.append(edge)
    return chosen
