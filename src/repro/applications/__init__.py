"""The paper's motivating applications, rebuilt on this library.

Each module corresponds to one of the (mis)users of SVT analyzed in the
paper, re-implemented *correctly* on the repro substrates:

* :mod:`repro.applications.itemset_mining` — top-c frequent itemset mining
  (Lee & Clifton [13]'s task) via correct SVT or EM.
* :mod:`repro.applications.feature_selection` — private feature selection for
  classification (Stoddard et al. [18]'s task).
* :mod:`repro.applications.bayes_net` — selecting highly-correlated attribute
  pairs for a Bayesian-network / Chow-Liu structure (Chen et al. [1]'s task).
* :mod:`repro.applications.gradient_selection` — selective gradient sharing
  for private learning (Shokri & Shmatikov [17]'s task).
"""

from repro.applications.itemset_mining import MinedItemset, private_top_c_itemsets
from repro.applications.feature_selection import (
    FeatureSelectionResult,
    make_classification_data,
    private_feature_selection,
)
from repro.applications.bayes_net import (
    EdgeScore,
    mutual_information,
    mutual_information_sensitivity,
    private_structure_edges,
)
from repro.applications.data_synthesis import (
    SynthesisModel,
    synthesize_binary_data,
    total_variation_by_attribute,
)
from repro.applications.gradient_selection import (
    SelectiveSharingRound,
    selective_gradient_sharing,
)

__all__ = [
    "private_top_c_itemsets",
    "MinedItemset",
    "private_feature_selection",
    "make_classification_data",
    "FeatureSelectionResult",
    "mutual_information",
    "mutual_information_sensitivity",
    "private_structure_edges",
    "EdgeScore",
    "selective_gradient_sharing",
    "SelectiveSharingRound",
    "SynthesisModel",
    "synthesize_binary_data",
    "total_variation_by_attribute",
]
