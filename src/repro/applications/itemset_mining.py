"""Private top-c frequent itemset mining (the Lee & Clifton [13] task, done right).

[13] used Alg. 4, which actually costs ((1+3c)/4)eps for this monotonic
workload rather than the advertised eps.  Here the same task runs on correct
mechanisms: EM top-c selection (the paper's recommendation for this
non-interactive problem) or correct SVT, optionally followed by noisy support
release through Alg. 7's eps3 phase.

Candidate generation is data-independent (all itemsets up to ``max_size``
over the item universe, capped), so it consumes no budget; only the
support-based selection and the optional count release touch the data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accounting.composition import split_budget
from repro.core.selection import select_top_c
from repro.data.transaction_db import TransactionDatabase
from repro.exceptions import InvalidParameterError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.rng import RngLike, derive_rng, ensure_rng

__all__ = ["MinedItemset", "private_top_c_itemsets"]


@dataclass(frozen=True)
class MinedItemset:
    """One privately selected itemset, with optional noisy support."""

    itemset: Tuple[int, ...]
    noisy_support: Optional[float] = None


def _candidate_itemsets(
    num_items: int, max_size: int, max_candidates: int
) -> List[Tuple[int, ...]]:
    """All itemsets up to *max_size* over items 0..num_items-1, size-major order.

    Data-independent, hence free of privacy cost.  Capped at
    *max_candidates* to keep the candidate universe bounded; the cap cuts the
    largest sizes first (their supports are smallest, so they are the least
    likely winners anyway — and the cap is public).
    """
    candidates: List[Tuple[int, ...]] = []
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(range(num_items), size):
            candidates.append(combo)
            if len(candidates) >= max_candidates:
                return candidates
    return candidates


def private_top_c_itemsets(
    db: TransactionDatabase,
    epsilon: float,
    c: int,
    method: str = "em",
    max_size: int = 2,
    threshold: Optional[float] = None,
    release_counts: bool = False,
    count_budget_fraction: float = 0.5,
    max_candidates: int = 100_000,
    rng: RngLike = None,
) -> List[MinedItemset]:
    """Select the c most frequent itemsets under eps-DP.

    Parameters
    ----------
    method:
        ``"em"`` (recommended — non-interactive setting), ``"svt"``, or
        ``"svt-retraversal"``; SVT methods need *threshold* (a public guess
        at the c-th support).
    release_counts:
        When True, also release Laplace-noised supports of the winners,
        spending ``count_budget_fraction`` of *epsilon* on them.
    """
    if not isinstance(c, (int, np.integer)) or c <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    candidates = _candidate_itemsets(db.num_items, max_size, max_candidates)
    if len(candidates) < c:
        raise InvalidParameterError(
            f"only {len(candidates)} candidate itemsets for c={c}; "
            "raise max_size or max_candidates"
        )
    supports = np.array([db.support(cand) for cand in candidates], dtype=float)

    if release_counts:
        select_eps, count_eps = split_budget(
            epsilon, [1.0 - count_budget_fraction, count_budget_fraction]
        )
    else:
        select_eps, count_eps = float(epsilon), 0.0

    select_rng = derive_rng(rng, "itemsets", "select")
    picked = select_top_c(
        supports,
        select_eps,
        c,
        method=method,
        monotonic=True,  # supports are counting queries (Section 4.3)
        threshold=threshold,
        rng=select_rng,
    )

    if not release_counts:
        return [MinedItemset(itemset=candidates[int(i)]) for i in picked]

    # Laplace release: the c winners' supports compose; each gets eps_count/c.
    count_rng = derive_rng(rng, "itemsets", "counts")
    mech = LaplaceMechanism(count_eps / max(len(picked), 1), sensitivity=1.0)
    out: List[MinedItemset] = []
    for i in picked:
        noisy = float(mech.release(supports[int(i)], rng=count_rng))
        out.append(MinedItemset(itemset=candidates[int(i)], noisy_support=noisy))
    return out
