"""Selective gradient sharing (the Shokri & Shmatikov [17] task).

[17] trains models collaboratively: each participant uploads only the
gradients with the largest magnitudes each round, selected with the
Dwork-Roth SVT (Alg. 2) and released with Laplace noise.  The paper notes c
there ranges from 15 to 140,106 — exactly the regime where Alg. 2's
c-scaled threshold noise hurts most.  This module reproduces the round
structure on a toy logistic-regression problem so the Alg.-2-vs-Alg.-7
utility gap is visible end to end.

Scale handling: gradient coordinates are clipped to ``[-clip, clip]`` so the
per-coordinate query (and release) sensitivity is bounded by
``2 * clip / n`` for an n-record average gradient; magnitude queries
``|g_k|`` have the same bound.  Magnitudes are *not* monotonic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.accounting.composition import split_budget
from repro.core.allocation import BudgetAllocation
from repro.core.svt import run_svt_batch
from repro.exceptions import InvalidParameterError
from repro.mechanisms.exponential import select_top_c_em
from repro.rng import RngLike, derive_rng, ensure_rng
from repro.variants.dpbook import run_dpbook_batch

__all__ = ["SelectiveSharingRound", "selective_gradient_sharing", "make_regression_data"]


def make_regression_data(
    num_records: int = 500, num_features: int = 20, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic logistic-regression data; returns (X, y, true_weights)."""
    gen = ensure_rng(rng)
    true_w = gen.normal(0.0, 1.0, size=num_features)
    true_w[num_features // 2 :] = 0.0  # sparse truth: selection has something to find
    X = gen.normal(0.0, 1.0, size=(num_records, num_features))
    logits = X @ true_w
    y = (gen.random(num_records) < 1.0 / (1.0 + np.exp(-logits))).astype(float)
    return X, y, true_w


def _logistic_gradient(w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Average logistic-loss gradient."""
    preds = 1.0 / (1.0 + np.exp(-(X @ w)))
    return X.T @ (preds - y) / X.shape[0]


@dataclass(frozen=True)
class SelectiveSharingRound:
    """What one round released: which coordinates, with what noisy values."""

    round_index: int
    selected: np.ndarray
    noisy_values: np.ndarray
    true_magnitudes: np.ndarray


def selective_gradient_sharing(
    X: np.ndarray,
    y: np.ndarray,
    epsilon_per_round: float,
    c: int,
    rounds: int = 5,
    selector: str = "svt-s",
    learning_rate: float = 0.5,
    clip: float = 0.25,
    magnitude_threshold: Optional[float] = None,
    rng: RngLike = None,
) -> Tuple[np.ndarray, List[SelectiveSharingRound]]:
    """Train with per-round private selection + release of c gradient coords.

    Parameters
    ----------
    selector:
        ``"svt-s"`` (Alg. 7, 1:c^(2/3)), ``"svt-dpbook"`` (Alg. 2, what [17]
        actually used), or ``"em"``.
    magnitude_threshold:
        The SVT threshold on |g_k|; defaults to ``clip / 4`` (a public
        constant).  Ignored by EM.

    Returns the final weights and the per-round release log.  Each round
    spends *epsilon_per_round*: half on selection, half on the Laplace
    release of the selected coordinates (sequential composition across
    rounds is the caller's accounting).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.shape != (X.shape[0],):
        raise InvalidParameterError("X must be (n, d) and y (n,)")
    if selector not in ("svt-s", "svt-dpbook", "em"):
        raise InvalidParameterError(f"unknown selector {selector!r}")
    if clip <= 0:
        raise InvalidParameterError("clip must be > 0")
    n, d = X.shape
    if c > d:
        raise InvalidParameterError(f"c={c} exceeds {d} gradient coordinates")
    sensitivity = 2.0 * clip / n  # clipped average-gradient coordinate
    threshold = clip / 4.0 if magnitude_threshold is None else float(magnitude_threshold)

    w = np.zeros(d)
    log: List[SelectiveSharingRound] = []
    for round_index in range(rounds):
        grad = np.clip(_logistic_gradient(w, X, y), -clip, clip)
        magnitudes = np.abs(grad)
        select_eps, release_eps = split_budget(epsilon_per_round, [1.0, 1.0])
        sel_rng = derive_rng(rng, "grad-select", round_index)
        if selector == "em":
            selected = select_top_c_em(
                magnitudes, select_eps, c, sensitivity=sensitivity, rng=sel_rng
            )
        elif selector == "svt-dpbook":
            result = run_dpbook_batch(
                magnitudes,
                select_eps,
                c,
                thresholds=threshold,
                sensitivity=sensitivity,
                rng=sel_rng,
            )
            selected = np.asarray(result.positives, dtype=np.int64)
        else:
            allocation = BudgetAllocation.from_ratio(
                select_eps, c, ratio="optimal", monotonic=False
            )
            result = run_svt_batch(
                magnitudes,
                allocation,
                c,
                thresholds=threshold,
                sensitivity=sensitivity,
                rng=sel_rng,
            )
            selected = np.asarray(result.positives, dtype=np.int64)

        release_rng = derive_rng(rng, "grad-release", round_index)
        if selected.size:
            scale = selected.size * sensitivity / release_eps
            noisy = grad[selected] + release_rng.laplace(scale=scale, size=selected.size)
        else:
            noisy = np.empty(0)
        log.append(
            SelectiveSharingRound(
                round_index=round_index,
                selected=selected,
                noisy_values=noisy,
                true_magnitudes=magnitudes[selected] if selected.size else np.empty(0),
            )
        )
        # The "server" applies only the released (noisy) coordinates.
        update = np.zeros(d)
        if selected.size:
            update[selected] = noisy
        w = w - learning_rate * update
    return w, log
