"""Private feature selection for classification (the Stoddard et al. [18] task).

[18] scored features and kept those whose score beat a perturbed threshold —
using Alg. 5, which adds *no* noise to the scores and is ∞-DP.  Here the same
pipeline runs on correct mechanisms.

Setup: binary feature matrix X (n records × d features) and binary labels y.
Each feature's score is the number of records on which the feature agrees
with the label — a counting query with sensitivity 1, and the family is
monotonic (adding a record raises agreement counts of some features by one
and lowers none).  Selection of the top-c features then goes through EM or
correct SVT, and a trivial majority-vote classifier built on the selected
features measures downstream utility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.selection import select_top_c
from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, derive_rng, ensure_rng

__all__ = ["FeatureSelectionResult", "make_classification_data", "private_feature_selection"]


@dataclass(frozen=True)
class FeatureSelectionResult:
    """Selected features and the accuracy of the downstream vote classifier."""

    selected: np.ndarray
    scores: np.ndarray
    train_accuracy: float
    test_accuracy: float


def make_classification_data(
    num_records: int = 2_000,
    num_features: int = 100,
    num_informative: int = 10,
    flip_probability: float = 0.25,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic binary classification data with a known informative subset.

    The first *num_informative* features equal the label with probability
    ``1 - flip_probability``; the rest are independent coin flips.  Ground
    truth for "which features should be selected" is therefore known, so
    tests can check that private selection finds (mostly) the right ones.
    """
    if num_informative > num_features:
        raise InvalidParameterError("num_informative cannot exceed num_features")
    if not 0.0 <= flip_probability < 0.5:
        raise InvalidParameterError("flip_probability must be in [0, 0.5)")
    gen = ensure_rng(rng)
    y = gen.integers(0, 2, size=num_records)
    X = gen.integers(0, 2, size=(num_records, num_features))
    informative = y[:, None] ^ (
        gen.random((num_records, num_informative)) < flip_probability
    ).astype(int)
    X[:, :num_informative] = informative
    return X.astype(np.int8), y.astype(np.int8)


def agreement_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-feature count of records where the feature value equals the label.

    Sensitivity 1 per feature under add/remove-one-record neighbors;
    monotonic as a family.
    """
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise InvalidParameterError("X must be (n, d) and y (n,) with matching n")
    return (X == y[:, None]).sum(axis=0).astype(float)


def _vote_classifier_accuracy(
    X: np.ndarray, y: np.ndarray, features: np.ndarray
) -> float:
    """Accuracy of majority vote over the selected features (ties -> class 1)."""
    if features.size == 0:
        return float(max(np.mean(y), 1.0 - np.mean(y)))
    votes = X[:, features].mean(axis=1)
    predictions = (votes >= 0.5).astype(int)
    return float(np.mean(predictions == y))


def private_feature_selection(
    X: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    c: int,
    method: str = "em",
    threshold: Optional[float] = None,
    test_fraction: float = 0.3,
    rng: RngLike = None,
) -> FeatureSelectionResult:
    """Select c features privately and report downstream accuracy.

    The split into train/test is performed here (test rows never touch the
    private selection); *threshold* is required for SVT methods and should be
    a public prior (e.g. ``0.6 * n_train``).
    """
    if not 0.0 < test_fraction < 1.0:
        raise InvalidParameterError("test_fraction must be in (0, 1)")
    split_rng = derive_rng(rng, "features", "split")
    n = X.shape[0]
    order = split_rng.permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    if cut <= 0 or cut >= n:
        raise InvalidParameterError("test_fraction leaves an empty split")
    train_idx, test_idx = order[:cut], order[cut:]
    X_train, y_train = X[train_idx], y[train_idx]
    X_test, y_test = X[test_idx], y[test_idx]

    scores = agreement_scores(X_train, y_train)
    select_rng = derive_rng(rng, "features", "select")
    selected = select_top_c(
        scores,
        epsilon,
        c,
        method=method,
        monotonic=True,
        threshold=threshold,
        rng=select_rng,
    )
    return FeatureSelectionResult(
        selected=np.asarray(selected, dtype=np.int64),
        scores=scores,
        train_accuracy=_vote_classifier_accuracy(X_train, y_train, np.asarray(selected)),
        test_accuracy=_vote_classifier_accuracy(X_test, y_test, np.asarray(selected)),
    )
