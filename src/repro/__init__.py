"""repro — a reproduction of *Understanding the Sparse Vector Technique for
Differential Privacy* (Min Lyu, Dong Su, Ninghui Li; VLDB 2017).

Quick tour
----------

The paper's corrected, better-utility SVT (Alg. 1 / Alg. 7)::

    from repro import BudgetAllocation, StandardSVT

    alloc = BudgetAllocation.from_ratio(epsilon=1.0, c=25, ratio="optimal")
    svt = StandardSVT(alloc, sensitivity=1.0, c=25, rng=0)
    answer = svt.process(true_answer=431.0, threshold=400.0)   # ⊤ or ⊥

Private top-c selection (non-interactive setting — Section 5 recommends EM)::

    from repro import select_top_c
    winners = select_top_c(scores, epsilon=0.1, c=50, method="em",
                           monotonic=True, rng=0)

The six Figure-1 variants, including the broken ones (opt-in required)::

    from repro.variants import get_variant
    result = get_variant("alg6").run(scores, epsilon=0.1, c=50,
                                     thresholds=100.0, allow_non_private=True)

Reproducing the paper's evaluation::

    from repro.experiments import run_figure4, run_figure5
"""

from repro.accounting import BudgetLedger, PrivacyBudget, split_budget
from repro.core import (
    ABOVE,
    BELOW,
    BudgetAllocation,
    Response,
    SVTResult,
    StandardSVT,
    allocate,
    run_svt,
    run_svt_batch,
    select_top_c,
    svt_alg1,
    svt_retraversal,
)
from repro.data import (
    ScoreDataset,
    TransactionDatabase,
    aol_like,
    bms_pos_like,
    generate_dataset,
    kosarak_like,
    zipf_like,
)
from repro.exceptions import (
    BudgetExhaustedError,
    DatasetError,
    InvalidParameterError,
    NonPrivateMechanismError,
    PrivacyError,
    QueryError,
    ReproError,
)
from repro.mechanisms import (
    ExponentialMechanism,
    LaplaceMechanism,
    report_noisy_max,
    select_top_c_em,
)
from repro.metrics import false_negative_rate, score_error_rate, selection_report

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ABOVE",
    "BELOW",
    "Response",
    "SVTResult",
    "StandardSVT",
    "BudgetAllocation",
    "allocate",
    "svt_alg1",
    "run_svt",
    "run_svt_batch",
    "svt_retraversal",
    "select_top_c",
    # mechanisms
    "LaplaceMechanism",
    "ExponentialMechanism",
    "select_top_c_em",
    "report_noisy_max",
    # accounting
    "PrivacyBudget",
    "BudgetLedger",
    "split_budget",
    # data
    "ScoreDataset",
    "TransactionDatabase",
    "bms_pos_like",
    "kosarak_like",
    "aol_like",
    "zipf_like",
    "generate_dataset",
    # metrics
    "false_negative_rate",
    "score_error_rate",
    "selection_report",
    # errors
    "ReproError",
    "PrivacyError",
    "BudgetExhaustedError",
    "NonPrivateMechanismError",
    "InvalidParameterError",
    "DatasetError",
    "QueryError",
]
