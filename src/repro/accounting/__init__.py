"""Privacy budget accounting.

SVT's selling point is precisely a budget-accounting subtlety — negative
answers are "free" — so the library carries an explicit accounting layer.
:class:`PrivacyBudget` is a simple allowance that mechanisms draw from;
:class:`BudgetLedger` additionally records who spent what, which the
interactive substrate uses to demonstrate the iterative-construction pattern
(spend only on hard queries).
"""

from repro.accounting.budget import BudgetLedger, BudgetPool, LedgerEntry, PrivacyBudget
from repro.accounting.composition import (
    advanced_composition_epsilon,
    basic_composition,
    max_rounds_advanced,
    split_budget,
)

__all__ = [
    "PrivacyBudget",
    "BudgetLedger",
    "BudgetPool",
    "LedgerEntry",
    "basic_composition",
    "advanced_composition_epsilon",
    "max_rounds_advanced",
    "split_budget",
]
