"""Privacy budgets and spend ledgers."""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.exceptions import BudgetExhaustedError, InvalidParameterError

__all__ = ["PrivacyBudget", "LedgerEntry", "BudgetLedger", "BudgetPool"]

# Spends are validated against the remaining budget with a small absolute
# slack so that splitting eps into parts that sum back to eps (e.g.
# eps1 = eps/2, eps2 = eps - eps1) never trips on floating-point dust.
_EPS_SLACK = 1e-9


class PrivacyBudget:
    """A finite epsilon allowance under sequential composition.

    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.25)
    >>> budget.remaining
    0.75
    >>> budget.can_spend(0.8)
    False
    """

    def __init__(self, epsilon: float) -> None:
        epsilon = float(epsilon)
        if epsilon <= 0.0 or not math.isfinite(epsilon):
            raise InvalidParameterError(f"total epsilon must be finite and > 0, got {epsilon!r}")
        self._total = epsilon
        self._spent = 0.0
        self._closed = False

    @property
    def total(self) -> float:
        return self._total

    @property
    def spent(self) -> float:
        return self._spent

    @property
    def remaining(self) -> float:
        return max(0.0, self._total - self._spent)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` returned the remainder; no further spends."""
        return self._closed

    def can_spend(self, epsilon: float) -> bool:
        return not self._closed and float(epsilon) <= self.remaining + _EPS_SLACK

    def close(self) -> float:
        """Shut the budget and return the unspent remainder.

        Used by session eviction: the remainder goes back to the tenant's
        global allowance, and the closed budget rejects every further spend
        (idempotent — a second close returns 0).
        """
        if self._closed:
            return 0.0
        amount = self.remaining
        self._closed = True
        return amount

    def spend(self, epsilon: float) -> None:
        """Consume *epsilon* of the budget; raise if not enough remains."""
        epsilon = float(epsilon)
        if epsilon < 0.0 or not math.isfinite(epsilon):
            raise InvalidParameterError(f"spend amount must be finite and >= 0, got {epsilon!r}")
        if not self.can_spend(epsilon):
            raise BudgetExhaustedError(requested=epsilon, remaining=self.remaining)
        self._spent = min(self._total, self._spent + epsilon)

    def reserve(self, fraction: float) -> "PrivacyBudget":
        """Carve out a sub-budget of ``fraction * remaining`` and spend it here.

        Handy for the two-phase structure of Alg. 7 where ``eps1 + eps2`` goes
        to the indicator vector and ``eps3`` to the numeric answers.
        """
        if not 0.0 < fraction <= 1.0:
            raise InvalidParameterError("fraction must be in (0, 1]")
        amount = self.remaining * fraction
        if amount <= 0.0:
            raise BudgetExhaustedError(requested=amount, remaining=self.remaining)
        self.spend(amount)
        return PrivacyBudget(amount)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivacyBudget(total={self._total:g}, spent={self._spent:g})"


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded spend: which mechanism, how much, and why."""

    mechanism: str
    epsilon: float
    note: str = ""


@dataclass
class BudgetLedger:
    """A :class:`PrivacyBudget` that remembers every spend.

    The interactive example uses the ledger to show that a long run of
    below-threshold queries costs a single SVT charge rather than one Laplace
    charge per query.
    """

    budget: PrivacyBudget
    entries: List[LedgerEntry] = field(default_factory=list)
    released: float = 0.0

    @classmethod
    def with_total(cls, epsilon: float) -> "BudgetLedger":
        return cls(budget=PrivacyBudget(epsilon))

    def release_remaining(self, note: str = "") -> float:
        """Close the budget and hand back whatever was never spent.

        The session-eviction hook: the unspent remainder is recorded in
        ``released`` (and returned so the caller can credit it upstream),
        and the underlying budget rejects all further charges.  Idempotent.
        """
        amount = self.budget.close()
        if amount > 0.0:
            self.released += amount
        return amount

    def charge(self, mechanism: str, epsilon: float, note: str = "") -> None:
        self.budget.spend(epsilon)
        self.entries.append(LedgerEntry(mechanism=mechanism, epsilon=float(epsilon), note=note))

    @property
    def remaining(self) -> float:
        return self.budget.remaining

    @property
    def spent(self) -> float:
        return self.budget.spent

    def spend_by_mechanism(self) -> dict:
        """Total epsilon per mechanism name."""
        totals: dict = {}
        for entry in self.entries:
            totals[entry.mechanism] = totals.get(entry.mechanism, 0.0) + entry.epsilon
        return totals

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class BudgetPool:
    """A tenant-level epsilon allowance funding many per-lane budgets.

    A multi-budget tenant doesn't get ``lanes × epsilon`` for free: every
    lane's whole budget is *drawn* from one finite pool when the lane opens
    (worst-case sequential composition — the lane may spend it all), and
    whatever a closed lane never spent is *refunded*.  The pool is the
    tenant's true total exposure: ``drawn - refunded <= total`` at all
    times, no matter how many lanes opened and closed.

    Thread-safe: the concurrent runtime opens and evicts lanes from the
    drain loop while ``open`` ops arrive from connection handlers.
    """

    def __init__(self, epsilon: float) -> None:
        epsilon = float(epsilon)
        if epsilon <= 0.0 or not math.isfinite(epsilon):
            raise InvalidParameterError(
                f"pool epsilon must be finite and > 0, got {epsilon!r}"
            )
        self._total = epsilon
        self._drawn = 0.0
        self._refunded = 0.0
        self._lock = threading.Lock()

    @classmethod
    def restore(cls, total: float, drawn: float, refunded: float) -> "BudgetPool":
        """Rebuild a pool at a persisted position (durable-store recovery).

        The invariants the live methods enforce are re-checked on the way
        in, so a corrupted snapshot cannot mint epsilon.
        """
        pool = cls(total)
        drawn = float(drawn)
        refunded = float(refunded)
        if drawn < 0.0 or refunded < 0.0 or not (math.isfinite(drawn) and math.isfinite(refunded)):
            raise InvalidParameterError(
                f"pool state must be finite and >= 0, got drawn={drawn!r}, "
                f"refunded={refunded!r}"
            )
        if refunded > drawn + _EPS_SLACK:
            raise InvalidParameterError("refunded exceeds what was ever drawn")
        if drawn - refunded > pool._total + _EPS_SLACK:
            raise InvalidParameterError("net drawn exceeds the pool total")
        pool._drawn = drawn
        pool._refunded = refunded
        return pool

    @property
    def total(self) -> float:
        return self._total

    @property
    def drawn(self) -> float:
        """Gross epsilon handed out to lanes (refunds not subtracted)."""
        return self._drawn

    @property
    def refunded(self) -> float:
        return self._refunded

    @property
    def remaining(self) -> float:
        return max(0.0, self._total - self._drawn + self._refunded)

    def draw(self, epsilon: float) -> None:
        """Reserve *epsilon* for a new lane; raise if the pool can't cover it."""
        epsilon = float(epsilon)
        if epsilon <= 0.0 or not math.isfinite(epsilon):
            raise InvalidParameterError(
                f"draw amount must be finite and > 0, got {epsilon!r}"
            )
        with self._lock:
            if epsilon > self.remaining + _EPS_SLACK:
                raise BudgetExhaustedError(requested=epsilon, remaining=self.remaining)
            self._drawn += epsilon

    def refund(self, epsilon: float) -> None:
        """Return a closed lane's unspent remainder to the pool."""
        epsilon = float(epsilon)
        if epsilon < 0.0 or not math.isfinite(epsilon):
            raise InvalidParameterError(
                f"refund amount must be finite and >= 0, got {epsilon!r}"
            )
        with self._lock:
            if self._refunded + epsilon > self._drawn + _EPS_SLACK:
                raise InvalidParameterError(
                    "refund exceeds what was ever drawn from the pool"
                )
            self._refunded += epsilon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BudgetPool(total={self._total:g}, drawn={self._drawn:g}, "
            f"refunded={self._refunded:g})"
        )
