"""Composition theorems.

The paper restricts attention to pure eps-DP (Section 3.4) but mentions the
advanced composition theorem of Dwork, Rothblum & Vadhan [9]:

    running k eps-DP mechanisms satisfies (eps', delta')-DP with
    eps' = sqrt(2 k ln(1/delta')) * eps + k * eps * (e^eps - 1).

We implement both basic and advanced composition so the accounting layer can
report either bound, plus the inverse question (how many rounds fit a target).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.exceptions import InvalidParameterError

__all__ = [
    "basic_composition",
    "advanced_composition_epsilon",
    "max_rounds_advanced",
    "split_budget",
]


def basic_composition(epsilons: Sequence[float]) -> float:
    """Sequential composition: total epsilon is the sum."""
    total = 0.0
    for eps in epsilons:
        eps = float(eps)
        if eps < 0.0 or not math.isfinite(eps):
            raise InvalidParameterError(f"epsilon values must be finite and >= 0, got {eps!r}")
        total += eps
    return total


def advanced_composition_epsilon(epsilon: float, k: int, delta: float) -> float:
    """Total eps' for k rounds of eps-DP under (eps', delta)-advanced composition."""
    epsilon = float(epsilon)
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    if not isinstance(k, (int,)) or k <= 0:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    if not 0.0 < delta < 1.0:
        raise InvalidParameterError(f"delta must be in (0, 1), got {delta!r}")
    return math.sqrt(2.0 * k * math.log(1.0 / delta)) * epsilon + k * epsilon * (
        math.exp(epsilon) - 1.0
    )


def max_rounds_advanced(per_round_epsilon: float, total_epsilon: float, delta: float) -> int:
    """Largest k with ``advanced_composition_epsilon(eps, k, delta) <= total_epsilon``.

    Monotone in k, so a doubling search followed by bisection is exact.
    """
    per_round_epsilon = float(per_round_epsilon)
    total_epsilon = float(total_epsilon)
    if per_round_epsilon <= 0.0 or total_epsilon <= 0.0:
        raise InvalidParameterError("epsilons must be > 0")
    if advanced_composition_epsilon(per_round_epsilon, 1, delta) > total_epsilon:
        return 0
    lo, hi = 1, 2
    while advanced_composition_epsilon(per_round_epsilon, hi, delta) <= total_epsilon:
        lo, hi = hi, hi * 2
        if hi > 10**9:  # pragma: no cover - absurd budgets
            return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if advanced_composition_epsilon(per_round_epsilon, mid, delta) <= total_epsilon:
            lo = mid
        else:
            hi = mid
    return lo


def split_budget(epsilon: float, weights: Sequence[float]) -> List[float]:
    """Split *epsilon* proportionally to *weights* (sum preserved to ~1 ulp).

    ``split_budget(eps, [1, (2*c)**(2/3)])`` is how Alg. 7 consumers turn the
    Section-4.2 allocation ratio into concrete ``eps1, eps2`` values.
    """
    epsilon = float(epsilon)
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")
    ws = [float(w) for w in weights]
    if not ws or any((w <= 0.0 or not math.isfinite(w)) for w in ws):
        raise InvalidParameterError("weights must be a non-empty sequence of finite positives")
    total_weight = sum(ws)
    parts = [epsilon * w / total_weight for w in ws]
    # Fold the floating-point residual into the largest part, where it is
    # relatively smallest; the final sum matches epsilon to ~1 ulp.
    residual = epsilon - sum(parts)
    parts[parts.index(max(parts))] += residual
    return parts
