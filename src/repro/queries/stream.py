"""Interactive query streams.

In the interactive setting the analyst submits queries one at a time and may
adapt later queries to earlier answers.  :class:`QueryStream` is a small
bookkeeping object pairing queries with per-query thresholds and recording
what was asked — the interactive substrate (:mod:`repro.interactive`) builds
on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import QueryError
from repro.queries.base import Query

__all__ = ["QueryStream"]


@dataclass
class QueryStream:
    """An append-only log of (query, threshold) pairs.

    The stream does not evaluate anything itself; mechanisms pull from it and
    the analyst appends to it, which models the adaptivity of the interactive
    setting without entangling data access with bookkeeping.
    """

    entries: List[Tuple[Query, float]] = field(default_factory=list)

    def submit(self, query: Query, threshold: float = 0.0) -> int:
        """Append a query; returns its position in the stream."""
        if not isinstance(query, Query):
            raise QueryError("submit() expects a Query instance")
        self.entries.append((query, float(threshold)))
        return len(self.entries) - 1

    def __iter__(self) -> Iterator[Tuple[Query, float]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def max_sensitivity(self) -> float:
        """The largest sensitivity among submitted queries (SVT's Delta)."""
        if not self.entries:
            return 0.0
        return max(q.sensitivity for q, _ in self.entries)

    @property
    def all_monotonic(self) -> bool:
        """True when every submitted query declares monotonicity."""
        return bool(self.entries) and all(q.monotonic for q, _ in self.entries)
