"""Query abstractions.

SVT consumes a stream of numeric query answers with bounded sensitivity.
This package provides the query objects the applications use (support /
predicate counting queries over a :class:`~repro.data.transaction_db.TransactionDatabase`),
the monotonicity contract from Section 4.3, and stream helpers for the
interactive setting — including the threshold-to-zero reduction from the
Figure 1 footnote.
"""

from repro.queries.base import Query, queries_are_monotonic, reduce_to_zero_threshold
from repro.queries.counting import (
    ItemSupportQuery,
    ItemsetSupportQuery,
    PredicateCountQuery,
)
from repro.queries.stream import QueryStream

__all__ = [
    "Query",
    "queries_are_monotonic",
    "reduce_to_zero_threshold",
    "ItemSupportQuery",
    "ItemsetSupportQuery",
    "PredicateCountQuery",
    "QueryStream",
]
