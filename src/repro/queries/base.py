"""The query protocol and Section 4.3's monotonicity contract."""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import QueryError

__all__ = ["Query", "queries_are_monotonic", "reduce_to_zero_threshold"]


class Query(abc.ABC):
    """A numeric query with bounded global sensitivity.

    Subclasses declare their sensitivity and whether they are *monotonic*:
    between any pair of neighboring datasets, all answers of a monotonic
    query family move in the same direction (Section 4.3).  Counting queries
    under add/remove-one-record neighbors are the canonical example, and for
    them SVT needs only ``Lap(c*Delta/eps2)`` query noise (Theorem 5).
    """

    #: Global sensitivity Delta of this query.
    sensitivity: float = 1.0
    #: Whether this query participates in a monotonic family.
    monotonic: bool = False

    @abc.abstractmethod
    def evaluate(self, dataset) -> float:
        """The true (non-private) answer on *dataset*."""

    def __call__(self, dataset) -> float:
        return self.evaluate(dataset)


def queries_are_monotonic(
    queries: Sequence[Query],
    dataset,
    neighbor,
) -> bool:
    """Empirically check the Section-4.3 monotonicity condition on one pair.

    Returns True when no two queries move in opposite directions between
    *dataset* and *neighbor*.  (A True result on one pair is evidence, not
    proof — the contract is a promise about *all* neighbor pairs.)
    """
    diffs = [q.evaluate(dataset) - q.evaluate(neighbor) for q in queries]
    has_up = any(d > 0 for d in diffs)
    has_down = any(d < 0 for d in diffs)
    return not (has_up and has_down)


def reduce_to_zero_threshold(
    answers: Union[Sequence[float], np.ndarray],
    thresholds: Union[float, Sequence[float]],
) -> Tuple[np.ndarray, float]:
    """The Figure 1 footnote reduction: per-query thresholds are syntax sugar.

    Given answers ``q_i`` and thresholds ``T_i``, define ``r_i = q_i - T_i``
    and threshold at 0; the SVT outcome distribution is identical.  Returns
    ``(r, 0.0)``.  Useful for implementations and proofs that only consider a
    single fixed threshold.
    """
    values = np.asarray(answers, dtype=float)
    if values.ndim != 1:
        raise QueryError("answers must be a 1-D sequence")
    thr = np.asarray(thresholds, dtype=float)
    if thr.ndim == 0:
        reduced = values - float(thr)
    elif thr.ndim == 1 and thr.size >= values.size:
        reduced = values - thr[: values.size]
    else:
        raise QueryError("thresholds must be a scalar or have one entry per answer")
    return reduced, 0.0
