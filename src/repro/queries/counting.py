"""Counting queries over transaction databases.

All three query types have global sensitivity 1 under add/remove-one-record
neighbors and are monotonic in the Section-4.3 sense (adding a record can
only increase counts).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Tuple

from repro.data.transaction_db import TransactionDatabase
from repro.exceptions import QueryError
from repro.queries.base import Query

__all__ = ["ItemSupportQuery", "ItemsetSupportQuery", "PredicateCountQuery"]


class ItemSupportQuery(Query):
    """Support of a single item: how many transactions contain it."""

    sensitivity = 1.0
    monotonic = True

    def __init__(self, item: int) -> None:
        item = int(item)
        if item < 0:
            raise QueryError("item ids are non-negative integers")
        self.item = item

    def evaluate(self, dataset: TransactionDatabase) -> float:
        return float(dataset.support((self.item,)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ItemSupportQuery(item={self.item})"


class ItemsetSupportQuery(Query):
    """Support of an itemset — the query family of Lee & Clifton [13]."""

    sensitivity = 1.0
    monotonic = True

    def __init__(self, itemset: Iterable[int]) -> None:
        items: FrozenSet[int] = frozenset(int(i) for i in itemset)
        if not items:
            raise QueryError("itemset must be non-empty")
        if any(i < 0 for i in items):
            raise QueryError("item ids are non-negative integers")
        self.itemset: Tuple[int, ...] = tuple(sorted(items))

    def evaluate(self, dataset: TransactionDatabase) -> float:
        return float(dataset.support(self.itemset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ItemsetSupportQuery(itemset={self.itemset})"


class PredicateCountQuery(Query):
    """Count of transactions satisfying an arbitrary predicate.

    The predicate must be a pure function of a single transaction; then the
    count has sensitivity 1 and the family is monotonic.
    """

    sensitivity = 1.0
    monotonic = True

    def __init__(self, predicate: Callable[[FrozenSet[int]], bool], name: str = "") -> None:
        if not callable(predicate):
            raise QueryError("predicate must be callable")
        self.predicate = predicate
        self.name = name or getattr(predicate, "__name__", "predicate")

    def evaluate(self, dataset: TransactionDatabase) -> float:
        return float(sum(1 for t in dataset if self.predicate(t)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PredicateCountQuery(name={self.name!r})"
