"""Lazy score backends: the full query universe without the full array.

The paper's headline experiments run over the AOL item universe — 2,290,685
items — and every layer of the engine used to assume the score axis is one
dense in-memory array.  A :class:`ScoreSource` replaces that assumption with
the minimal out-of-core contract: a length ``n``, a dtype, and
``block(lo, hi)`` returning any requested slice as a fresh ndarray.  Blocks
must be *recomputable* — reading the same range twice returns the same
values, regardless of what was read in between — because the tiled engine
(:mod:`repro.engine.tiled`) re-reads score tiles once per retraversal pass
and once per epsilon-grid cell rather than caching them.

Three concrete sources cover the deployment shapes:

* :class:`DenseScores` — wraps an in-memory array (the transparent upgrade
  path: :func:`as_score_source` turns any array-like into one);
* :class:`GeneratorScores` — distribution-backed: each fixed-size tile is
  derived from its own ``(seed, tile-index)`` coordinates, so tiles are
  recomputable and independent of visit order, and the full AOL-scale
  universe costs no resident memory at all;
* :class:`MemmapScores` — a file of raw scores mapped read-only, for score
  vectors that exist on disk but not in RAM.

:func:`topc_stats` computes the true top-c reference (sum, boundary value,
strict-above count) in one streaming pass — everything the SER/FNR metrics
need from the score multiset — and :class:`SourceDataset` adapts a source to
the experiment harness's dataset protocol.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import derive_rng

__all__ = [
    "ScoreSource",
    "DenseScores",
    "GeneratorScores",
    "MemmapScores",
    "SourceDataset",
    "as_score_source",
    "topc_values",
    "topc_stats",
    "DEFAULT_SCORE_TILE",
]

#: Default aligned tile width for sources that generate (rather than store)
#: their scores, and for streaming reductions over any source.
DEFAULT_SCORE_TILE = 262_144


class ScoreSource:
    """The lazy score contract: ``n`` items, ``block(lo, hi)`` slices.

    Subclasses implement :meth:`block`; everything else (``take``,
    ``to_array``, iteration over aligned tiles) is derived.  ``block`` must
    return a fresh 1-D float ndarray of length ``hi - lo`` and must be a pure
    function of the range — the tiled engine re-reads ranges freely.
    """

    #: Number of items (set by subclasses).
    n: int = 0

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(float)

    def block(self, lo: int, hi: int) -> np.ndarray:
        raise NotImplementedError

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self.n:
            raise InvalidParameterError(
                f"block range [{lo}, {hi}) outside [0, {self.n})"
            )

    def _take_tile(self) -> int:
        """Grouping width for :meth:`take` block reads (sources with their
        own aligned tile override so gathers align with their cache)."""
        return DEFAULT_SCORE_TILE

    def take(self, indices) -> np.ndarray:
        """Scores at arbitrary *indices* (grouped into block reads).

        The default groups the requested indices by aligned tile so each
        tile is materialized at most once; dense and memmap sources override
        with direct fancy indexing.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return np.empty(0, dtype=float)
        if idx.min() < 0 or idx.max() >= self.n:
            raise InvalidParameterError("take indices out of range")
        width = self._take_tile()
        out = np.empty(idx.size, dtype=float)
        tiles = idx // width
        for tile in np.unique(tiles):
            lo = int(tile) * width
            hi = min(lo + width, self.n)
            values = self.block(lo, hi)
            mask = tiles == tile
            out[mask] = values[idx[mask] - lo]
        return out

    def to_array(self) -> np.ndarray:
        """Materialize the whole vector (small-n paths and adapters only)."""
        return self.block(0, self.n)

    def tile_bounds(self, tile: int = DEFAULT_SCORE_TILE):
        """The aligned ``[lo, hi)`` ranges covering the source, in order."""
        if tile <= 0:
            raise InvalidParameterError("tile must be > 0")
        return [(lo, min(lo + tile, self.n)) for lo in range(0, self.n, tile)]

    def __len__(self) -> int:
        return int(self.n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class DenseScores(ScoreSource):
    """An in-memory score vector wrapped in the lazy contract."""

    def __init__(self, scores) -> None:
        arr = np.asarray(scores, dtype=float)
        if arr.ndim != 1:
            raise InvalidParameterError("scores must be a 1-D sequence")
        self._scores = arr
        self.n = int(arr.size)

    def block(self, lo: int, hi: int) -> np.ndarray:
        self._check_range(lo, hi)
        return self._scores[lo:hi].astype(float, copy=False)

    def take(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise InvalidParameterError("take indices out of range")
        return self._scores[idx].astype(float, copy=False)

    def to_array(self) -> np.ndarray:
        return self._scores


#: A tile sampler: ``(rng, lo, hi) -> (hi - lo,) scores`` for one aligned tile.
TileSampler = Callable[[np.random.Generator, int, int], np.ndarray]


def _power_law_tile(params: tuple, rng, lo: int, hi: int) -> np.ndarray:
    """Closed-form power-law supports for one tile (module-level: picklable)."""
    head, alpha, num_records = params
    ranks = np.arange(lo + 1, hi + 1, dtype=float)
    supports = head * ranks ** (-alpha)
    return np.clip(np.rint(supports), 1.0, float(num_records))


class _PowerLawSampler:
    """Picklable wrapper binding :func:`_power_law_tile` to its parameters."""

    def __init__(self, head: float, alpha: float, num_records: int) -> None:
        self.params = (float(head), float(alpha), int(num_records))

    def __call__(self, rng, lo: int, hi: int) -> np.ndarray:
        return _power_law_tile(self.params, rng, lo, hi)


class GeneratorScores(ScoreSource):
    """Distribution-backed scores derived tile by tile from coordinates.

    Each aligned tile ``[k * tile, (k+1) * tile)`` is produced by calling
    ``sampler(rng_k, lo, hi)`` where ``rng_k`` is derived from ``(seed,
    "scores", k)`` alone — never from a live stream — so any tile can be
    recomputed at any time, in any order, on any worker, and always comes
    out identical.  ``block`` assembles arbitrary ranges from the overlapped
    aligned tiles, which keeps results independent of how the engine happens
    to tile the n axis.

    The sampler may ignore its rng entirely (deterministic closed forms like
    :meth:`power_law`); randomized samplers stay reproducible through the
    derived generator.  For ``parallel="process"`` runs the sampler must be
    picklable (a module-level function or a small callable object).
    """

    def __init__(
        self,
        n: int,
        sampler: TileSampler,
        seed: int = 0,
        tile: int = DEFAULT_SCORE_TILE,
    ) -> None:
        if int(n) < 0:
            raise InvalidParameterError("n must be non-negative")
        if int(tile) <= 0:
            raise InvalidParameterError("tile must be > 0")
        self.n = int(n)
        self._sampler = sampler
        self._seed = int(seed)
        self._tile = int(tile)
        # One-tile cache: the service hot path reads single items, and the
        # engine re-reads the same tile across passes/epsilons — without it
        # every scalar read would regenerate a full aligned tile.
        self._cached_k: Optional[int] = None
        self._cached_values: Optional[np.ndarray] = None

    @classmethod
    def power_law(
        cls,
        n: int,
        head_support: float,
        alpha: float,
        num_records: int,
        seed: int = 0,
        tile: int = DEFAULT_SCORE_TILE,
    ) -> "GeneratorScores":
        """The AOL-shape synthetic: ``s_i = clip(rint(head * i^-alpha), 1, R)``.

        A jitter-free :func:`repro.data.generators.power_law_supports`: the
        score of rank i is a pure function of i, so the 2.3M-item universe
        needs no resident array at all.
        """
        if head_support <= 0 or alpha < 0:
            raise InvalidParameterError("head_support must be > 0 and alpha >= 0")
        return cls(n, _PowerLawSampler(head_support, alpha, num_records), seed=seed, tile=tile)

    def _take_tile(self) -> int:
        return self._tile

    def take(self, indices) -> np.ndarray:
        """Gather via the aligned tiles directly — no per-read slice copy.

        With the one-tile cache this makes repeated scalar reads (the
        service streaming path) O(1) after the first touch of a tile.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return np.empty(0, dtype=float)
        if idx.min() < 0 or idx.max() >= self.n:
            raise InvalidParameterError("take indices out of range")
        out = np.empty(idx.size, dtype=float)
        tiles = idx // self._tile
        for k in np.unique(tiles):
            values = self._aligned_tile(int(k))
            mask = tiles == k
            out[mask] = values[idx[mask] - int(k) * self._tile]
        return out

    def _aligned_tile(self, k: int) -> np.ndarray:
        if k == self._cached_k:
            return self._cached_values
        lo = k * self._tile
        hi = min(lo + self._tile, self.n)
        rng = derive_rng(self._seed, "scores", k)
        values = np.asarray(self._sampler(rng, lo, hi), dtype=float)
        if values.shape != (hi - lo,):
            raise InvalidParameterError(
                f"sampler returned shape {values.shape} for tile [{lo}, {hi})"
            )
        self._cached_k, self._cached_values = k, values
        return values

    def block(self, lo: int, hi: int) -> np.ndarray:
        self._check_range(lo, hi)
        if lo == hi:
            return np.empty(0, dtype=float)
        first, last = lo // self._tile, (hi - 1) // self._tile
        parts = [self._aligned_tile(k) for k in range(first, last + 1)]
        out = parts[0] if len(parts) == 1 else np.concatenate(parts)
        start = lo - first * self._tile
        return out[start : start + (hi - lo)].copy()

    def __getstate__(self):
        # Workers regenerate tiles from coordinates; don't ship the cache.
        state = self.__dict__.copy()
        state["_cached_k"] = None
        state["_cached_values"] = None
        return state


class MemmapScores(ScoreSource):
    """Scores stored in a raw binary file, mapped read-only.

    ``path`` holds ``n`` items of *dtype* (default float64) laid out flat —
    what ``array.tofile(path)`` writes.  Blocks are copied out of the map so
    callers can mutate them freely.
    """

    def __init__(self, path, dtype=np.float64, n: Optional[int] = None) -> None:
        self._path = str(path)
        self._dtype = np.dtype(dtype)
        self._map = np.memmap(self._path, dtype=self._dtype, mode="r")
        if n is not None:
            if int(n) > self._map.size:
                raise InvalidParameterError(
                    f"file holds {self._map.size} items, asked for n={n}"
                )
            self._map = self._map[: int(n)]
        self.n = int(self._map.size)

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def block(self, lo: int, hi: int) -> np.ndarray:
        self._check_range(lo, hi)
        # astype always copies: a float64 file would otherwise hand back a
        # read-only view pinning the map, breaking the fresh-ndarray contract.
        return self._map[lo:hi].astype(float)

    def take(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise InvalidParameterError("take indices out of range")
        return np.asarray(self._map[idx], dtype=float)

    def __reduce__(self):
        # Re-open the map in the worker instead of pickling the mapped pages.
        return (type(self), (self._path, self._dtype, self.n))


def as_score_source(scores) -> ScoreSource:
    """Coerce *scores* (source, array, or sequence) into a :class:`ScoreSource`."""
    if isinstance(scores, ScoreSource):
        return scores
    return DenseScores(scores)


def topc_values(
    source: Union[ScoreSource, Sequence[float]],
    c: int,
    tile: int = DEFAULT_SCORE_TILE,
) -> np.ndarray:
    """The c highest scores, ascending, from one streaming pass over *source*.

    Matches ``np.sort(scores)[-c:]`` exactly (same value multiset, same
    ascending order) without materializing the score vector.
    """
    src = as_score_source(source)
    if not isinstance(c, (int, np.integer)) or int(c) <= 0:
        raise InvalidParameterError(f"c must be a positive integer, got {c!r}")
    c = int(c)
    if c > src.n:
        raise InvalidParameterError(f"c={c} exceeds the number of candidates {src.n}")
    best = np.empty(0, dtype=float)
    for lo, hi in src.tile_bounds(tile):
        merged = np.concatenate([best, src.block(lo, hi)])
        if merged.size > c:
            merged = merged[np.argpartition(merged, merged.size - c)[merged.size - c :]]
        best = merged
    return np.sort(best)


def topc_stats(
    source: Union[ScoreSource, Sequence[float]],
    c: int,
    tile: int = DEFAULT_SCORE_TILE,
) -> Tuple[float, float, int]:
    """``(top_sum, boundary, slots_above)`` — the SER/FNR top-c reference.

    ``top_sum`` is the ascending-order sum of the c highest scores (the same
    summation order the dense metrics use), ``boundary`` the c-th highest
    score, and ``slots_above`` the number of scores strictly above the
    boundary (every such score is necessarily in the top c, so it is counted
    from the top-c vector alone).
    """
    top = topc_values(source, c, tile)
    boundary = float(top[0])
    if not math.isfinite(boundary):
        raise InvalidParameterError("top-c scores must be finite")
    return float(top.sum()), boundary, int(np.count_nonzero(top > boundary))


class SourceDataset:
    """Adapter giving a lazy :class:`ScoreSource` the dataset harness protocol.

    Provides the pieces :func:`repro.experiments.runner.run_selection_experiment`
    consumes — ``name``, ``supports``, ``num_items``, ``threshold_for_c``,
    ``head`` — with the threshold computed by a streaming top-(c+1) rather
    than a sort of the materialized vector.  ``supports`` does materialize
    (the shuffle-protocol harness is inherently dense in n); pair it with the
    harness's ``max_bytes`` so the (trials, n) working set stays bounded.
    """

    def __init__(self, name: str, source: ScoreSource, num_records: int = 0) -> None:
        self.name = str(name)
        self.source = as_score_source(source)
        self.num_records = int(num_records)

    @property
    def num_items(self) -> int:
        return int(self.source.n)

    @property
    def supports(self) -> np.ndarray:
        return self.source.to_array()

    def top_c_scores(self, c: int) -> np.ndarray:
        if c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c!r}")
        return topc_values(self.source, min(int(c), self.num_items))[::-1]

    def threshold_for_c(self, c: int) -> float:
        """The paper's threshold: average of the c-th and (c+1)-th scores."""
        if c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c!r}")
        if c >= self.num_items:
            if not self.num_items:
                return 0.0
            return float(
                min(self.source.block(lo, hi).min() for lo, hi in self.source.tile_bounds())
            )
        top = topc_values(self.source, int(c) + 1)  # ascending: [c+1-th, c-th, ...]
        return float(top[0] + top[1]) / 2.0

    def head(self, n: int = 300) -> np.ndarray:
        return self.source.block(0, min(int(n), self.num_items))

    def __len__(self) -> int:
        return self.num_items
