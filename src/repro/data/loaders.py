"""Reading and writing transaction data in FIMI ``.dat`` format.

The real BMS-POS and Kosarak datasets circulate in this format (one
transaction per line, space-separated integer item ids), so anyone with the
originals can run the harness on them instead of the synthetic stand-ins.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.data.transaction_db import TransactionDatabase
from repro.exceptions import DatasetError

__all__ = ["load_transactions", "save_transactions"]


def load_transactions(path: Union[str, os.PathLike]) -> TransactionDatabase:
    """Load a FIMI ``.dat`` file into a :class:`TransactionDatabase`.

    Blank lines are skipped; any non-integer token is a hard error (silently
    dropping data from a privacy-sensitive input is worse than failing).
    """
    path = Path(path)
    transactions = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                items = [int(token) for token in stripped.split()]
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{lineno}: malformed transaction line {stripped!r}"
                ) from exc
            transactions.append(items)
    if not transactions:
        raise DatasetError(f"{path}: no transactions found")
    return TransactionDatabase(transactions)


def save_transactions(db: TransactionDatabase, path: Union[str, os.PathLike]) -> None:
    """Write a :class:`TransactionDatabase` as a FIMI ``.dat`` file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for transaction in db:
            handle.write(" ".join(str(i) for i in sorted(transaction)))
            handle.write("\n")
