"""An in-memory transaction database.

This is the substrate under the paper's motivating applications: frequent
itemset mining [13] works over exactly this kind of data (each record is a
set of item ids), and "support" — the number of transactions containing an
itemset — is the canonical monotonic counting query (Section 4.3: under
add/remove-one-tuple neighbors all supports move the same direction, by at
most 1).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError, InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = ["TransactionDatabase"]


class TransactionDatabase:
    """A list of transactions, each a set of non-negative integer item ids.

    Examples
    --------
    >>> db = TransactionDatabase([[0, 1], [1], [0, 1, 2]])
    >>> db.support((1,))
    3
    >>> db.support((0, 1))
    2
    """

    def __init__(self, transactions: Iterable[Iterable[int]]) -> None:
        normalized: List[FrozenSet[int]] = []
        max_item = -1
        for t in transactions:
            items = frozenset(int(i) for i in t)
            if any(i < 0 for i in items):
                raise DatasetError("item ids must be non-negative integers")
            if items:
                max_item = max(max_item, max(items))
            normalized.append(items)
        self._transactions = normalized
        self._num_items = max_item + 1
        self._support_cache: Dict[FrozenSet[int], int] = {}

    # ------------------------------------------------------------------
    # Basic shape.
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self._transactions)

    @property
    def num_items(self) -> int:
        """One plus the largest item id seen (items are 0-indexed)."""
        return self._num_items

    def __len__(self) -> int:
        return self.num_records

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self._transactions)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def support(self, itemset: Iterable[int]) -> int:
        """Number of transactions containing every item of *itemset*.

        Sensitivity 1 under add/remove-one-record neighbors, and monotonic:
        adding a record can only raise supports (by at most 1 each), never
        lower some and raise others.
        """
        key = frozenset(int(i) for i in itemset)
        if not key:
            return self.num_records
        cached = self._support_cache.get(key)
        if cached is not None:
            return cached
        count = sum(1 for t in self._transactions if key <= t)
        self._support_cache[key] = count
        return count

    def item_supports(self) -> np.ndarray:
        """Support of every single item, indexed by item id (vectorized count)."""
        counts = np.zeros(self.num_items, dtype=np.int64)
        for t in self._transactions:
            for item in t:
                counts[item] += 1
        return counts

    def frequent_itemsets(
        self, min_support: int, max_size: int = 3
    ) -> List[Tuple[Tuple[int, ...], int]]:
        """All itemsets up to *max_size* with support >= *min_support* (Apriori).

        The non-private miner; the private applications build on its candidate
        lattice.  Returns (itemset, support) pairs, itemsets as sorted tuples.
        """
        if min_support < 1:
            raise InvalidParameterError("min_support must be >= 1")
        if max_size < 1:
            raise InvalidParameterError("max_size must be >= 1")
        supports = self.item_supports()
        frequent: List[Tuple[Tuple[int, ...], int]] = [
            ((int(i),), int(supports[i]))
            for i in np.nonzero(supports >= min_support)[0]
        ]
        current = [set(fs) for fs, _ in frequent]
        for size in range(2, max_size + 1):
            candidates = self._apriori_candidates(current, size)
            next_level: List[set] = []
            for cand in candidates:
                sup = self.support(cand)
                if sup >= min_support:
                    frequent.append((tuple(sorted(cand)), sup))
                    next_level.append(cand)
            if not next_level:
                break
            current = next_level
        return frequent

    @staticmethod
    def _apriori_candidates(prev_level: List[set], size: int) -> List[set]:
        """Join step of Apriori: unions of prev-level sets that have size *size*."""
        seen: set = set()
        out: List[set] = []
        for a, b in combinations(prev_level, 2):
            cand = a | b
            if len(cand) == size:
                key = frozenset(cand)
                if key not in seen:
                    seen.add(key)
                    out.append(set(cand))
        return out

    # ------------------------------------------------------------------
    # Neighbors (for privacy tests).
    # ------------------------------------------------------------------
    def with_record(self, record: Iterable[int]) -> "TransactionDatabase":
        """A neighboring database: this one plus one extra record."""
        return TransactionDatabase([*self._transactions, record])

    def without_record(self, index: int) -> "TransactionDatabase":
        """A neighboring database: this one minus the record at *index*."""
        if not 0 <= index < self.num_records:
            raise InvalidParameterError(f"record index {index} out of range")
        rest = self._transactions[:index] + self._transactions[index + 1 :]
        return TransactionDatabase(rest)

    # ------------------------------------------------------------------
    # Synthesis.
    # ------------------------------------------------------------------
    @classmethod
    def synthesize(
        cls,
        num_records: int,
        item_probabilities: Sequence[float],
        max_items_per_record: Optional[int] = None,
        rng: RngLike = None,
    ) -> "TransactionDatabase":
        """Sample a database with independent item occurrences.

        Each record independently contains item i with probability
        ``item_probabilities[i]``; expected supports are then
        ``num_records * p_i``, so a power-law probability vector yields
        the same rank-support shapes as :mod:`repro.data.generators`.
        """
        if num_records <= 0:
            raise InvalidParameterError("num_records must be positive")
        probs = np.asarray(item_probabilities, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise InvalidParameterError("item_probabilities must be a non-empty 1-D sequence")
        if np.any((probs < 0.0) | (probs > 1.0)):
            raise InvalidParameterError("probabilities must lie in [0, 1]")
        gen = ensure_rng(rng)
        occurrence = gen.random((num_records, probs.size)) < probs
        transactions: List[List[int]] = []
        for row in occurrence:
            items = np.nonzero(row)[0]
            if max_items_per_record is not None and items.size > max_items_per_record:
                items = gen.choice(items, size=max_items_per_record, replace=False)
            transactions.append([int(i) for i in items])
        return cls(transactions)
