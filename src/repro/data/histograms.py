"""Histogram substrates and linear-query workloads.

The interactive substrate (private multiplicative weights) operates on
histograms and linear queries; this module provides the standard workload
generators used to exercise it:

* **point queries** — one bin each;
* **range (prefix/interval) queries** — the classic workload for
  hierarchical/MW methods;
* **random linear queries** — weights i.i.d. in [0, 1];
* **marginal-style block queries** — contiguous equal blocks.

Plus a power-law histogram generator matched to the library's score
distributions, so MW experiments see realistic skew.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "power_law_histogram",
    "point_queries",
    "prefix_queries",
    "interval_queries",
    "random_linear_queries",
    "block_queries",
]


def power_law_histogram(
    num_bins: int,
    total: float,
    alpha: float = 1.0,
    shuffle: bool = True,
    rng: RngLike = None,
) -> np.ndarray:
    """A histogram with power-law bin masses summing to *total*.

    ``shuffle=True`` permutes bins so the mass is not sorted by index — range
    queries then see realistic variety.
    """
    if num_bins < 2:
        raise InvalidParameterError("num_bins must be at least 2")
    if total <= 0:
        raise InvalidParameterError("total must be > 0")
    if alpha < 0:
        raise InvalidParameterError("alpha must be >= 0")
    ranks = np.arange(1, num_bins + 1, dtype=float)
    masses = ranks**-alpha
    masses = masses * (total / masses.sum())
    if shuffle:
        gen = ensure_rng(rng)
        masses = masses[gen.permutation(num_bins)]
    return masses


def point_queries(num_bins: int) -> List[np.ndarray]:
    """One indicator query per bin."""
    if num_bins < 1:
        raise InvalidParameterError("num_bins must be >= 1")
    return [np.eye(num_bins)[i] for i in range(num_bins)]


def prefix_queries(num_bins: int) -> List[np.ndarray]:
    """Cumulative prefixes: bins [0, k) for k = 1..num_bins."""
    if num_bins < 1:
        raise InvalidParameterError("num_bins must be >= 1")
    out = []
    for k in range(1, num_bins + 1):
        weights = np.zeros(num_bins)
        weights[:k] = 1.0
        out.append(weights)
    return out


def interval_queries(
    num_bins: int, count: int, rng: RngLike = None, min_width: int = 1
) -> List[np.ndarray]:
    """*count* random intervals [lo, hi) with width >= *min_width*."""
    if num_bins < 1 or count < 1:
        raise InvalidParameterError("num_bins and count must be >= 1")
    if not 1 <= min_width <= num_bins:
        raise InvalidParameterError("min_width must be in [1, num_bins]")
    gen = ensure_rng(rng)
    out = []
    for _ in range(count):
        lo = int(gen.integers(0, num_bins - min_width + 1))
        hi = int(gen.integers(lo + min_width, num_bins + 1))
        weights = np.zeros(num_bins)
        weights[lo:hi] = 1.0
        out.append(weights)
    return out


def random_linear_queries(num_bins: int, count: int, rng: RngLike = None) -> List[np.ndarray]:
    """*count* queries with i.i.d. uniform [0, 1] weights."""
    if num_bins < 1 or count < 1:
        raise InvalidParameterError("num_bins and count must be >= 1")
    gen = ensure_rng(rng)
    return [gen.random(num_bins) for _ in range(count)]


def block_queries(num_bins: int, num_blocks: int) -> List[np.ndarray]:
    """Contiguous equal-ish blocks covering the domain (marginal-style)."""
    if num_bins < 1:
        raise InvalidParameterError("num_bins must be >= 1")
    if not 1 <= num_blocks <= num_bins:
        raise InvalidParameterError("num_blocks must be in [1, num_bins]")
    edges = np.linspace(0, num_bins, num_blocks + 1).astype(int)
    out = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        weights = np.zeros(num_bins)
        weights[lo:hi] = 1.0
        out.append(weights)
    return out
