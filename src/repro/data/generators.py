"""Synthetic dataset generators calibrated to the paper's Table 1 and Figure 3.

Every Section-6 experiment consumes only the vector of item supports (the
query scores), so a dataset here is a :class:`ScoreDataset`: a name, the
Table-1 record/item counts, and a non-increasing integer support vector.

Calibration targets (read off Figure 3, which plots the 300 highest supports
on log-log axes):

* **BMS-POS** — head support ≈ 6×10^4 with a *flat* head (the curve loses
  less than one decade over 300 ranks).
* **Kosarak** — head support ≈ 6×10^5, steep power-law decay.
* **AOL** — head support ≈ 2×10^5, steep decay, and a vast (2.3M item) tail.
* **Zipf** — the paper's own construction: score of the i-th item ∝ 1/i,
  1,000,000 records over 10,000 items.

The generators use a deterministic power-law backbone with optional
multiplicative log-normal jitter (re-sorted, so supports stay monotone).
Support values are clipped to ``[1, num_records]`` — an item's support can
never exceed the number of transactions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import DatasetError, InvalidParameterError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "ScoreDataset",
    "power_law_supports",
    "bms_pos_like",
    "kosarak_like",
    "aol_like",
    "zipf_like",
    "generate_dataset",
    "DATASET_GENERATORS",
]


@dataclass(frozen=True)
class ScoreDataset:
    """A named vector of item supports (query scores), sorted non-increasing.

    ``supports[i]`` is the support of the (i+1)-th most frequent item; rank
    order is the canonical identity of an item here, and the experiment
    harness shuffles presentation order per trial exactly as the paper does
    ("each time randomizing the order of items to be examined").
    """

    name: str
    num_records: int
    supports: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        supports = np.asarray(self.supports)
        if supports.ndim != 1 or supports.size == 0:
            raise DatasetError("supports must be a non-empty 1-D array")
        if np.any(np.diff(supports) > 0):
            raise DatasetError("supports must be sorted in non-increasing order")
        if supports[0] > self.num_records:
            raise DatasetError("an item's support cannot exceed the number of records")
        if supports[-1] < 0:
            raise DatasetError("supports must be non-negative")

    @property
    def num_items(self) -> int:
        return int(self.supports.size)

    def top_c_scores(self, c: int) -> np.ndarray:
        """The true c highest supports (the paper's ``Topc``)."""
        if c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c!r}")
        return self.supports[: min(c, self.num_items)]

    def threshold_for_c(self, c: int) -> float:
        """The paper's threshold choice: average of the c-th and (c+1)-th scores."""
        if c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c!r}")
        if c >= self.num_items:
            return float(self.supports[-1])
        return float(self.supports[c - 1] + self.supports[c]) / 2.0

    def head(self, n: int = 300) -> np.ndarray:
        """The n highest supports (Figure 3 plots n=300)."""
        return self.supports[: min(n, self.num_items)]

    def __len__(self) -> int:
        return self.num_items


def power_law_supports(
    num_items: int,
    num_records: int,
    head_support: float,
    alpha: float,
    jitter: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Build a non-increasing integer support vector ``s_i ≈ head * i^(-alpha)``.

    Parameters
    ----------
    head_support:
        Target support of the most frequent item.
    alpha:
        Power-law exponent (0 = flat, 1 = Zipf).
    jitter:
        Log-normal sigma for multiplicative noise; the noisy vector is
        re-sorted so monotonicity is preserved.
    """
    if num_items <= 0 or num_records <= 0:
        raise InvalidParameterError("num_items and num_records must be positive")
    if head_support <= 0 or alpha < 0 or jitter < 0:
        raise InvalidParameterError("head_support must be > 0; alpha, jitter >= 0")
    ranks = np.arange(1, num_items + 1, dtype=float)
    supports = head_support * ranks ** (-alpha)
    if jitter > 0.0:
        gen = ensure_rng(rng)
        supports = supports * np.exp(gen.normal(0.0, jitter, size=num_items))
    supports = np.clip(np.rint(supports), 1, num_records).astype(np.int64)
    supports[::-1].sort()  # descending in-place
    return supports


def bms_pos_like(rng: RngLike = None, scale: float = 1.0) -> ScoreDataset:
    """Synthetic stand-in for BMS-POS: 515,597 records, 1,657 items, flat head.

    *scale* < 1 shrinks the item universe proportionally (records and supports
    are scaled too) for fast test runs; shapes are preserved.
    """
    return _scaled_power_law(
        name="BMS-POS",
        num_records=515_597,
        num_items=1_657,
        head_support=60_000.0,
        alpha=0.55,
        jitter=0.05,
        rng=rng,
        scale=scale,
    )


def kosarak_like(rng: RngLike = None, scale: float = 1.0) -> ScoreDataset:
    """Synthetic stand-in for Kosarak: 990,002 records, 41,270 items, steep decay."""
    return _scaled_power_law(
        name="Kosarak",
        num_records=990_002,
        num_items=41_270,
        head_support=600_000.0,
        alpha=1.15,
        jitter=0.10,
        rng=rng,
        scale=scale,
    )


def aol_like(rng: RngLike = None, scale: float = 1.0) -> ScoreDataset:
    """Synthetic stand-in for AOL: 647,377 records, 2,290,685 items, huge tail."""
    return _scaled_power_law(
        name="AOL",
        num_records=647_377,
        num_items=2_290_685,
        head_support=180_000.0,
        alpha=1.05,
        jitter=0.10,
        rng=rng,
        scale=scale,
    )


def zipf_like(rng: RngLike = None, scale: float = 1.0) -> ScoreDataset:
    """The paper's Zipf synthetic: 1,000,000 records, 10,000 items, s_i ∝ 1/i.

    Scores are normalized so they sum to the number of records (each record
    "mentions" one item), exactly one natural reading of the construction; the
    head support then comes out near 1×10^5, matching Figure 3.
    """
    num_records = max(1, int(round(1_000_000 * scale)))
    num_items = max(2, int(round(10_000 * scale)))
    ranks = np.arange(1, num_items + 1, dtype=float)
    raw = 1.0 / ranks
    supports = raw * (num_records / raw.sum())
    supports = np.clip(np.rint(supports), 1, num_records).astype(np.int64)
    supports[::-1].sort()
    return ScoreDataset(name="Zipf", num_records=num_records, supports=supports)


def _scaled_power_law(
    name: str,
    num_records: int,
    num_items: int,
    head_support: float,
    alpha: float,
    jitter: float,
    rng: RngLike,
    scale: float,
) -> ScoreDataset:
    if scale <= 0 or scale > 1.0:
        raise InvalidParameterError("scale must be in (0, 1]")
    records = max(1, int(round(num_records * scale)))
    items = max(2, int(round(num_items * scale)))
    head = max(1.0, head_support * scale)
    supports = power_law_supports(
        num_items=items,
        num_records=records,
        head_support=head,
        alpha=alpha,
        jitter=jitter,
        rng=rng,
    )
    return ScoreDataset(name=name, num_records=records, supports=supports)


#: Name → generator, in the paper's presentation order (Table 1).
DATASET_GENERATORS: Dict[str, Callable[..., ScoreDataset]] = {
    "BMS-POS": bms_pos_like,
    "Kosarak": kosarak_like,
    "AOL": aol_like,
    "Zipf": zipf_like,
}


def generate_dataset(name: str, rng: RngLike = None, scale: float = 1.0) -> ScoreDataset:
    """Generate one of the four evaluation datasets by name (case-insensitive)."""
    for key, gen in DATASET_GENERATORS.items():
        if key.lower() == str(name).strip().lower():
            return gen(rng=rng, scale=scale)
    raise InvalidParameterError(
        f"unknown dataset {name!r}; known: {sorted(DATASET_GENERATORS)}"
    )
