"""Data substrates for the evaluation.

The paper's Section 6 evaluates on item frequencies from three real datasets
(BMS-POS, Kosarak, AOL) plus a Zipf synthetic.  The real datasets are not
redistributable here, so :mod:`repro.data.generators` builds synthetic
equivalents calibrated to the paper's Table 1 (record/item counts) and
Figure 3 (rank-vs-support shape); see DESIGN.md §4 for the substitution
rationale.  Real data in FIMI ``.dat`` format drops in via
:mod:`repro.data.loaders` and flows through the same APIs.
"""

from repro.data.generators import (
    DATASET_GENERATORS,
    ScoreDataset,
    aol_like,
    bms_pos_like,
    generate_dataset,
    kosarak_like,
    zipf_like,
)
from repro.data.scores import (
    DenseScores,
    GeneratorScores,
    MemmapScores,
    ScoreSource,
    SourceDataset,
    as_score_source,
    topc_stats,
    topc_values,
)
from repro.data.histograms import (
    block_queries,
    interval_queries,
    point_queries,
    power_law_histogram,
    prefix_queries,
    random_linear_queries,
)
from repro.data.transaction_db import TransactionDatabase
from repro.data.loaders import load_transactions, save_transactions

__all__ = [
    "ScoreDataset",
    "ScoreSource",
    "DenseScores",
    "GeneratorScores",
    "MemmapScores",
    "SourceDataset",
    "as_score_source",
    "topc_stats",
    "topc_values",
    "bms_pos_like",
    "kosarak_like",
    "aol_like",
    "zipf_like",
    "generate_dataset",
    "DATASET_GENERATORS",
    "TransactionDatabase",
    "power_law_histogram",
    "point_queries",
    "prefix_queries",
    "interval_queries",
    "random_linear_queries",
    "block_queries",
    "load_transactions",
    "save_transactions",
]
