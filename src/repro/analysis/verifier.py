"""Exact outcome probabilities for SVT-style mechanisms (the paper's Eq. (5)).

Every variant in Figure 1 produces an output vector whose probability is

    Pr[A(D) = a] = ∫ Pr[rho = z] * f_D(z) * g_D(z) dz                (Eq. 5)

    f_D(z) = prod_{i in I_bot} Pr[q_i(D) + nu_i <  T_i + z]
    g_D(z) = prod_{i in I_top} Pr[q_i(D) + nu_i >= T_i + z]

with `rho ~ Lap(threshold_scale)` and `nu_i ~ Lap(query_scale)` (a point mass
at 0 for Alg. 5).  This module evaluates that integral with adaptive
quadrature, handling the three structural wrinkles among the variants:

* **Alg. 2** refreshes rho after each positive outcome, which factorizes the
  probability into independent per-segment integrals (each segment = a run of
  ⊥ ended by one ⊤);
* **Alg. 3** outputs the noisy answer itself for positives, so the "outcome"
  carries numeric values and the result is a *density*, with the released
  value constraining the integration range (that constraint is precisely why
  Alg. 3 leaks — see Theorem 6);
* **Alg. 5** has no query noise, so f/g become step functions (handled by
  splitting the integration at the jump points).

From outcome probabilities we get privacy ratios and, maximizing over output
patterns, an *exact* lower bound on the epsilon any claimed guarantee must
satisfy — no Monte Carlo error bars.  Tests use this to certify Theorem 2
(Alg. 1 ratios <= e^eps on random instances) and to reproduce Theorems 3, 6,
and 7 quantitatively.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import integrate

from repro.exceptions import InvalidParameterError
from repro.mechanisms.laplace import laplace_cdf, laplace_pdf, laplace_sf
from repro.variants.registry import get_variant

__all__ = [
    "MechanismSpec",
    "spec_for_variant",
    "outcome_probability",
    "privacy_ratio",
    "empirical_epsilon",
]

# Integration half-width in threshold-noise scales.  exp(-60) ~ 9e-27 of tail
# mass per side — far below quadrature tolerance.
_TAIL_WIDTH = 60.0


@dataclass(frozen=True)
class MechanismSpec:
    """Noise structure of one SVT variant, sufficient to evaluate Eq. (5).

    ``threshold_scale`` and ``query_scale`` are the Laplace scales of rho and
    nu_i (``query_scale = 0`` means no query noise).  ``resets_threshold``
    marks Alg. 2's refresh; ``refresh_scale`` is the scale used for refreshed
    rho draws.  ``outputs_numeric`` marks Alg. 3's answer-releasing behavior:
    the released value *is* ``q_i + nu_i`` — correlated with the comparison —
    which truncates the integral and breaks privacy (Theorem 6).

    ``independent_numeric_scale`` models Alg. 7's eps3 phase instead: the
    release is ``q_i + Lap(c*Delta/eps3)`` with *fresh* noise, statistically
    independent of the comparison, so the outcome density factorizes into the
    indicator probability times unconstrained Laplace densities — exactly why
    Theorem 4 goes through where Alg. 3 fails.
    """

    threshold_scale: float
    query_scale: float
    resets_threshold: bool = False
    refresh_scale: Optional[float] = None
    outputs_numeric: bool = False
    independent_numeric_scale: Optional[float] = None

    def __post_init__(self) -> None:
        if self.threshold_scale <= 0.0:
            raise InvalidParameterError("threshold_scale must be > 0")
        if self.query_scale < 0.0:
            raise InvalidParameterError("query_scale must be >= 0")
        if self.resets_threshold and (self.refresh_scale is None or self.refresh_scale <= 0):
            raise InvalidParameterError("resets_threshold requires a positive refresh_scale")
        if self.outputs_numeric and self.query_scale <= 0.0:
            raise InvalidParameterError("numeric outputs require query noise")
        if self.independent_numeric_scale is not None:
            if self.independent_numeric_scale <= 0.0:
                raise InvalidParameterError("independent_numeric_scale must be > 0")
            if self.outputs_numeric:
                raise InvalidParameterError(
                    "a spec releases either correlated (Alg. 3) or independent "
                    "(Alg. 7) numeric answers, not both"
                )


def spec_for_variant(
    key: str, epsilon: float, c: int, sensitivity: float = 1.0
) -> MechanismSpec:
    """Build the :class:`MechanismSpec` for one of the six Figure-1 variants."""
    info = get_variant(key)
    eps1 = epsilon * info.eps1_fraction
    eps2 = epsilon - eps1
    # Alg. 2 scales its query noise with eps1 (see the Figure 1 listing); all
    # others with eps2.  The registry's scale callables take the right one.
    query_eps = eps1 if info.key == "alg2" else eps2
    return MechanismSpec(
        threshold_scale=info.threshold_noise_scale(c, sensitivity, eps1),
        query_scale=info.query_noise_scale(c, sensitivity, query_eps),
        resets_threshold=info.resets_threshold_noise,
        refresh_scale=(c * sensitivity / eps2) if info.resets_threshold_noise else None,
        outputs_numeric=info.outputs_numeric_answer,
    )


def _noise_cdf(x: np.ndarray, scale: float) -> np.ndarray:
    """CDF of the query noise; a unit step when scale == 0 (Alg. 5).

    For the step case, Pr[nu < t] = 1{t > 0} — the paper's strict inequality
    on line 5 means a tie goes to "above"; the boundary is measure-zero under
    any continuous rho so the convention cannot affect integrals.
    """
    if scale == 0.0:
        return (np.asarray(x) > 0.0).astype(float)
    return laplace_cdf(x, scale)


def _noise_sf(x: np.ndarray, scale: float) -> np.ndarray:
    if scale == 0.0:
        return (np.asarray(x) <= 0.0).astype(float)
    return laplace_sf(x, scale)


def _integrate(fn, lo: float, hi: float, points: Sequence[float]) -> float:
    """Adaptive quadrature with interior breakpoints, tolerant of kinks."""
    pts = sorted(p for p in points if lo < p < hi)
    value, _err = integrate.quad(fn, lo, hi, points=pts or None, limit=400)
    return float(value)


def _kink_points(kinks: Sequence[float], query_scale: float) -> list:
    """Breakpoints for the quadrature: each comparison kink plus its skirt.

    When the query noise is much tighter than the threshold noise, the
    factors f/g transition over a window of width ~query_scale around each
    kink — a feature far narrower than the integration interval, which the
    adaptive rule can step over entirely (losing ~1e-3 of mass) unless the
    transition region is pinned with its own breakpoints.
    """
    pts = list(kinks)
    if query_scale > 0.0:
        for k in kinks:
            for m in (1.0, 8.0, 40.0):
                pts.extend((k - m * query_scale, k + m * query_scale))
    return pts


def _segment_probability(
    answers: np.ndarray,
    thresholds: np.ndarray,
    pattern: Sequence[bool],
    spec: MechanismSpec,
    rho_scale: float,
) -> float:
    """∫ p_rho(z) * f(z) * g(z) dz over one constant-rho segment."""
    below = np.array([t for t, flag in zip(thresholds, pattern) if not flag])
    below_q = np.array([q for q, flag in zip(answers, pattern) if not flag])
    above = np.array([t for t, flag in zip(thresholds, pattern) if flag])
    above_q = np.array([q for q, flag in zip(answers, pattern) if flag])

    def integrand(z: float) -> float:
        out = laplace_pdf(z, rho_scale)
        if below.size:
            out *= float(np.prod(_noise_cdf(below + z - below_q, spec.query_scale)))
        if above.size:
            out *= float(np.prod(_noise_sf(above + z - above_q, spec.query_scale)))
        return float(out)

    width = _TAIL_WIDTH * rho_scale
    # Break the quadrature at the comparison kink of every query (and at the
    # step discontinuities when query_scale == 0), plus z = 0 where the rho
    # density itself has a kink — without it quad can report a tight error
    # estimate while missing ~1e-4 of mass on these wide intervals.
    kinks = [0.0] + _kink_points(
        list(below_q - below) + list(above_q - above), spec.query_scale
    )
    return _integrate(integrand, -width, width, kinks)


def _numeric_outcome_density(
    answers: np.ndarray,
    thresholds: np.ndarray,
    pattern: Sequence[bool],
    numeric_values: Sequence[float],
    spec: MechanismSpec,
) -> float:
    """Density of an Alg.-3-style outcome: ⊥s plus released numeric answers.

    For each positive i the released value a_i pins the noise nu_i = a_i - q_i
    (density factor) *and* implies a_i >= T_i + z, truncating the integral to
    z <= min_i (a_i - T_i).  This is the Appendix 10.1 calculation in general
    form.
    """
    numeric_iter = iter(numeric_values)
    below_q, below_t = [], []
    density = 1.0
    z_cap = math.inf
    for q, t, flag in zip(answers, thresholds, pattern):
        if flag:
            a = float(next(numeric_iter))
            density *= float(laplace_pdf(a - q, spec.query_scale))
            z_cap = min(z_cap, a - t)
        else:
            below_q.append(q)
            below_t.append(t)
    below_q_arr = np.asarray(below_q)
    below_t_arr = np.asarray(below_t)

    def integrand(z: float) -> float:
        out = laplace_pdf(z, spec.threshold_scale)
        if below_q_arr.size:
            out *= float(
                np.prod(_noise_cdf(below_t_arr + z - below_q_arr, spec.query_scale))
            )
        return float(out)

    width = _TAIL_WIDTH * spec.threshold_scale
    hi = min(width, z_cap)
    if hi <= -width:
        return 0.0
    kinks = [0.0] + _kink_points(list(below_q_arr - below_t_arr), spec.query_scale)
    return density * _integrate(integrand, -width, hi, kinks)


def outcome_probability(
    spec: MechanismSpec,
    answers: Sequence[float],
    pattern: Sequence[bool],
    thresholds: float | Sequence[float] = 0.0,
    numeric_values: Optional[Sequence[float]] = None,
) -> float:
    """Exact Pr[A(D) = a] (or outcome density for numeric-output variants).

    Parameters
    ----------
    answers:
        True query answers ``q_i(D)`` for the *processed* queries, i.e. the
        transcript length (if the mechanism halts at the c-th positive, the
        pattern simply ends there; the cutoff needs no special handling).
    pattern:
        The output vector: True = positive (⊤ / numeric), False = ⊥.
    numeric_values:
        For ``spec.outputs_numeric``: the released values, one per positive,
        in order.
    """
    answers_arr = np.asarray(answers, dtype=float)
    pattern_list = [bool(p) for p in pattern]
    if answers_arr.ndim != 1 or answers_arr.size != len(pattern_list):
        raise InvalidParameterError("answers and pattern must be 1-D and equal length")
    thr = np.asarray(thresholds, dtype=float)
    if thr.ndim == 0:
        thr = np.full(answers_arr.size, float(thr))
    if thr.size != answers_arr.size:
        raise InvalidParameterError("need one threshold per answer")

    if spec.outputs_numeric:
        if numeric_values is None or len(numeric_values) != sum(pattern_list):
            raise InvalidParameterError(
                "numeric-output spec needs one numeric value per positive"
            )
        return _numeric_outcome_density(answers_arr, thr, pattern_list, numeric_values, spec)

    if spec.independent_numeric_scale is not None and numeric_values is not None:
        # Alg. 7's eps3 phase: independent releases factor out of Eq. (5).
        if len(numeric_values) != sum(pattern_list):
            raise InvalidParameterError("need one numeric value per positive")
        density = 1.0
        numeric_iter = iter(numeric_values)
        for q, flag in zip(answers_arr, pattern_list):
            if flag:
                a = float(next(numeric_iter))
                density *= float(laplace_pdf(a - q, spec.independent_numeric_scale))
        indicator_only = MechanismSpec(
            threshold_scale=spec.threshold_scale,
            query_scale=spec.query_scale,
            resets_threshold=spec.resets_threshold,
            refresh_scale=spec.refresh_scale,
        )
        return density * outcome_probability(
            indicator_only, answers_arr, pattern_list, thr
        )

    if numeric_values is not None:
        raise InvalidParameterError("numeric_values only apply to numeric-output specs")

    if not spec.resets_threshold:
        return _segment_probability(answers_arr, thr, pattern_list, spec, spec.threshold_scale)

    # Alg. 2: independent segments, each ending at a positive; rho is drawn
    # from threshold_scale for the first segment and refresh_scale afterwards.
    probability = 1.0
    start = 0
    segment_index = 0
    for i, flag in enumerate(pattern_list):
        if flag:
            rho_scale = spec.threshold_scale if segment_index == 0 else spec.refresh_scale
            probability *= _segment_probability(
                answers_arr[start : i + 1],
                thr[start : i + 1],
                pattern_list[start : i + 1],
                spec,
                rho_scale,
            )
            start = i + 1
            segment_index += 1
    if start < len(pattern_list):  # trailing all-⊥ segment
        rho_scale = spec.threshold_scale if segment_index == 0 else spec.refresh_scale
        probability *= _segment_probability(
            answers_arr[start:], thr[start:], pattern_list[start:], spec, rho_scale
        )
    return probability


def privacy_ratio(
    spec: MechanismSpec,
    answers_d: Sequence[float],
    answers_d_prime: Sequence[float],
    pattern: Sequence[bool],
    thresholds: float | Sequence[float] = 0.0,
    numeric_values: Optional[Sequence[float]] = None,
) -> float:
    """``Pr[A(D) = a] / Pr[A(D') = a]`` for one neighboring pair and outcome.

    Returns ``inf`` when the denominator is (numerically) zero while the
    numerator is not — the Theorem 3 situation.
    """
    p = outcome_probability(spec, answers_d, pattern, thresholds, numeric_values)
    q = outcome_probability(spec, answers_d_prime, pattern, thresholds, numeric_values)
    if q <= 0.0:
        return math.inf if p > 0.0 else 1.0
    return p / q


def enumerate_valid_patterns(n: int, c: Optional[int] = None):
    """All output transcripts an SVT with cutoff *c* can emit over *n* queries.

    Without a cutoff (``c=None``, Alg. 5/6) every length-n ⊤/⊥ pattern is a
    possible outcome.  With a cutoff, a transcript either processes all n
    queries with fewer than c positives, or ends exactly at the c-th positive
    (possibly before query n).  Yields tuples of bools; their probabilities
    under Eq. (5) sum to 1 — a property test relies on this.
    """
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    if c is None:
        yield from itertools.product([False, True], repeat=n)
        return
    if c <= 0:
        raise InvalidParameterError("c must be positive when given")
    # Full-length transcripts with fewer than c positives.
    for pattern in itertools.product([False, True], repeat=n):
        if sum(pattern) < c:
            yield pattern
    # Halted transcripts: the c-th positive at position L-1 for L = c..n.
    for length in range(c, n + 1):
        for head in itertools.product([False, True], repeat=length - 1):
            if sum(head) == c - 1:
                yield (*head, True)


def empirical_epsilon(
    spec: MechanismSpec,
    answers_d: Sequence[float],
    answers_d_prime: Sequence[float],
    thresholds: float | Sequence[float] = 0.0,
    c: Optional[int] = None,
    max_queries: int = 6,
) -> float:
    """Exact privacy loss ``max_a |ln Pr_D[a] - ln Pr_D'[a]|`` over all outcomes.

    Enumerates every *valid* transcript over the (short) query list (see
    :func:`enumerate_valid_patterns`; pass *c* for variants with a cutoff).
    For numeric-output specs this is not applicable (the outcome space is
    continuous); use :func:`privacy_ratio` with explicit values.
    """
    if spec.outputs_numeric:
        raise InvalidParameterError(
            "empirical_epsilon enumerates discrete patterns; "
            "numeric-output variants need explicit outcomes"
        )
    answers_d = list(answers_d)
    answers_d_prime = list(answers_d_prime)
    n = len(answers_d)
    if n != len(answers_d_prime):
        raise InvalidParameterError("neighboring answer lists must have equal length")
    if n > max_queries:
        raise InvalidParameterError(
            f"{n} queries would enumerate 2^{n} patterns; raise max_queries to confirm"
        )
    thr = np.asarray(thresholds, dtype=float)
    if thr.ndim == 0:
        thr = np.full(n, float(thr))
    worst = 0.0
    for pattern in enumerate_valid_patterns(n, c):
        length = len(pattern)
        ratio = privacy_ratio(
            spec,
            answers_d[:length],
            answers_d_prime[:length],
            pattern,
            thr[:length],
        )
        if ratio == math.inf or ratio <= 0.0:
            return math.inf
        worst = max(worst, abs(math.log(ratio)))
    return worst
