"""Empirical verification of the Section-5 accuracy guarantees.

The analytical comparison (``alpha_SVT`` vs ``alpha_EM``) rests on two
(alpha, beta) guarantees.  This module runs the actual mechanisms on the
exact workload of the analysis — k-1 queries at ``T - alpha`` and one at
``T + alpha`` — and measures the failure rates, confirming:

* SVT (c = Delta = 1) at ``alpha = alpha_SVT(k, beta, eps)`` fails with
  probability at most beta (the bound is loose in practice — also visible);
* EM at ``alpha = alpha_EM(k, beta, eps)`` selects the good query with
  probability at least 1 - beta, and the bound is *tight enough to bite*:
  shrinking alpha well below it pushes the failure rate above beta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.theory import alpha_em, alpha_svt
from repro.core.allocation import BudgetAllocation
from repro.core.svt import run_svt_batch
from repro.exceptions import InvalidParameterError
from repro.mechanisms.exponential import select_top_c_em
from repro.rng import RngLike, derive_rng

__all__ = ["AccuracyCheck", "svt_accuracy_check", "em_accuracy_check"]


@dataclass(frozen=True)
class AccuracyCheck:
    """Empirical failure rate vs the guaranteed beta."""

    mechanism: str
    k: int
    alpha: float
    beta_guaranteed: float
    beta_observed: float
    trials: int

    @property
    def within_guarantee(self) -> bool:
        # One-sided binomial slack: the observed rate may fluctuate above a
        # loose bound's true rate, but must not exceed beta materially.
        slack = 3.0 * np.sqrt(self.beta_guaranteed / max(self.trials, 1))
        return self.beta_observed <= self.beta_guaranteed + slack


def _workload(k: int, threshold: float, alpha: float) -> np.ndarray:
    """k-1 queries at T - alpha, the last at T + alpha (the Section-5 setup)."""
    scores = np.full(k, threshold - alpha)
    scores[-1] = threshold + alpha
    return scores


def svt_accuracy_check(
    k: int,
    beta: float,
    epsilon: float,
    threshold: float = 0.0,
    trials: int = 2_000,
    rng: RngLike = 0,
) -> AccuracyCheck:
    """Run Alg. 7 (c = Delta = 1) on the Section-5 workload at alpha_SVT.

    Failure = any query below ``T - alpha`` answered ⊤, or the final query
    (at ``T + alpha``) answered ⊥ — i.e. the run is not (alpha, beta)-correct
    in the Dwork-Roth Theorem-3.24 sense.
    """
    if trials <= 0:
        raise InvalidParameterError("trials must be positive")
    alpha = alpha_svt(k, beta, epsilon)
    scores = _workload(k, threshold, alpha)
    failures = 0
    for t in range(trials):
        allocation = BudgetAllocation(eps1=epsilon / 2, eps2=epsilon / 2)
        result = run_svt_batch(
            scores,
            allocation,
            c=1,
            thresholds=threshold,
            rng=derive_rng(rng, "svt-acc", t),
        )
        ok = result.positives == [k - 1]
        failures += not ok
    return AccuracyCheck(
        mechanism="svt",
        k=k,
        alpha=alpha,
        beta_guaranteed=beta,
        beta_observed=failures / trials,
        trials=trials,
    )


def em_accuracy_check(
    k: int,
    beta: float,
    epsilon: float,
    threshold: float = 0.0,
    trials: int = 2_000,
    alpha_override: float | None = None,
    rng: RngLike = 0,
) -> AccuracyCheck:
    """Run one EM draw on the Section-5 workload at alpha_EM (or an override).

    Failure = not selecting the unique ``T + alpha`` query.  Uses the
    monotonic exponent ``eps/2``-free form matching the paper's display (one
    selection round, quality = answer, exponent eps/2 — i.e. the general
    exponent with Delta = 1).
    """
    if trials <= 0:
        raise InvalidParameterError("trials must be positive")
    alpha = alpha_em(k, beta, epsilon) if alpha_override is None else float(alpha_override)
    scores = _workload(k, threshold, alpha)
    failures = 0
    for t in range(trials):
        picked = select_top_c_em(
            scores,
            epsilon,
            c=1,
            sensitivity=1.0,
            monotonic=False,  # exponent eps/(2*Delta) as in the Section-5 display
            rng=derive_rng(rng, "em-acc", t),
        )
        failures += int(picked[0]) != k - 1
    return AccuracyCheck(
        mechanism="em",
        k=k,
        alpha=alpha,
        beta_guaranteed=beta,
        beta_observed=failures / trials,
        trials=trials,
    )
