"""Analytical machinery: exact outcome probabilities, utility bounds, GPTT.

* :mod:`repro.analysis.verifier` — numerically integrates the paper's Eq. (5)
  to get *exact* outcome probabilities for each variant, from which privacy
  ratios (and hence eps-DP violations) are computed without Monte Carlo.
* :mod:`repro.analysis.theory` — the Section-5 utility bounds
  (alpha_SVT vs alpha_EM) and related closed forms.
* :mod:`repro.analysis.gptt` — the GPTT model of [2] and a numerical
  demonstration of the subtle error in its non-privacy proof (Section 3.3 /
  Appendix 10.3).
"""

from repro.analysis.theory import (
    alpha_em,
    alpha_svt,
    alpha_ratio,
    em_correct_selection_probability,
)
from repro.analysis.verifier import (
    MechanismSpec,
    empirical_epsilon,
    outcome_probability,
    privacy_ratio,
    spec_for_variant,
)
from repro.analysis.accuracy import (
    AccuracyCheck,
    em_accuracy_check,
    svt_accuracy_check,
)
from repro.analysis.lemma1 import (
    f_side_margin,
    g_side_margin,
    one_side_conflict,
    rho_shift_margin,
)
from repro.analysis.gptt import (
    gptt_counterexample_ratio,
    gptt_kappa,
    broken_proof_would_condemn_alg1,
)

__all__ = [
    "alpha_svt",
    "alpha_em",
    "alpha_ratio",
    "em_correct_selection_probability",
    "MechanismSpec",
    "outcome_probability",
    "privacy_ratio",
    "empirical_epsilon",
    "spec_for_variant",
    "gptt_counterexample_ratio",
    "f_side_margin",
    "g_side_margin",
    "rho_shift_margin",
    "one_side_conflict",
    "AccuracyCheck",
    "svt_accuracy_check",
    "em_accuracy_check",
    "gptt_kappa",
    "broken_proof_would_condemn_alg1",
]
