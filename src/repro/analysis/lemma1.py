"""Numerical verification of the individual proof inequalities (Section 3.1).

The paper's pedagogical contribution is a *decomposed* privacy proof whose
individual steps, checked separately, reveal exactly which shortcut each
broken variant took.  This module makes every step a checkable function:

* Eq. (3):  ``Pr[q(D)+nu < T+z] <= Pr[q(D')+nu < T+(z+Delta)]`` — the
  f-side bound, which holds **even with no query noise** (the observation
  that misled Alg. 5).
* The rho-shift bound:  ``Pr[rho=z] <= e^{eps1} Pr[rho=z+Delta]``.
* Eqs. (8)-(10): the g-side bound ``g_D(z) <= e^{eps2} g_D'(z+Delta)``
  requires query noise of scale ``2c*Delta/eps2``.
* The "one side only" lemma: f needs the shift ``z + Delta`` while the
  symmetric g-side trick would need ``z - Delta`` — a *single* change of
  variable cannot serve both, which is the error shared by Alg. 5/6
  (Section 3.1's closing remark).

All functions return the worst violation margin over a grid (<= 0 means the
inequality holds), so tests can assert them and, just as importantly, assert
that the *insufficient* configurations fail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.mechanisms.laplace import laplace_cdf, laplace_pdf, laplace_sf

__all__ = [
    "f_side_margin",
    "rho_shift_margin",
    "g_side_margin",
    "one_side_conflict",
]


def _grid(width: float, points: int = 2001) -> np.ndarray:
    return np.linspace(-width, width, points)


def f_side_margin(
    q_d: float,
    q_d_prime: float,
    sensitivity: float = 1.0,
    query_scale: float = 0.0,
    threshold: float = 0.0,
    width: float = 30.0,
) -> float:
    """Worst violation of Eq. (3) over a z-grid (<= 0 means it holds).

    ``Pr[q(D)+nu < T+z] - Pr[q(D')+nu < T+(z+Delta)]`` maximized over z.
    Holds whenever ``|q(D) - q(D')| <= Delta`` — including ``query_scale=0``
    (no noise), which is precisely why Lemma 1 alone cannot indict Alg. 5.
    """
    if abs(q_d - q_d_prime) > sensitivity + 1e-12:
        raise InvalidParameterError("answers must differ by at most the sensitivity")
    zs = _grid(width)
    if query_scale == 0.0:
        lhs = (q_d < threshold + zs).astype(float)
        rhs = (q_d_prime < threshold + zs + sensitivity).astype(float)
    else:
        lhs = laplace_cdf(threshold + zs - q_d, query_scale)
        rhs = laplace_cdf(threshold + zs + sensitivity - q_d_prime, query_scale)
    return float(np.max(lhs - rhs))


def rho_shift_margin(eps1: float, sensitivity: float = 1.0, width: float = 30.0) -> float:
    """Worst violation of ``p(z) <= e^{eps1} p(z+Delta)`` for rho ~ Lap(Delta/eps1)."""
    if eps1 <= 0.0:
        raise InvalidParameterError("eps1 must be > 0")
    scale = sensitivity / eps1
    zs = _grid(width * scale)
    lhs = laplace_pdf(zs, scale)
    rhs = math.exp(eps1) * laplace_pdf(zs + sensitivity, scale)
    return float(np.max(lhs - rhs))


def g_side_margin(
    eps2: float,
    c: int,
    query_scale: float,
    sensitivity: float = 1.0,
    monotonic_shift: bool = False,
    width: float = 60.0,
) -> float:
    """Worst violation of the per-positive g-side bound (Eqs. (8)-(10)).

    Checks ``Pr[q(D)+nu >= T+z] <= e^{eps2/c} Pr[q(D')+nu >= T+(z+Delta)]``
    for the extremal neighboring pair ``q(D') = q(D) - Delta`` (the 2*Delta
    total shift of the general case), maximized over z.  The bound holds iff
    ``query_scale >= 2c*Delta/eps2``; with ``monotonic_shift=True`` the pair
    is one-directional (``q(D') = q(D) + Delta`` against the unshifted
    threshold) and ``c*Delta/eps2`` suffices — Theorem 5's content.
    """
    if eps2 <= 0.0 or c <= 0 or query_scale <= 0.0:
        raise InvalidParameterError("eps2, c, query_scale must all be > 0")
    zs = _grid(width * query_scale / max(c, 1))
    if monotonic_shift:
        # One-directional case (first branch of Theorem 5's proof):
        # Pr[q+nu >= T+z] <= e^{eps2/c} Pr[(q-Delta)+nu >= T+z].
        lhs = laplace_sf(zs, query_scale)
        rhs = math.exp(eps2 / c) * laplace_sf(zs + sensitivity, query_scale)
    else:
        # General case: answer drops by Delta AND the threshold rises by Delta.
        lhs = laplace_sf(zs, query_scale)
        rhs = math.exp(eps2 / c) * laplace_sf(zs + 2.0 * sensitivity, query_scale)
    return float(np.max(lhs - rhs))


@dataclass(frozen=True)
class OneSideConflict:
    """Quantifies the Section-3.1 closing remark.

    For the mixed outcome with answers moving in opposite directions, the
    f-side wants the substitution ``z -> z + Delta`` and the g-side wants
    ``z -> z - Delta``.  ``f_margin_with_plus`` / ``g_margin_with_plus``
    report each side's worst violation under the *same* ``+Delta`` shift
    (with no query noise, Alg.-5 style): f holds, g breaks — and symmetric
    for ``-Delta``.  Both positive conflicts simultaneously is what makes
    noiseless mixed outputs unfixable.
    """

    f_margin_with_plus: float
    g_margin_with_plus: float
    f_margin_with_minus: float
    g_margin_with_minus: float

    @property
    def conflict(self) -> bool:
        """True when no single shift direction serves both sides."""
        plus_works = self.f_margin_with_plus <= 0.0 and self.g_margin_with_plus <= 0.0
        minus_works = self.f_margin_with_minus <= 0.0 and self.g_margin_with_minus <= 0.0
        return not (plus_works or minus_works)


def one_side_conflict(sensitivity: float = 1.0, width: float = 30.0) -> OneSideConflict:
    """Demonstrate that ⊥- and ⊤-sides need opposite shifts (no query noise).

    Uses the extremal pair: a ⊥-query with ``q(D) = q(D') - Delta`` and a
    ⊤-query with ``q(D) = q(D') + Delta`` (both against threshold 0), i.e.
    the Theorem-3 geometry.
    """
    zs = _grid(width)

    def f_term(shift: float) -> float:
        # Pr[q_bot(D) < z] <= Pr[q_bot(D') < z + shift] with q_bot(D)=0, q_bot(D')=1.
        lhs = (0.0 < zs).astype(float)
        rhs = (1.0 < zs + shift).astype(float)
        return float(np.max(lhs - rhs))

    def g_term(shift: float) -> float:
        # Pr[q_top(D) >= z] <= Pr[q_top(D') >= z + shift] with q_top(D)=1, q_top(D')=0.
        lhs = (1.0 >= zs).astype(float)
        rhs = (0.0 >= zs + shift).astype(float)
        return float(np.max(lhs - rhs))

    return OneSideConflict(
        f_margin_with_plus=f_term(+sensitivity),
        g_margin_with_plus=g_term(+sensitivity),
        f_margin_with_minus=f_term(-sensitivity),
        g_margin_with_minus=g_term(-sensitivity),
    )
