"""Closed-form utility analysis of SVT vs EM (Section 5).

The paper quotes Theorem 3.24 of Dwork & Roth for SVT with ``c = Delta = 1``:
for k queries where only the last can be near/above the threshold, SVT is
(alpha, beta)-accurate for

    alpha_SVT = 8 (log k + log(2/beta)) / eps.

For EM in the same single-winner setting (k-1 queries with answers at most
``T - alpha`` and one at least ``T + alpha``), the correct selection
probability is at least

    e^{eps (T+alpha) / 2} / ((k-1) e^{eps (T-alpha)/2} + e^{eps (T+alpha)/2}),

and requiring this to be >= 1 - beta yields

    alpha_EM = (log(k-1) + log((1-beta)/beta)) / eps,

"less than 1/8 of alpha_SVT" — the analytical seed of the paper's
recommendation to use EM in the non-interactive setting.  All logs natural,
as in the paper.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError

__all__ = [
    "alpha_svt",
    "alpha_em",
    "alpha_ratio",
    "em_correct_selection_probability",
    "em_beta_for_alpha",
]


def _validate(k: int, beta: float, epsilon: float) -> None:
    if not isinstance(k, (int,)) or k < 2:
        raise InvalidParameterError(f"k must be an integer >= 2, got {k!r}")
    if not 0.0 < beta < 1.0:
        raise InvalidParameterError(f"beta must be in (0, 1), got {beta!r}")
    if epsilon <= 0.0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be finite and > 0, got {epsilon!r}")


def alpha_svt(k: int, beta: float, epsilon: float) -> float:
    """SVT's (alpha, beta)-accuracy bound: ``8 (ln k + ln(2/beta)) / eps``."""
    _validate(k, beta, epsilon)
    return 8.0 * (math.log(k) + math.log(2.0 / beta)) / epsilon


def alpha_em(k: int, beta: float, epsilon: float) -> float:
    """EM's (alpha, beta)-correctness bound: ``(ln(k-1) + ln((1-beta)/beta)) / eps``."""
    _validate(k, beta, epsilon)
    return (math.log(k - 1.0) + math.log((1.0 - beta) / beta)) / epsilon


def alpha_ratio(k: int, beta: float, epsilon: float = 1.0) -> float:
    """``alpha_EM / alpha_SVT`` — the paper says this is below 1/8.

    Independent of epsilon (both alphas scale as 1/eps); the parameter is
    accepted for interface symmetry.
    """
    return alpha_em(k, beta, epsilon) / alpha_svt(k, beta, epsilon)


def em_correct_selection_probability(
    k: int, alpha: float, epsilon: float, threshold: float = 0.0
) -> float:
    """The paper's lower bound on EM picking the unique good query.

    Setting: k-1 queries with answers <= T - alpha and one with answer
    >= T + alpha; monotonic quality exponent ``eps/2`` as in the Section 5
    display.  Computed in a numerically careful way (the naive formula
    overflows for large ``eps * T``).
    """
    _validate(k, 0.5, epsilon)  # beta unused here; reuse validation for k, eps
    if alpha < 0.0:
        raise InvalidParameterError(f"alpha must be >= 0, got {alpha!r}")
    # p = A / ((k-1) B + A) with A = e^{eps(T+alpha)/2}, B = e^{eps(T-alpha)/2}
    #   = 1 / (1 + (k-1) e^{-eps alpha}).
    return 1.0 / (1.0 + (k - 1.0) * math.exp(-epsilon * alpha))


def em_beta_for_alpha(k: int, alpha: float, epsilon: float) -> float:
    """Failure probability beta implied by the EM bound at a given alpha."""
    return 1.0 - em_correct_selection_probability(k, alpha, epsilon)
