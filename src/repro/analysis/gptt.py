"""GPTT and the error in the non-privacy proof of Chen & Machanavajjhala [2].

GPTT (generalized private threshold testing) perturbs the threshold with
``Lap(Delta/eps1)``, each query with ``Lap(Delta/eps2)``, has no cutoff, and
with ``eps1 = eps2 = eps/2`` coincides with Alg. 6.  The proof in [2] that
GPTT is ∞-DP considers ``q(D) = 0^t 1^t``, ``q(D') = 1^t 0^t``,
``a = ⊥^t ⊤^t`` and argues via

    kappa(z) = (F(z) - F(z)F(z-1)) / (F(z-1) - F(z)F(z-1)) > 1,

restricted to a finite interval [-delta, delta] on which kappa is bounded
away from 1.  Section 3.3 / Appendix 10.3 of our paper shows the proof is
circular: delta depends on t, grows with t, and the interval minimum
kappa(t) decays toward 1, so ``kappa(t)^{t/2}`` is not obviously unbounded.
Worse, the same proof template would "prove" the genuinely private Alg. 1
non-private.  This module makes all three observations computable:

* :func:`gptt_kappa` — kappa(z), with kappa(z) -> 1 as |z| -> inf;
* :func:`gptt_counterexample_ratio` — the true ratio for the [2]
  counterexample, by direct integration (it *does* grow with t — GPTT really
  is non-private, per Theorem 7 — the point is that [2]'s *argument* for it
  was broken);
* :func:`broken_proof_would_condemn_alg1` — runs the proof template against
  Alg. 1 and returns the "lower bound" it fabricates, side by side with
  Alg. 1's true (bounded) ratio from the verifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import integrate, optimize

from repro.exceptions import InvalidParameterError
from repro.mechanisms.laplace import laplace_cdf, laplace_pdf, laplace_ppf, laplace_sf

__all__ = [
    "gptt_kappa",
    "gptt_counterexample_ratio",
    "BrokenProofReport",
    "broken_proof_would_condemn_alg1",
]


def gptt_kappa(z: float, eps2: float, sensitivity: float = 1.0) -> float:
    """The integrand ratio kappa(z) from the [2] proof.

    Always > 1, maximal near z = 0, and decaying toward ``e^{eps2*Delta}`` in
    both tails (our numerics; the paper's prose says the tails approach 1,
    which holds for the *CDF-only* ratio ``F(z)/F(z-1)`` of the Alg.-1 replay
    at z -> +inf, the quantity whose interval minimum actually drives the
    circularity — see :func:`broken_proof_would_condemn_alg1`).
    """
    if eps2 <= 0.0:
        raise InvalidParameterError("eps2 must be > 0")
    scale = sensitivity / eps2
    f_z = float(laplace_cdf(z, scale))
    f_z1 = float(laplace_cdf(z - sensitivity, scale))
    numerator = f_z - f_z * f_z1
    denominator = f_z1 - f_z * f_z1
    if denominator <= 0.0:  # pragma: no cover - only at z -> -inf underflow
        return math.inf
    return numerator / denominator


def gptt_counterexample_ratio(
    t: int, epsilon: float, sensitivity: float = 1.0
) -> float:
    """True Pr_D[a]/Pr_D'[a] for the [2] counterexample, by direct integration.

    ``q(D) = 0^t 1^t``, ``q(D') = 1^t 0^t``, ``a = ⊥^t ⊤^t``, ``T = 0``,
    ``eps1 = eps2 = eps/2``.  For query noise ``nu ~ Lap(2/eps)``:

        Pr_D[a]  = ∫ p_rho(z) (F(z) (1 - F(z - 1)))^t dz
        Pr_D'[a] = ∫ p_rho(z) (F(z - 1) (1 - F(z)))^t dz

    (F = CDF of nu).  The ratio grows without bound in t, consistent with
    GPTT being ∞-DP — established correctly by Theorem 7's argument, not by
    the [2] proof.
    """
    if not isinstance(t, int) or t <= 0:
        raise InvalidParameterError(f"t must be a positive integer, got {t!r}")
    if epsilon <= 0.0:
        raise InvalidParameterError("epsilon must be > 0")
    eps_half = epsilon / 2.0
    rho_scale = sensitivity / eps_half
    nu_scale = sensitivity / eps_half

    # Everything is evaluated on the whole grid at once; log(0) -> -inf is the
    # wanted limit, so just silence the warning.
    def log_num_integrand(z: np.ndarray) -> np.ndarray:
        f_z = laplace_cdf(z, nu_scale)
        sf_z1 = laplace_sf(z - sensitivity, nu_scale)
        with np.errstate(divide="ignore"):
            return np.log(laplace_pdf(z, rho_scale)) + t * (np.log(f_z) + np.log(sf_z1))

    def log_den_integrand(z: np.ndarray) -> np.ndarray:
        f_z1 = laplace_cdf(z - sensitivity, nu_scale)
        sf_z = laplace_sf(z, nu_scale)
        with np.errstate(divide="ignore"):
            return np.log(laplace_pdf(z, rho_scale)) + t * (np.log(f_z1) + np.log(sf_z))

    def integrate_log(fn) -> float:
        # Shift by the max of the log-integrand so huge t stays in range.
        grid = np.linspace(-40.0 * rho_scale, 40.0 * rho_scale, 20001)
        values = fn(grid)
        peak = float(values.max())
        if peak == -math.inf:
            return -math.inf
        shifted = np.exp(values - peak)
        total = float(np.trapezoid(shifted, grid))
        return peak + math.log(total)

    log_ratio = integrate_log(log_num_integrand) - integrate_log(log_den_integrand)
    return math.exp(log_ratio) if log_ratio < 700 else math.inf


@dataclass(frozen=True)
class BrokenProofReport:
    """Output of running [2]'s proof template against Alg. 1 (c = 1).

    Fields tell the Appendix-10.3 story quantitatively:

    * ``per_t_lower_bound`` — ``kappa_min(t)^t / 2``, the bound the template
      *soundly* derives for ``beta/alpha`` at this t.  It is a true lower
      bound (``true_ratio >= per_t_lower_bound``) but stays bounded, because
      ``kappa_min(t) -> 1`` as t grows — the t-dependence the original proof
      ignored.
    * ``fabricated_if_kappa_constant`` — what the template *claims*: treating
      kappa as a t-independent constant (we freeze it at ``t0 = 10``) and
      concluding ``kappa^t / 2`` grows without bound.  For large t this
      fabricated value exceeds ``lemma1_bound = e^{eps/2}``, contradicting the
      proven Lemma 1 — which is exactly how the paper exposes the error.
    * ``true_ratio`` — the actual ``Pr[A(D)=⊥^t] / Pr[A(D')=⊥^t]`` by direct
      integration; always within the Lemma 1 bound.
    """

    t: int
    epsilon: float
    alpha: float
    delta_interval: float
    kappa_min: float
    per_t_lower_bound: float
    fabricated_if_kappa_constant: float
    true_ratio: float
    lemma1_bound: float

    @property
    def fabricated_exceeds_lemma1(self) -> bool:
        """True when the kappa-held-constant claim contradicts Lemma 1."""
        return self.fabricated_if_kappa_constant > self.lemma1_bound

    @property
    def per_t_bound_is_sound(self) -> bool:
        """The per-t inequality the template derives does hold."""
        return self.true_ratio >= self.per_t_lower_bound * (1.0 - 1e-9)


def broken_proof_would_condemn_alg1(
    t: int, epsilon: float, sensitivity: float = 1.0
) -> BrokenProofReport:
    """Replay Appendix 10.3: the [2] template applied to Alg. 1 (c = 1).

    Setting: ``q(D) = 0^t``, ``q(D') = 1^t``, output ``⊥^t``, ``T = 0``.
    Alg. 1 with c = 1 uses ``rho ~ Lap(1/(eps/2)) = Lap(2/eps)`` and
    ``nu ~ Lap(2*1/(eps/2)) = Lap(4/eps)`` (so F below is the CDF of
    Lap(4/eps), the paper's ``F_{eps/4}``).

    Template steps: compute ``alpha = Pr[A(D')=⊥^t]``; pick delta with
    ``Pr[|rho| <= delta] >= 1 - alpha/2``; let ``kappa`` be the minimum of
    ``F(z)/F(z-1)`` on [-delta, delta]; conclude
    ``beta = Pr[A(D)=⊥^t] >= kappa^t * alpha / 2``.  Each step is locally
    sound; the fabricated conclusion "beta/alpha >= kappa^t/2 grows without
    bound" contradicts Lemma 1 because kappa depends on t through alpha and
    delta — exposing the circularity.
    """
    if not isinstance(t, int) or t <= 0:
        raise InvalidParameterError(f"t must be a positive integer, got {t!r}")
    if epsilon <= 0.0:
        raise InvalidParameterError("epsilon must be > 0")
    rho_scale = 2.0 * sensitivity / epsilon
    nu_scale = 4.0 * sensitivity / epsilon

    def prob_all_below(shift: float) -> float:
        def integrand(z: float) -> float:
            f = float(laplace_cdf(z - shift, nu_scale))
            if f <= 0.0:
                return 0.0
            return float(laplace_pdf(z, rho_scale)) * f**t

        value, _ = integrate.quad(
            integrand, -60.0 * rho_scale, 60.0 * rho_scale, limit=400
        )
        return float(value)

    alpha = prob_all_below(sensitivity)  # D': all answers 1, F(z - 1) terms
    beta = prob_all_below(0.0)  # D: all answers 0, F(z) terms

    # delta such that Pr[|rho| <= delta] >= 1 - alpha/2, i.e. each tail alpha/4.
    delta_interval = abs(float(laplace_ppf(alpha / 4.0, rho_scale)))

    def kappa_min_on(grid: np.ndarray) -> float:
        f_z = laplace_cdf(grid, nu_scale)
        f_z1 = laplace_cdf(grid - sensitivity, nu_scale)
        ratio = np.where(f_z1 > 0, f_z / np.where(f_z1 > 0, f_z1, 1.0), np.inf)
        return float(ratio.min())

    # kappa is minimized at the right end of the interval (F(z)/F(z-1) is
    # non-increasing in z for the Laplace CDF), but we scan to stay honest.
    kappa_min = kappa_min_on(np.linspace(-delta_interval, delta_interval, 4001))

    # The template's *claim* freezes kappa at a reference t0 and lets t grow.
    t0 = 10
    if t <= t0:
        kappa_frozen = kappa_min
    else:
        half0 = broken_proof_interval(t0, epsilon, sensitivity)
        kappa_frozen = kappa_min_on(np.linspace(-half0, half0, 4001))

    return BrokenProofReport(
        t=t,
        epsilon=epsilon,
        alpha=alpha,
        delta_interval=delta_interval,
        kappa_min=kappa_min,
        per_t_lower_bound=(kappa_min**t) / 2.0,
        fabricated_if_kappa_constant=(kappa_frozen**t) / 2.0,
        true_ratio=beta / alpha if alpha > 0 else math.inf,
        lemma1_bound=math.exp(epsilon / 2.0),
    )


def broken_proof_interval(t: int, epsilon: float, sensitivity: float = 1.0) -> float:
    """The delta(t) interval half-width the template picks at a given t."""
    report_alpha = _alpha_for(t, epsilon, sensitivity)
    rho_scale = 2.0 * sensitivity / epsilon
    return abs(float(laplace_ppf(report_alpha / 4.0, rho_scale)))


def _alpha_for(t: int, epsilon: float, sensitivity: float) -> float:
    """alpha(t) = Pr[A(D') = ⊥^t] for the replay instance."""
    rho_scale = 2.0 * sensitivity / epsilon
    nu_scale = 4.0 * sensitivity / epsilon

    def integrand(z: float) -> float:
        f = float(laplace_cdf(z - sensitivity, nu_scale))
        if f <= 0.0:
            return 0.0
        return float(laplace_pdf(z, rho_scale)) * f**t

    value, _ = integrate.quad(integrand, -60.0 * rho_scale, 60.0 * rho_scale, limit=400)
    return float(value)
