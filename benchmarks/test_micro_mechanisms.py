"""Micro-benchmarks of the mechanism kernels.

Not a paper artifact — these time the building blocks so regressions in the
vectorized paths (which the Figure 4/5 harness leans on) are visible.
"""

import numpy as np
import pytest

from repro.core.allocation import BudgetAllocation
from repro.core.retraversal import svt_retraversal
from repro.core.svt import run_svt_batch
from repro.engine import run_trials
from repro.mechanisms.exponential import select_top_c_em
from repro.mechanisms.laplace import LaplaceMechanism
from repro.variants.dpbook import run_dpbook_batch

N = 100_000
C = 50


@pytest.fixture(scope="module")
def scores():
    rng = np.random.default_rng(0)
    return np.sort(rng.pareto(1.2, N))[::-1] * 1_000


@pytest.mark.benchmark(group="micro")
def test_laplace_release_throughput(benchmark, scores):
    mech = LaplaceMechanism(epsilon=1.0)
    rng = np.random.default_rng(1)
    benchmark(mech.release, scores, rng)


@pytest.mark.benchmark(group="micro")
def test_em_top_c_throughput(benchmark, scores):
    rng = np.random.default_rng(2)
    out = benchmark(select_top_c_em, scores, 0.1, C, 1.0, True, rng)
    assert out.size == C


@pytest.mark.benchmark(group="micro")
def test_svt_batch_throughput(benchmark, scores):
    allocation = BudgetAllocation.from_ratio(0.1, C, "1:c^(2/3)", monotonic=True)
    rng = np.random.default_rng(3)
    threshold = float(scores[C])

    def run():
        return run_svt_batch(
            scores, allocation, C, thresholds=threshold, monotonic=True, rng=rng
        )

    result = benchmark(run)
    assert result.num_positives <= C


@pytest.mark.benchmark(group="micro")
def test_svt_retraversal_throughput(benchmark, scores):
    allocation = BudgetAllocation.from_ratio(0.1, C, "1:c^(2/3)", monotonic=True)
    rng = np.random.default_rng(4)
    threshold = float(scores[C])

    def run():
        return svt_retraversal(
            scores,
            allocation,
            C,
            thresholds=threshold,
            monotonic=True,
            threshold_bump_d=2.0,
            max_passes=20,
            rng=rng,
        )

    result = benchmark(run)
    assert result.num_selected <= C


@pytest.mark.benchmark(group="micro")
def test_engine_trials_throughput(benchmark, scores):
    """A whole Monte-Carlo cell (32 trials) through the multi-trial engine."""
    threshold = float(scores[C])

    def run():
        return run_trials(
            "alg1", scores, 0.1, C, trials=32,
            thresholds=threshold, ratio="1:c^(2/3)", monotonic=True, rng=6,
        )

    result = benchmark(run)
    assert result.trials == 32
    assert np.all(result.num_positives <= C)


@pytest.mark.benchmark(group="micro")
def test_engine_em_trials_throughput(benchmark, scores):
    """A whole EM Monte-Carlo cell (32 trials) through the engine's Gumbel-max."""
    threshold = float(scores[C])

    def run():
        return run_trials(
            "em", scores, 0.1, C, trials=32,
            thresholds=threshold, monotonic=True, rng=7,
        )

    result = benchmark(run)
    assert result.trials == 32
    assert np.all(result.num_positives == C)


@pytest.mark.benchmark(group="micro")
def test_engine_retraversal_trials_throughput(benchmark, scores):
    """A whole SVT-ReTr cell (32 trials) through the geometric-race kernel."""
    threshold = float(scores[C])

    def run():
        return run_trials(
            "retraversal", scores, 0.1, C, trials=32,
            thresholds=threshold, ratio="1:c^(2/3)", monotonic=True,
            threshold_bump_d=2.0, max_passes=20, rng=8,
        )

    result = benchmark(run)
    assert result.trials == 32
    assert np.all(result.num_positives <= C)


@pytest.mark.benchmark(group="micro")
def test_dpbook_batch_throughput(benchmark, scores):
    rng = np.random.default_rng(5)
    threshold = float(scores[C])

    def run():
        return run_dpbook_batch(scores, 0.1, C, thresholds=threshold, rng=rng)

    result = benchmark(run)
    assert result.num_positives <= C
