"""E6 — Section 5: the alpha_SVT vs alpha_EM analytical comparison.

Prints the bound table over a (k, beta) grid and asserts the paper's claim
that alpha_EM is less than 1/8 of alpha_SVT everywhere.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.theory import em_correct_selection_probability
from repro.experiments.bounds import section5_bound_table
from repro.experiments.reporting import format_bounds_table


@pytest.mark.benchmark(group="section5")
def test_bound_table(benchmark):
    rows = benchmark(section5_bound_table)
    emit("Section 5 — alpha_SVT vs alpha_EM (eps = 0.1)", format_bounds_table(rows))
    for row in rows:
        assert row.ratio < 1 / 8


@pytest.mark.benchmark(group="section5")
def test_em_bound_is_achievable(benchmark):
    """Verify the bound's self-consistency: plugging alpha_EM back into the
    selection-probability formula achieves the 1 - beta success target."""
    from repro.analysis.theory import alpha_em

    def worst_gap():
        gap = 0.0
        for k in (10, 1_000, 100_000):
            for beta in (0.1, 0.01):
                alpha = alpha_em(k, beta, 0.1)
                success = em_correct_selection_probability(k, alpha, 0.1)
                gap = max(gap, (1 - beta) - success)
        return gap

    gap = benchmark(worst_gap)
    assert gap <= 1e-9


@pytest.mark.benchmark(group="section5")
def test_bounds_verified_empirically(benchmark):
    """Run the actual mechanisms on the Section-5 workload: both guarantees
    hold, and EM succeeds at an alpha 8x smaller than SVT requires."""
    from benchmarks.conftest import emit
    from repro.analysis.accuracy import em_accuracy_check, svt_accuracy_check

    def run_checks():
        k, beta, eps = 100, 0.1, 0.5
        return (
            svt_accuracy_check(k, beta, eps, trials=400, rng=0),
            em_accuracy_check(k, beta, eps, trials=400, rng=1),
        )

    svt, em = benchmark.pedantic(run_checks, rounds=1, iterations=1)
    emit(
        "Section 5 — empirical (alpha, beta) checks (k=100, beta=0.1, eps=0.5)",
        f"SVT: alpha={svt.alpha:.1f}  observed beta={svt.beta_observed:.4f}\n"
        f"EM : alpha={em.alpha:.1f}  observed beta={em.beta_observed:.4f}",
    )
    assert svt.within_guarantee
    assert em.within_guarantee
    assert em.alpha < svt.alpha / 8
