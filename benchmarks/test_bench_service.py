"""E9 — the multi-tenant service vs per-session streaming, enforced speedup.

Not a paper artifact: this bench guards the service's reason to exist.  A
256-tenant Zipf workload (hot tenants dominate, correlated per-tenant query
streams) is served twice — once query-at-a-time through every session's
streaming loop, once through the batcher + cross-session cohort engine —
and the batched path must hold a >=5x throughput advantage.  The recorded
``BENCH_service.json`` tracks requests/sec, batch occupancy (mean rows per
vectorized gate call), and p50/p99 drain latency across PRs.

Timing is min-of-3 wall clock rather than pytest-benchmark calibration so
the assertion holds in every mode, including ``--benchmark-disable`` smoke
runs.  Sessions are re-opened fresh for every repetition: serving mutates
gate and history state, so reps must not share sessions.
"""

import os

import pytest

from benchmarks.conftest import emit
from benchmarks.record import record_service
from repro.service import SVTQueryService, WorkloadSpec, generate_workload
from repro.service.workload import run_batched, run_streaming

TENANTS = 256
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "50000"))
BATCH_WINDOW = 16_384
# The acceptance floor.  Shared CI runners can steal cycles from the
# millisecond-scale timings, so CI smoke sets a lower floor via the env
# knob rather than flaking an unrelated PR.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_SPEEDUP", "5.0"))

SPEC = WorkloadSpec(
    tenants=TENANTS,
    requests=REQUESTS,
    dataset="Zipf",
    dataset_scale=0.05,
    threshold_factor=0.8,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(SPEC, rng=0)


def best_stats(runner, repeats=3):
    best = None
    for _ in range(repeats):
        stats = runner()
        if best is None or stats.duration_s < best.duration_s:
            best = stats
    return best


def test_service_vs_streaming(workload):
    """Cross-session batched drains vs the per-session streaming loop."""

    def streaming():
        service = SVTQueryService(workload.supports, seed=1)
        return run_streaming(service, workload, session_seed=42)

    def batched():
        service = SVTQueryService(workload.supports, seed=1)
        return run_batched(
            service, workload, batch_size=BATCH_WINDOW, session_seed=42
        )

    stream = best_stats(streaming)
    batch = best_stats(batched)
    speedup = stream.duration_s / batch.duration_s

    # Both drivers serve the same trace against identically-seeded sessions;
    # the workload regime itself must match (sanity, not bit-identity —
    # that's enforced seed-exactly in tests/service/).
    assert batch.answered + batch.rejected == REQUESTS
    assert abs(batch.history_rate - stream.history_rate) < 0.05
    assert batch.mean_block_rows > TENANTS  # real cross-session batching

    emit(
        "Service vs streaming — 256-tenant Zipf workload",
        f"streaming: {stream.duration_s * 1e3:.0f} ms ({stream.requests_per_sec:,.0f} req/s)   "
        f"batched: {batch.duration_s * 1e3:.0f} ms ({batch.requests_per_sec:,.0f} req/s)\n"
        f"speedup: {speedup:.1f}x   occupancy: {batch.mean_block_rows:.0f} rows/block   "
        f"p50/p99 drain latency: {batch.latency_p50_ms:.1f}/{batch.latency_p99_ms:.1f} ms\n"
        f"({REQUESTS} requests, {TENANTS} tenants, window {BATCH_WINDOW}, "
        f"history rate {batch.history_rate:.1%}, {batch.db_accesses} database accesses)",
    )
    record_service(
        "zipf-256",
        speedup=round(speedup, 2),
        streaming=stream.as_record(),
        batched=batch.as_record(),
        tenants=TENANTS,
        batch_window=BATCH_WINDOW,
    )
    assert speedup >= MIN_SPEEDUP
