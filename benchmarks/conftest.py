"""Shared configuration for the benchmark harness.

Each bench module regenerates one of the paper's evaluation artifacts
(DESIGN.md §3 maps experiment ids E1-E7 to modules).  Benches both *time* the
harness (pytest-benchmark) and *print* the regenerated rows/series, so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as the reproduction
record.

Scale knobs (the full paper configuration takes hours on the AOL-size
dataset):

* ``REPRO_BENCH_SCALE``  — dataset scale factor, default 0.05
* ``REPRO_BENCH_TRIALS`` — trials per (method, c) cell, default 5
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "5"))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The shared reduced-size configuration for Figure 4/5 benches."""
    return ExperimentConfig(
        datasets=("BMS-POS", "Kosarak", "AOL", "Zipf"),
        c_values=(25, 50),
        trials=BENCH_TRIALS,
        dataset_scale=BENCH_SCALE,
    )


def emit(title: str, body: str) -> None:
    """Print a labeled reproduction artifact (visible with -s)."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


def pytest_sessionfinish(session, exitstatus):
    """Flush recorded measurements to the BENCH_*.json artifacts."""
    from benchmarks.record import (
        flush,
        flush_audit,
        flush_outofcore,
        flush_server,
        flush_service,
    )

    for path in (flush(), flush_service(), flush_outofcore(), flush_server(),
                 flush_audit()):
        if path:
            print(f"\nbenchmark record written: {path}")
