"""E1 — Table 1: dataset characteristics.

Regenerates the (records, items) table.  At scale 1.0 the counts equal the
paper's exactly (they are calibration targets); the timed body generates the
three laptop-friendly datasets end to end.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.config import ExperimentConfig
from repro.experiments.distributions import PAPER_TABLE1, table1
from repro.experiments.reporting import format_table1


@pytest.mark.benchmark(group="table1")
def test_table1_generation(benchmark):
    cfg = ExperimentConfig.paper().with_overrides(
        datasets=("BMS-POS", "Kosarak", "Zipf")
    )
    rows = benchmark(table1, cfg)
    emit("Table 1 (regenerated, full scale)", format_table1(rows))
    for name, records, items in rows:
        assert (records, items) == PAPER_TABLE1[name]


@pytest.mark.benchmark(group="table1")
def test_table1_includes_aol_scaled(benchmark):
    """AOL's 2.3M-item universe, generated at 10% scale for tractability."""
    cfg = ExperimentConfig.paper().with_overrides(
        datasets=("AOL",), dataset_scale=0.1
    )
    rows = benchmark(table1, cfg)
    emit("Table 1 (AOL at 10% scale)", format_table1(rows))
    (_, records, items) = rows[0]
    assert items == round(2_290_685 * 0.1)
    assert records == round(647_377 * 0.1)
