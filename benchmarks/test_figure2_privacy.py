"""E3 — Figure 2: the variant comparison table and its privacy row, verified.

The paper's Figure 2 states each variant's privacy property.  This bench
regenerates the table from the registry and then *verifies the privacy row
numerically*: exact (integrated) privacy loss per variant on a shared family
of neighboring inputs, showing eps-bounded losses for Alg. 1/2 and
above-budget / unbounded losses for Alg. 4/5/6 (Alg. 3's violation is
continuous-output; covered in E7).
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.analysis.verifier import empirical_epsilon, spec_for_variant
from repro.variants.lee_clifton import lee_clifton_actual_epsilon
from repro.variants.registry import figure2_table

EPSILON = 1.0
C = 2

# Neighboring answer vectors exercising both directions (|diff| <= 1).
ANSWERS_D = [2.0, 2.0, -10.0, -10.0]
ANSWERS_D_PRIME = [3.0, 3.0, -11.0, -11.0]


@pytest.mark.benchmark(group="figure2")
def test_figure2_table_rendering(benchmark):
    table = benchmark(figure2_table)
    emit("Figure 2 (variant comparison table)", table)
    assert "Alg. 1" in table and "infinity-DP" in table


def _loss_for(key: str) -> float:
    spec = spec_for_variant(key, EPSILON, C)
    cutoff = None if key in ("alg5", "alg6") else C
    return empirical_epsilon(spec, ANSWERS_D, ANSWERS_D_PRIME, thresholds=0.0, c=cutoff)


@pytest.mark.benchmark(group="figure2")
@pytest.mark.parametrize("key", ["alg1", "alg2"])
def test_private_variants_within_budget(benchmark, key):
    loss = benchmark(_loss_for, key)
    emit(f"Figure 2 privacy row — {key}", f"exact privacy loss = {loss:.4f} <= eps = {EPSILON}")
    assert loss <= EPSILON + 1e-6


@pytest.mark.benchmark(group="figure2")
def test_alg4_exceeds_advertised_budget(benchmark):
    loss = benchmark(_loss_for, "alg4")
    actual = lee_clifton_actual_epsilon(EPSILON, C)
    emit(
        "Figure 2 privacy row — alg4",
        f"exact loss = {loss:.4f} > advertised eps = {EPSILON}; "
        f"true guarantee ((1+6c)/4)eps = {actual:.2f}",
    )
    assert loss > EPSILON
    assert loss <= actual + 1e-6


@pytest.mark.benchmark(group="figure2")
def test_alg5_unbounded(benchmark):
    def loss():
        spec = spec_for_variant("alg5", EPSILON, C)
        return empirical_epsilon(spec, [0.0, 1.0], [1.0, 0.0], thresholds=0.0)

    value = benchmark(loss)
    emit("Figure 2 privacy row — alg5", f"exact privacy loss = {value} (Theorem 3)")
    assert value == math.inf


@pytest.mark.benchmark(group="figure2")
def test_alg6_loss_grows_without_bound(benchmark):
    from repro.attacks.counterexamples import theorem7_chen

    def losses():
        return [theorem7_chen(m, EPSILON).epsilon_refuted() for m in (1, 3, 5)]

    values = benchmark(losses)
    emit(
        "Figure 2 privacy row — alg6",
        "refuted eps' by counterexample size m=1,3,5: "
        + ", ".join(f"{v:.2f}" for v in values),
    )
    assert values[0] < values[1] < values[2]
    assert values[2] > 2.0 * EPSILON
