"""E8 — the AOL-scale out-of-core proof: n = 2,290,685 under a hard memory cap.

The paper's headline experiments run over the full AOL item universe; a
dense ``(trials, n)`` engine block at that n is tens of gigabytes.  This
bench runs the real thing — ``run_trials`` over a lazy
:class:`~repro.data.scores.GeneratorScores` universe of 2,290,685 items
with ``max_bytes = 256 MB`` — in a **fresh subprocess** (so the measured
``ru_maxrss`` is this workload's high-water mark, not the pytest session's)
and enforces that peak RSS stays under ~3× the cap.  Two configurations:

* ``aol-chunked`` — the acceptance-criteria literal: ``max_bytes=256MB``
  alone (the planner fits two full-width trial rows per chunk);
* ``aol-tiled``   — two-axis execution forced via ``chunk_n``: 1/4-width
  query tiles, several trials per chunk, exercising the tiled kernels at
  full scale.

Measurements (n, chunk/tile grid, peak RSS, trials/sec) land in
``BENCH_outofcore.json`` next to the other BENCH artifacts (CI uploads it).

Scale knobs: ``REPRO_BENCH_OUTOFCORE_TRIALS`` (default 6) and
``REPRO_BENCH_OUTOFCORE_N`` (default the full 2,290,685).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from benchmarks.record import record_outofcore

#: The paper's AOL item-universe size (Table 1).
AOL_N = 2_290_685
MAX_BYTES = 256 * 1024 * 1024
#: Allowance over the engine budget for the interpreter + numpy + the lazy
#: score machinery: the bench asserts peak RSS < 3x the engine cap.
RSS_CAP_KB = 3 * MAX_BYTES // 1024

BENCH_N = int(os.environ.get("REPRO_BENCH_OUTOFCORE_N", str(AOL_N)))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_OUTOFCORE_TRIALS", "6"))

_CHILD = r"""
import json, resource, sys, time
import numpy as np
from repro.data.scores import GeneratorScores, topc_values
from repro.engine.plans import plan_trials
from repro.engine.trials import run_trials

n, trials, max_bytes, c = (int(a) for a in sys.argv[1:5])
eps = 0.1
source = GeneratorScores.power_law(
    n, head_support=180_000.0, alpha=1.05, num_records=647_377
)
top = topc_values(source, c + 1)  # ascending: [(c+1)-th, c-th, ...]
threshold = float(top[0] + top[1]) / 2.0

results = {}
for name, chunk_n in (("aol-chunked", None), ("aol-tiled", max(1, n // 4))):
    plan = plan_trials(trials, n, max_bytes, variant="alg1", chunk_n=chunk_n)
    start = time.perf_counter()
    batch = run_trials(
        "alg1", source, eps, c, trials, thresholds=threshold, rng=0,
        max_bytes=max_bytes, chunk_n=chunk_n,
    )
    elapsed = time.perf_counter() - start
    assert batch.trials == trials and batch.n == n
    # The tiled path keeps nothing (trials, n)-dense beyond the small
    # boolean-mask policy limit (the mask is suppressed past it).
    from repro.engine.tiled import MASK_MATERIALIZE_LIMIT
    if chunk_n is not None and trials * n > MASK_MATERIALIZE_LIMIT:
        assert batch.positives_mask is None
    results[name] = {
        "n": n,
        "trials": trials,
        "c": c,
        "epsilon": eps,
        "max_bytes": max_bytes,
        "chunk_trials": plan.chunk_trials,
        "chunk_n": plan.chunk_n,
        "num_chunks": plan.num_chunks,
        "num_tiles": plan.num_tiles,
        "duration_s": round(elapsed, 3),
        "trials_per_sec": round(trials / elapsed, 2),
        "ser_mean": float(batch.ser.mean()),
        "fnr_mean": float(batch.fnr.mean()),
    }
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak_kb //= 1024
print(json.dumps({"peak_rss_kb": int(peak_kb), "results": results}))
"""


def test_aol_scale_under_memory_cap():
    repo_src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(BENCH_N), str(BENCH_TRIALS),
         str(MAX_BYTES), "25"],
        capture_output=True, text=True, env=env, timeout=570,
    )
    assert proc.returncode == 0, f"child failed:\n{proc.stderr[-4000:]}"
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    peak_kb = payload["peak_rss_kb"]

    print(f"\nAOL-scale out-of-core (n={BENCH_N:,}, trials={BENCH_TRIALS}, "
          f"cap={MAX_BYTES >> 20} MB): peak RSS {peak_kb / 1024:.0f} MB "
          f"(limit {RSS_CAP_KB / 1024:.0f} MB)")
    for name, fields in payload["results"].items():
        print(f"  {name}: {fields['num_chunks']} chunks x {fields['num_tiles']} tiles, "
              f"{fields['trials_per_sec']:.2f} trials/s, SER {fields['ser_mean']:.3f}")
        record_outofcore(name, peak_rss_kb=peak_kb, rss_cap_kb=RSS_CAP_KB, **fields)

    # The hard acceptance gate: the full-scale run fits under the cap.
    assert peak_kb < RSS_CAP_KB, (
        f"peak RSS {peak_kb} kB exceeds the {RSS_CAP_KB} kB cap "
        f"(3x the {MAX_BYTES >> 20} MB engine budget)"
    )
    # The tiled config genuinely tiled, and a sane selection came back.
    tiled = payload["results"]["aol-tiled"]
    assert tiled["num_tiles"] >= 4
    assert 0.0 <= tiled["ser_mean"] <= 1.0
