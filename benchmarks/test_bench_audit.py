"""E11 — the continuous privacy audit must be cheap enough to leave on.

Not a paper artifact: this bench prices the auditor.  Two costs matter for
running it continuously against a production service:

* **attack throughput** — full canary trials per second against a *live*
  ``repro serve`` subprocess over stdio JSONL (open, drained query,
  distinguisher guess, close, interleaved background traffic).  Too slow
  and a statistically meaningful bound (hundreds of trials) takes long
  enough that nobody runs it.
* **canary-mixture tax** — batched requests/sec on the plain Zipf trace vs
  the same trace with planted canaries mixed in.  The planted pair rides
  the same cross-session drains, so the tax should be noise; an auditor
  that halves throughput gets turned off.

Floors are env-overridable (``REPRO_MIN_AUDIT_TRIALS_PER_SEC``,
``REPRO_MIN_CANARY_THROUGHPUT_RATIO``) so shared CI runners can relax them
without flaking unrelated PRs.  Timing is min-of-N wall clock, same policy
as the other enforced benches.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from benchmarks.conftest import emit
from benchmarks.record import record_audit
from repro.service import SVTQueryService, WorkloadSpec, generate_workload
from repro.service.auditor import (
    AuditConfig,
    JsonLineClient,
    plant_canaries,
    run_audit,
    write_planted_scores,
)
from repro.service.workload import generate_canary_workload, run_batched

TRIALS = int(os.environ.get("REPRO_BENCH_AUDIT_TRIALS", "60"))
MIN_TRIALS_PER_SEC = float(os.environ.get("REPRO_MIN_AUDIT_TRIALS_PER_SEC", "25.0"))
MIN_THROUGHPUT_RATIO = float(
    os.environ.get("REPRO_MIN_CANARY_THROUGHPUT_RATIO", "0.5")
)

SUPPORTS = np.linspace(500.0, 10.0, 150)
THRESHOLD = 150.0

SPEC = WorkloadSpec(
    tenants=128,
    requests=int(os.environ.get("REPRO_BENCH_AUDIT_REQUESTS", "20000")),
    dataset="Zipf",
    dataset_scale=0.05,
    threshold_factor=0.8,
)


def test_live_audit_trials_per_sec(tmp_path):
    """Full end-to-end canary trials against a live subprocess server."""
    planted, plan = plant_canaries(SUPPORTS, threshold=THRESHOLD)
    scores = tmp_path / "planted.scores"
    write_planted_scores(scores, planted)
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(scores),
         "--threshold", str(plan.threshold), "--seed", "5"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, env=env,
    )
    client = JsonLineClient.from_process(process)
    try:
        config = AuditConfig(trials=TRIALS, seed=23, background_every=2,
                             background_tenants=8, report_every=0)
        start = time.perf_counter()
        report = run_audit(client, plan, config, num_items=planted.size)
        duration = time.perf_counter() - start
    finally:
        client.close()
        process.wait(timeout=60)

    trials_per_sec = TRIALS / duration
    assert report["trials"] == TRIALS
    assert report["caught"] is False  # pricing the healthy path
    assert trials_per_sec >= MIN_TRIALS_PER_SEC, (
        f"live audit ran {trials_per_sec:.1f} trials/s "
        f"(floor {MIN_TRIALS_PER_SEC})"
    )
    emit(
        "Continuous audit — live attack throughput",
        f"{trials_per_sec:,.0f} trials/s against a stdio subprocess server\n"
        f"({TRIALS} trials in {duration * 1e3:.0f} ms, 2 background queries "
        f"per trial, eps_lb {report['eps_lb']:.3f} vs charged "
        f"{report['charged_eps']:g})",
    )
    record_audit(
        "live_trials_per_sec",
        trials_per_sec=round(trials_per_sec, 1),
        trials=TRIALS,
        duration_ms=round(duration * 1e3, 1),
        eps_lb=report["eps_lb"],
        charged_eps=report["charged_eps"],
        accuracy=report["accuracy"],
    )


def test_canary_mixture_throughput_tax():
    """Batched req/s: plain Zipf trace vs the canary-mixture trace."""

    def best(workload, repeats=3):
        best_stats = None
        for _ in range(repeats):
            service = SVTQueryService(workload.supports, seed=2)
            stats = run_batched(service, workload, batch_size=8192,
                                session_seed=31)
            if best_stats is None or stats.duration_s < best_stats.duration_s:
                best_stats = stats
        return best_stats

    plain = best(generate_workload(SPEC, rng=7))
    mixed_workload, plan = generate_canary_workload(
        SPEC, rng=7, canary_fraction=0.1
    )
    mixed = best(mixed_workload)
    ratio = mixed.requests_per_sec / plain.requests_per_sec

    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"canary mixture ran at {ratio:.2f}x plain throughput "
        f"(floor {MIN_THROUGHPUT_RATIO})"
    )
    emit(
        "Continuous audit — canary-mixture throughput tax",
        f"plain: {plain.requests_per_sec:,.0f} req/s   "
        f"canary mixture: {mixed.requests_per_sec:,.0f} req/s   "
        f"ratio {ratio:.2f}x\n"
        f"(10% of {SPEC.requests} requests on the planted pair at items "
        f"{plan.item_lo}/{plan.item_hi}, occupancy "
        f"{mixed.mean_block_rows:.0f} rows/block)",
    )
    record_audit(
        "canary_mixture_tax",
        plain_requests_per_sec=round(plain.requests_per_sec, 1),
        canary_requests_per_sec=round(mixed.requests_per_sec, 1),
        ratio=round(ratio, 3),
        canary_fraction=0.1,
        requests=SPEC.requests,
    )
